//! Minimal, dependency-free stand-in for the parts of `rayon` this workspace
//! uses: `slice.par_iter().map(f).collect::<Vec<_>>()` (and `for_each`). The
//! build environment has no registry access, so the workspace vendors this
//! shim. Work is executed on **real OS threads** (`std::thread::scope`) with
//! an atomic work-stealing index, so concurrency bugs in user closures and
//! sinks remain observable; result order matches input order, like rayon.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The commonly-glob-imported names.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// `par_iter()` entry point for slice-like containers.
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed item type.
    type Item: Sync + 'data;

    /// A parallel iterator over borrowed items.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `&T` items of a slice.
pub struct ParIter<'data, T: Sync> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Map each item through `f` in parallel.
    pub fn map<O, F>(self, f: F) -> ParMap<'data, T, F>
    where
        O: Send,
        F: Fn(&'data T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on each item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'data T) + Sync,
    {
        run_parallel(self.items, &|x| f(x));
    }
}

/// Result of [`ParIter::map`].
pub struct ParMap<'data, T: Sync, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, O: Send, F: Fn(&'data T) -> O + Sync> ParMap<'data, T, F> {
    /// Execute the map and collect results (input order preserved).
    pub fn collect<C: FromIterator<O>>(self) -> C {
        run_parallel(self.items, &self.f).into_iter().collect()
    }
}

/// Process-wide worker-count override (0 = use available parallelism).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pin the worker-thread count (`0` restores the default of one worker per
/// available core). Determinism tests use this to compare single-threaded
/// against multi-threaded campaign runs.
pub fn set_thread_count(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The current worker-thread count (before clamping to the item count).
pub fn current_thread_count() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Number of worker threads to use for `n` items.
fn thread_count(n: usize) -> usize {
    current_thread_count().min(n)
}

fn run_parallel<'data, T: Sync, O: Send, F: Fn(&'data T) -> O + Sync>(
    items: &'data [T],
    f: &F,
) -> Vec<O> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = thread_count(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A send can only fail if the receiver was dropped, which
                // cannot happen while this scope is alive.
                let _ = tx.send((i, f(&items[i])));
            });
        }
        drop(tx);
        let mut out: Vec<Option<O>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        for (i, v) in rx {
            out[i] = Some(v);
        }
        out.into_iter()
            .map(|v| v.expect("worker produced every index"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        let input: Vec<u32> = (0..257).collect();
        let count = AtomicUsize::new(0);
        input.par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_input() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
