//! Minimal, in-tree stand-in for the parts of `proptest` this workspace uses.
//! The build environment has no registry access, so the workspace vendors a
//! sampling-only property-testing core with the same surface:
//! [`strategy::Strategy`] (`prop_map`, `prop_recursive`, `boxed`),
//! [`strategy::Just`], tuple and integer-range strategies,
//! [`collection::vec`], and the [`proptest!`], [`prop_oneof!`],
//! [`prop_assert!`], [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: cases are sampled from a deterministic
//! per-test RNG (seeded from the test's module path and name), and failing
//! cases are **not shrunk** — the panic message carries the failing values via
//! the normal assert formatting instead.

/// Test configuration and RNG.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of upstream `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seed deterministically from a test's fully-qualified name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a cloneable [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
        }

        /// Build a recursive strategy: `self` is the leaf case, and
        /// `recurse` produces one extra level of nesting from the strategy
        /// for the level below. `depth` bounds the nesting; the size/branch
        /// hints are accepted for upstream signature compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![base.clone(), deeper]).boxed();
            }
            strat
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternative strategies
    /// (the expansion of [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $i:tt),+)),* $(,)?) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

/// Full-domain strategies backing `any::<T>()`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Strategy drawing uniformly from a type's whole domain.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — uniform over the full value range (integers, bool).
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_any {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }

    impl_any!(u8, u16, u32, u64, i8, i16, i32, i64, bool);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-imported prelude, mirroring upstream's layout.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The `prop::` module alias (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property; panics (no shrinking) with the usual message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skip the current sampled case when a precondition does not hold. Must be
/// used at the top level of a property body (it expands to `continue` on the
/// case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @inner ($cfg) $($rest)* }
    };
    (@inner ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{
            @inner ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn tree() -> BoxedStrategy<Tree> {
        let leaf = (-10i32..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(v in 0u8..4, w in -1000i32..1000) {
            prop_assert!(v < 4);
            prop_assert!((-1000..1000).contains(&w));
        }

        #[test]
        fn vec_lengths_respected(xs in prop::collection::vec(0u8..4, 1..8)) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
        }

        #[test]
        fn recursion_is_depth_bounded(t in tree()) {
            prop_assert!(depth(&t) <= 3);
        }

        #[test]
        fn oneof_hits_every_arm(vs in prop::collection::vec(
            prop_oneof![Just(0u8), Just(1u8), Just(2u8)], 64..65)) {
            for v in vs {
                prop_assert!(v <= 2);
            }
        }
    }
}
