//! Minimal, in-tree stand-in for the parts of `criterion` this workspace
//! uses. The build environment has no registry access, so the workspace
//! vendors a plain wall-clock harness with the same API: benchmark groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples of
//! an adaptively-chosen iteration batch, and prints the median ns/iter (plus
//! derived throughput when configured). No statistical regression analysis.

use std::fmt;
use std::time::Instant;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl fmt::Display, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
    }
}

/// Work-per-iteration hint used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark name (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks sharing sample/throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the work-per-iteration hint.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples (upstream default is 100; this shim
    /// defaults to 20 to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let label = self.label(&id);
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&label, self.throughput);
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = self.label(&id);
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&label, self.throughput);
    }

    /// Finish the group (upstream emits summary artifacts; the shim is
    /// line-oriented, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}

    fn label(&self, id: &impl fmt::Display) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// measured routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            median_ns: None,
        }
    }

    /// Measure `routine`: warm up, pick a batch size targeting ~5 ms per
    /// sample, then record `sample_size` samples and keep the median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once_ns = t0.elapsed().as_nanos().max(1) as f64;
        let batch = ((5_000_000.0 / once_ns) as u64).clamp(1, 100_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        let Some(ns) = self.median_ns else {
            println!("{label:<40} (no measurement)");
            return;
        };
        let mut line = format!("{label:<40} {:>12.1} ns/iter", ns);
        match throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                let per_s = n as f64 * 1e9 / ns;
                line.push_str(&format!("  {:>12.3} Melem/s", per_s / 1e6));
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                let per_s = n as f64 * 1e9 / ns;
                line.push_str(&format!("  {:>12.3} MiB/s", per_s / (1024.0 * 1024.0)));
            }
            _ => {}
        }
        println!("{line}");
    }
}

/// Declare a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_test");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }
}
