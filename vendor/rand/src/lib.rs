//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no network access to a registry,
//! so the workspace vendors a small, deterministic implementation with the
//! same API surface: [`Rng::gen_range`] over integer/float ranges,
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoroshiro128++ seeded through splitmix64 — fast, and good
//! enough statistically for fault-site sampling and property tests. It is
//! **not** a drop-in reproduction of upstream `rand`'s value streams; all
//! in-repo seeds/goldens are defined against this implementation.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a standard-distribution type (full integer range,
    /// `[0, 1)` floats, fair bool).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

/// Types samplable by [`Rng::gen`] (upstream's `Standard` distribution).
pub trait StandardSample {
    /// Draw one standard sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that knows how to sample one value from an RNG.
pub trait SampleRange<T> {
    /// Draw a single uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a range. The blanket
/// `Range<T>: SampleRange<T>` impl below ties the output type to the range
/// bounds, which is what lets inference flow the same way as upstream rand.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(bits: u64) -> f32 {
    ((bits >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
}

macro_rules! impl_int_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let off = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    rng.next_u64() % (span + 1)
                } else {
                    rng.next_u64() % span
                };
                (lo as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )*};
}

impl_int_uniform!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, _incl: bool, rng: &mut R) -> f64 {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, _incl: bool, rng: &mut R) -> f32 {
        lo + (hi - lo) * unit_f32(rng.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast non-cryptographic generator (xoroshiro128++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s0 = splitmix64(&mut st);
            let mut s1 = splitmix64(&mut st);
            if s0 == 0 && s1 == 0 {
                s1 = 1;
            }
            SmallRng { s0, s1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let (s0, mut s1) = (self.s0, self.s1);
            let out = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
            s1 ^= s0;
            self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
            self.s1 = s1.rotate_left(28);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly pick a reference, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-8..8);
            assert!((-8..8).contains(&v));
            let u: usize = rng.gen_range(0..32);
            assert!(u < 32);
            let w: u32 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&w));
            let f: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen_range(-0.1f32..0.1);
            assert!((-0.1..0.1).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..16).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }
}
