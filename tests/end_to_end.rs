//! End-to-end integration: every benchmark program survives the full
//! pipeline — instrumentation, profiling, fault-free protected execution
//! (no alarms), and fault detection.

use hauberk::builds::{build, BuildVariant, FtOptions};
use hauberk::control::ControlBlock;
use hauberk::program::{golden_run, run_program, HostProgram};
use hauberk::ranges::{profile_ranges, RangeSet};
use hauberk::runtime::{FiFtRuntime, FtRuntime, ProfilerRuntime};
use hauberk_benchmarks::{all_programs, hpc_suite, ProblemScale};
use hauberk_sim::fault::{ArmedFault, FaultSite};
use hauberk_sim::LaunchOutcome;

fn trained(prog: &dyn HostProgram, opts: FtOptions) -> Vec<RangeSet> {
    let profiler = build(&prog.build_kernel(), BuildVariant::Profiler(opts)).unwrap();
    let mut pr = ProfilerRuntime::default();
    let run = run_program(prog, &profiler.kernel, 0, &mut pr, u64::MAX);
    assert!(run.outcome.is_completed(), "{} profiler run", prog.name());
    (0..profiler.detectors.len())
        .map(|d| profile_ranges(pr.samples(d as u32)))
        .collect()
}

#[test]
fn every_program_golden_run_is_deterministic() {
    for prog in all_programs(ProblemScale::Quick) {
        let (a, ca) = golden_run(prog.as_ref(), 0);
        let (b, cb) = golden_run(prog.as_ref(), 0);
        assert_eq!(a, b, "{} output determinism", prog.name());
        assert_eq!(ca, cb, "{} cycle determinism", prog.name());
        // The golden output satisfies its own spec trivially.
        assert!(!prog.spec().is_violation(&a, &b));
    }
}

#[test]
fn ft_build_runs_clean_and_output_matches_baseline() {
    for prog in hpc_suite(ProblemScale::Quick) {
        let prog = prog.as_ref();
        let (golden, _) = golden_run(prog, 0);
        let ranges = trained(prog, FtOptions::default());
        let ft = build(&prog.build_kernel(), BuildVariant::Ft(FtOptions::default())).unwrap();
        let mut rt = FtRuntime::new(ControlBlock::with_ranges(ranges));
        let run = run_program(prog, &ft.kernel, 0, &mut rt, u64::MAX);
        assert!(run.outcome.is_completed(), "{}", prog.name());
        assert!(
            !rt.cb.sdc_flag,
            "{}: fault-free protected run must not alarm: {:?}",
            prog.name(),
            rt.cb.alarms
        );
        assert_eq!(
            run.output.unwrap(),
            golden,
            "{}: instrumentation must not change program semantics",
            prog.name()
        );
    }
}

#[test]
fn detectors_catch_a_blatant_accumulator_corruption_everywhere() {
    for prog in hpc_suite(ProblemScale::Quick) {
        let prog = prog.as_ref();
        let ranges = trained(prog, FtOptions::default());
        let fift = build(
            &prog.build_kernel(),
            BuildVariant::FiFt(FtOptions::default()),
        )
        .unwrap();
        // Corrupt the protected loop variable itself with an exponent-heavy
        // mask: the range check must fire (or the run must fail).
        let det = &fift.detectors[0];
        let site = fift
            .fi
            .sites
            .iter()
            .rfind(|s| s.var == det.var && s.in_loop)
            .or_else(|| fift.fi.sites.iter().find(|s| s.var == det.var))
            .unwrap_or_else(|| panic!("{}: no FI site for protected var", prog.name()));
        // XOR can push a value's exponent either way (a downward-zeroing
        // corruption is the paper's own hard case, §IX.B) — but for any
        // value at least one of these high-exponent masks explodes it
        // upward, and that case MUST be caught.
        let (_, budget_base) = golden_run(prog, 0);
        let mut caught = false;
        let mut delivered_any = false;
        for mask in [0x6000_0000u32, 0x4000_0000, 0x2000_0000] {
            let fault = ArmedFault {
                site: FaultSite::HookTarget { site: site.site },
                thread: 1,
                occurrence: 2,
                mask,
            };
            let mut rt = FiFtRuntime::new(Some(fault), ControlBlock::with_ranges(ranges.clone()));
            let run = run_program(prog, &fift.kernel, 0, &mut rt, budget_base * 10);
            delivered_any |= rt.arm.delivered();
            match run.outcome {
                LaunchOutcome::Completed(_) => caught |= rt.cb.sdc_flag,
                // A crash/hang is also an acceptable (detected) outcome.
                _ => caught = true,
            }
        }
        assert!(delivered_any, "{}: fault armed on a live site", prog.name());
        assert!(
            caught,
            "{}: an exponent-exploding corruption of `{}` must raise an alarm",
            prog.name(),
            det.var_name
        );
    }
}

#[test]
fn rscatter_detects_what_it_duplicates() {
    // Corrupt an original-chain variable in the R-Scatter build: the
    // store-point comparison must flag the divergence from the shadow chain.
    let prog = hauberk_benchmarks::cp::Cp::new(ProblemScale::Quick);
    let base = prog.build_kernel();
    let rs = build(&base, BuildVariant::RScatter).unwrap();
    // R-Scatter has no FI hooks; add them on top.
    let mut k = rs.kernel.clone();
    let fi = hauberk::translator::fi::instrument_fi(
        &mut k,
        hauberk::translator::fi::FiPassOptions {
            var_bound: rs.orig_vars as u32,
            count_mode: false,
            only_var: None,
        },
    );
    k.renumber();
    let site = fi
        .sites
        .iter()
        .find(|s| s.var_name == "energyx2" && s.in_loop)
        .unwrap();
    let fault = ArmedFault {
        site: FaultSite::HookTarget { site: site.site },
        thread: 2,
        occurrence: 5,
        mask: 1 << 26,
    };
    let mut rt = FiFtRuntime::new(Some(fault), ControlBlock::default());
    let run = run_program(&prog, &k, 0, &mut rt, u64::MAX);
    assert!(run.outcome.is_completed());
    assert!(rt.arm.delivered());
    assert!(
        rt.cb.sdc_flag,
        "R-Scatter's duplicated chain flags the corrupted original"
    );
}

#[test]
fn campaign_trace_matches_campaign_result() {
    // A SWIFI campaign with a JSONL sink must produce a parseable trace
    // whose per-outcome injection_run counts equal the CampaignResult's.
    use hauberk_swifi::campaign::{run_coverage_campaign, CampaignConfig};
    use hauberk_swifi::plan::PlanConfig;
    use hauberk_telemetry::read_jsonl;
    use std::collections::BTreeMap;

    let trace =
        std::env::temp_dir().join(format!("hauberk-e2e-trace-{}.jsonl", std::process::id()));
    let prog = hauberk_benchmarks::cp::Cp::new(ProblemScale::Quick);
    let cfg = CampaignConfig {
        plan: PlanConfig {
            vars_per_program: 3,
            masks_per_var: 3,
            ..Default::default()
        },
        trace_path: Some(trace.clone()),
        ..Default::default()
    };
    let result = run_coverage_campaign(&prog, FtOptions::default(), &cfg);
    let events = read_jsonl(&trace).expect("trace parses as JSONL");
    let _ = std::fs::remove_file(&trace);

    let kind_count = |k: &str| {
        events
            .iter()
            .filter(|e| e.get("ev").and_then(|v| v.as_str()) == Some(k))
            .count()
    };
    assert_eq!(kind_count("campaign_started"), 1);
    assert_eq!(kind_count("campaign_finished"), 1);
    assert_eq!(kind_count("injection_run"), result.results.len());

    // Per-outcome event counts equal the result's outcome tally.
    let mut traced: BTreeMap<String, usize> = BTreeMap::new();
    for e in &events {
        if e.get("ev").and_then(|v| v.as_str()) == Some("injection_run") {
            let o = e.get("outcome").and_then(|v| v.as_str()).unwrap();
            *traced.entry(o.to_string()).or_default() += 1;
        }
    }
    let mut tallied: BTreeMap<String, usize> = BTreeMap::new();
    for r in &result.results {
        *tallied.entry(r.outcome.to_string()).or_default() += 1;
    }
    assert_eq!(traced, tallied);

    // The derived metrics agree with the trace too.
    assert_eq!(result.metrics.counter("runs"), result.results.len() as u64);
    let delivered = events
        .iter()
        .filter(|e| {
            e.get("ev").and_then(|v| v.as_str()) == Some("injection_run")
                && e.get("delivered").and_then(|v| v.as_bool()) == Some(true)
        })
        .count() as u64;
    assert_eq!(result.metrics.counter("delivered"), delivered);
}

#[test]
fn fp_to_control_propagation_can_crash() {
    // The paper's footnote 1: an FP value feeding an address computation can
    // turn an FP corruption into a failure.
    use hauberk_kir::parser::parse_kernel;
    use hauberk_kir::{PrimTy, Value};
    use hauberk_sim::{Device, Launch};

    let k = parse_kernel(
        r#"kernel f(out: *global f32, x: f32) {
            let idx: i32 = cast<i32>(x * 4.0);
            store(out, idx, 1.0);
        }"#,
    )
    .unwrap();
    let fi = build(&k, BuildVariant::Fi).unwrap();
    let site = fi.fi.sites.iter().find(|s| s.var_name == "idx").unwrap();
    // Ordinary value: completes.
    let mut dev = Device::small_gpu();
    let out = dev.alloc(PrimTy::F32, 64);
    let launch = Launch::grid1d(1, 1);
    let mut rt = hauberk::runtime::FiRuntime::new(None);
    let ok = dev.launch(
        &fi.kernel,
        &[Value::Ptr(out), Value::F32(2.0)],
        &launch,
        &mut rt,
    );
    assert!(ok.is_completed());

    // Corrupt the derived index so the address leaves the device's space.
    let mut dev = Device::small_gpu();
    let out = dev.alloc(PrimTy::F32, 64);
    let mut rt = hauberk::runtime::FiRuntime::new(Some(ArmedFault {
        site: FaultSite::HookTarget { site: site.site },
        thread: 0,
        occurrence: 1,
        // Push the derived address beyond the device's 64 MiB space
        // (device pointers are 32-bit, so a bit-31 flip would wrap).
        mask: 1 << 27,
    }));
    let bad = dev.launch(
        &fi.kernel,
        &[Value::Ptr(out), Value::F32(2.0)],
        &launch,
        &mut rt,
    );
    assert!(
        matches!(bad, LaunchOutcome::Crash { .. }),
        "FP-derived control data can crash the kernel: {bad:?}"
    );
}
