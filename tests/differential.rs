//! Differential property suite: all three execution engines against each
//! other — the tree-walking interpreter, the bytecode VM, and the batched
//! lane-vector VM.
//!
//! The compiled engines (`hauberk-sim`'s `vm` and `vm_batch` modules) are
//! fast because they precompute types, jump targets, charge classes, and —
//! for the batch tier — lane-blocked region plans at lowering time; the tree
//! walker stays simple and obviously faithful to the KIR semantics. This
//! suite is the proof that all three agree: randomly generated kernels —
//! arithmetic over every primitive type, casts, nested control flow,
//! `while`/`break`/`continue`, shared memory with barriers, atomics — run
//! under every engine and must produce
//!
//!   * identical [`LaunchOutcome`]s (including [`ExecStats`] and traps),
//!   * bit-identical output memory,
//!   * identical hook dispatch sequences (site, mask, argument bits, target
//!     bits after the runtime ran — recorded by a [`Recorder`] wrapper),
//!   * identical loop-check sequences and detector alarms,
//!
//! fault-free *and* under injected faults with pinned parameters (site,
//! thread, occurrence, XOR mask all derived from the proptest case, so every
//! failure replays exactly). The generator is heavy on divergence (guarded
//! accumulation, data-dependent `while` loops, per-lane `break`/`continue`),
//! so the batch tier's region fast path and its scalar fallback at
//! divergence/barrier/atomic boundaries are both exercised constantly. On
//! any mismatch the test panics with the offending kernel pretty-printed
//! next to its bytecode disassembly.
//!
//! Case counts: 256 per property in release (the CI release-test job), a
//! smaller smoke count under `cfg(debug_assertions)` so `cargo test` stays
//! quick locally. `PROPTEST_CASES` overrides both.

use hauberk::builds::{build, BuildVariant, FtOptions};
use hauberk::control::ControlBlock;
use hauberk::runtime::{FiFtRuntime, FiRuntime, FtRuntime, ProfilerRuntime};
use hauberk::translator::FiMap;
use hauberk_kir::builder::KernelBuilder;
use hauberk_kir::printer::print_kernel;
use hauberk_kir::stmt::{LoopId, Stmt};
use hauberk_kir::validate::validate_kernel;
use hauberk_kir::{
    BinOp, BuiltinVar, Expr, Hook, KernelDef, MathFn, PrimTy, Ty, UnOp, Value, VarId,
};
use hauberk_sim::{
    disassemble, ArmedFault, Device, DeviceConfig, ExecEngine, FaultSite, HookCtx, HookRuntime,
    Launch, LaunchOutcome, LoopCheckCtx, NullRuntime, RegCorruption,
};
use proptest::prelude::*;

/// 64 per-thread result slots × 4 registers, plus an 8-element tail that the
/// atomic statements contend on.
const OUT_ELEMS: u32 = 64 * 4 + 8;

fn cases() -> u32 {
    if cfg!(debug_assertions) {
        32
    } else {
        256
    }
}

// ---------------------------------------------------------------------------
// Kernel generator
// ---------------------------------------------------------------------------

/// Recipe for one generated statement. Indices are taken modulo the register
/// pools at materialization time, so any byte values are valid.
#[derive(Debug, Clone)]
enum GenStmt {
    /// `f_dst = <fp expr>` — add/mul/abs/min/max/sqrt/sin/safe-div.
    FpDef(u8, u8, u8),
    /// `f_dst += f_src * eps`.
    FpAcc(u8, u8),
    /// `i_dst = <int expr>` — and/mul/xor-shl/shr/safe-rem/safe-div/neg/not.
    IntDef(u8, u8, u8),
    /// `u_dst = <u32 expr>` — hash-mul/xorshift/add-cast/shl-or.
    UDef(u8, u8, u8),
    /// Cross-type cast chain.
    Cast(u8, u8, u8),
    /// `if`/`if-else` guarded accumulation, various comparisons.
    Guarded(u8, u8, u8),
    /// Bounded `while` countdown with optional `break`/`continue`.
    WhileDec(u8, u8),
    /// Stage a value through shared memory with barriers.
    SharedMix(u8, u8),
    /// `atomic_add` into the contended tail of `out`.
    AtomicBump(u8),
}

#[derive(Debug, Clone)]
struct GenKernel {
    trip: u8,
    body: Vec<GenStmt>,
}

fn gen_stmt() -> impl Strategy<Value = GenStmt> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| GenStmt::FpDef(a, b, c)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| GenStmt::FpAcc(a, b)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| GenStmt::IntDef(a, b, c)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| GenStmt::UDef(a, b, c)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| GenStmt::Cast(a, b, c)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| GenStmt::Guarded(a, b, c)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| GenStmt::WhileDec(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| GenStmt::SharedMix(a, b)),
        any::<u8>().prop_map(GenStmt::AtomicBump),
    ]
}

fn gen_kernel() -> impl Strategy<Value = GenKernel> {
    (1u8..20, prop::collection::vec(gen_stmt(), 1..10))
        .prop_map(|(trip, body)| GenKernel { trip, body })
}

/// Materialize the recipe as a KIR kernel. Constructed to always be
/// type-correct, terminating (loops bounded, `while` counters masked small)
/// and in-bounds, but otherwise free to exercise every operator the VM has a
/// fast path for.
fn materialize(g: &GenKernel) -> KernelDef {
    let mut b = KernelBuilder::new("generated");
    let out = b.param("out", Ty::global_ptr(PrimTy::F32));
    let inp = b.param("inp", Ty::global_ptr(PrimTy::F32));
    let n = b.param("n", Ty::I32);
    b.shared_mem(32 * 4); // one f32 per lane of the single warp per block
    let tid = b.local("tid", Ty::I32);
    b.assign(tid, b.global_thread_id_x());

    let f: Vec<VarId> = (0..4)
        .map(|i| b.let_(format!("f{i}"), Ty::F32, Expr::f32(0.5 + i as f32)))
        .collect();
    let iv: Vec<VarId> = (0..4)
        .map(|i| b.let_(format!("i{i}"), Ty::I32, Expr::i32(i + 1)))
        .collect();
    let uv: Vec<VarId> = (0..2u32)
        .map(|i| b.let_(format!("u{i}"), Ty::U32, Expr::u32(0x9E37 + i)))
        .collect();

    let it = b.local("it", Ty::I32);
    b.for_range(it, Expr::var(n), |b| {
        for s in &g.body {
            emit_stmt(b, s, &f, &iv, &uv, it, tid, out, inp);
        }
        // Always read some input so loads stay exercised (tid-bounded).
        b.assign(
            f[0],
            Expr::add(
                Expr::var(f[0]),
                Expr::load(
                    Expr::var(inp),
                    Expr::bin(BinOp::Rem, Expr::var(tid), Expr::i32(64)),
                ),
            ),
        );
    });
    for (i, fv) in f.iter().enumerate() {
        b.store(
            Expr::var(out),
            Expr::add(Expr::mul(Expr::var(tid), Expr::i32(4)), Expr::i32(i as i32)),
            Expr::var(*fv),
        );
    }
    // Fold the integer registers into one observable slot so int/u32/cast
    // divergence shows up in output memory, not just in stats.
    b.store(
        Expr::var(out),
        Expr::bin(BinOp::And, Expr::var(tid), Expr::i32(63)),
        Expr::add(
            Expr::load(
                Expr::var(out),
                Expr::bin(BinOp::And, Expr::var(tid), Expr::i32(63)),
            ),
            Expr::mul(
                Expr::Cast(PrimTy::F32, Box::new(Expr::var(iv[0]))),
                Expr::f32(1e-6),
            ),
        ),
    );
    b.store(
        Expr::var(out),
        Expr::bin(BinOp::And, Expr::var(tid), Expr::i32(63)),
        Expr::add(
            Expr::load(
                Expr::var(out),
                Expr::bin(BinOp::And, Expr::var(tid), Expr::i32(63)),
            ),
            Expr::mul(
                Expr::Cast(PrimTy::F32, Box::new(Expr::var(uv[1]))),
                Expr::f32(1e-12),
            ),
        ),
    );
    b.finish()
}

#[allow(clippy::too_many_arguments)]
fn emit_stmt(
    b: &mut KernelBuilder,
    s: &GenStmt,
    f: &[VarId],
    iv: &[VarId],
    uv: &[VarId],
    it: VarId,
    tid: VarId,
    out: VarId,
    _inp: VarId,
) {
    match s {
        GenStmt::FpDef(dst, src, kind) => {
            let d = f[*dst as usize % 4];
            let s0 = Expr::var(f[*src as usize % 4]);
            let s1 = Expr::var(f[(*src as usize + 1) % 4]);
            let e = match kind % 8 {
                0 => Expr::add(s0, Expr::f32(1.25)),
                1 => Expr::mul(s0, Expr::f32(0.75)),
                2 => Expr::call(MathFn::Abs, vec![Expr::sub(s0, Expr::f32(0.1))]),
                3 => Expr::call(MathFn::Min, vec![s0, s1]),
                4 => Expr::call(MathFn::Max, vec![s0, Expr::f32(0.25)]),
                5 => Expr::call(MathFn::Sqrt, vec![Expr::call(MathFn::Abs, vec![s0])]),
                6 => Expr::call(MathFn::Sin, vec![s0]),
                _ => Expr::div(s0, Expr::add(Expr::mul(s1.clone(), s1), Expr::f32(1.0))),
            };
            b.assign(d, e);
        }
        GenStmt::FpAcc(dst, src) => {
            let d = f[*dst as usize % 4];
            b.assign(
                d,
                Expr::add(
                    Expr::var(d),
                    Expr::mul(Expr::var(f[*src as usize % 4]), Expr::f32(0.001)),
                ),
            );
        }
        GenStmt::IntDef(dst, src, kind) => {
            let d = iv[*dst as usize % 4];
            let s0 = Expr::var(iv[*src as usize % 4]);
            let e = match kind % 8 {
                0 => Expr::bin(BinOp::And, Expr::add(s0, Expr::var(it)), Expr::i32(1023)),
                1 => Expr::add(Expr::mul(s0, Expr::i32(3)), Expr::i32(1)),
                2 => Expr::bin(
                    BinOp::Xor,
                    s0,
                    Expr::bin(BinOp::Shl, Expr::var(it), Expr::i32(2)),
                ),
                3 => Expr::bin(BinOp::Shr, s0, Expr::i32(1)),
                4 => Expr::bin(
                    BinOp::Rem,
                    s0,
                    Expr::add(
                        Expr::bin(BinOp::And, Expr::var(it), Expr::i32(7)),
                        Expr::i32(1),
                    ),
                ),
                5 => Expr::div(
                    s0,
                    Expr::add(
                        Expr::bin(BinOp::And, Expr::var(it), Expr::i32(3)),
                        Expr::i32(1),
                    ),
                ),
                6 => Expr::Un(UnOp::Neg, Box::new(s0)),
                _ => Expr::Un(UnOp::BitNot, Box::new(s0)),
            };
            b.assign(d, e);
        }
        GenStmt::UDef(dst, src, kind) => {
            let d = uv[*dst as usize % 2];
            let s0 = Expr::var(uv[*src as usize % 2]);
            let e = match kind % 4 {
                0 => Expr::mul(s0, Expr::u32(2654435761)),
                1 => Expr::bin(
                    BinOp::Xor,
                    s0.clone(),
                    Expr::bin(BinOp::Shr, s0, Expr::u32(13)),
                ),
                2 => Expr::add(s0, Expr::Cast(PrimTy::U32, Box::new(Expr::var(it)))),
                _ => Expr::bin(
                    BinOp::Or,
                    Expr::bin(BinOp::Shl, s0, Expr::u32(3)),
                    Expr::u32(5),
                ),
            };
            b.assign(d, e);
        }
        GenStmt::Cast(dst, src, kind) => match kind % 6 {
            0 => {
                let d = f[*dst as usize % 4];
                b.assign(
                    d,
                    Expr::Cast(PrimTy::F32, Box::new(Expr::var(iv[*src as usize % 4]))),
                );
            }
            1 => {
                let d = iv[*dst as usize % 4];
                b.assign(
                    d,
                    Expr::Cast(PrimTy::I32, Box::new(Expr::var(f[*src as usize % 4]))),
                );
            }
            2 => {
                let d = uv[*dst as usize % 2];
                b.assign(
                    d,
                    Expr::Cast(PrimTy::U32, Box::new(Expr::var(iv[*src as usize % 4]))),
                );
            }
            3 => {
                let d = iv[*dst as usize % 4];
                b.assign(
                    d,
                    Expr::Cast(PrimTy::I32, Box::new(Expr::var(uv[*src as usize % 2]))),
                );
            }
            4 => {
                let d = f[*dst as usize % 4];
                b.assign(
                    d,
                    Expr::Cast(PrimTy::F32, Box::new(Expr::var(uv[*src as usize % 2]))),
                );
            }
            _ => {
                let d = uv[*dst as usize % 2];
                b.assign(
                    d,
                    Expr::Cast(
                        PrimTy::U32,
                        Box::new(Expr::call(
                            MathFn::Abs,
                            vec![Expr::var(f[*src as usize % 4])],
                        )),
                    ),
                );
            }
        },
        GenStmt::Guarded(dst, src, kind) => {
            let d = f[*dst as usize % 4];
            let sv = f[*src as usize % 4];
            let itk = Expr::bin(BinOp::Rem, Expr::var(it), Expr::i32(5));
            let cond = match kind % 6 {
                0 => Expr::lt(itk, Expr::i32(3)),
                1 => Expr::bin(BinOp::Gt, itk, Expr::i32(1)),
                2 => Expr::bin(BinOp::Eq, itk, Expr::i32(2)),
                3 => Expr::bin(BinOp::Ne, itk, Expr::i32(0)),
                4 => Expr::bin(
                    BinOp::LAnd,
                    Expr::lt(itk, Expr::i32(4)),
                    Expr::bin(
                        BinOp::Gt,
                        Expr::bin(BinOp::And, Expr::var(tid), Expr::i32(3)),
                        Expr::i32(0),
                    ),
                ),
                _ => Expr::bin(
                    BinOp::LOr,
                    Expr::bin(BinOp::Le, itk, Expr::i32(1)),
                    Expr::bin(BinOp::Ge, Expr::var(tid), Expr::i32(40)),
                ),
            };
            if kind % 2 == 0 {
                b.if_(cond, |b| {
                    b.assign(d, Expr::add(Expr::var(d), Expr::var(sv)));
                });
            } else {
                b.if_else(
                    cond,
                    |b| {
                        b.assign(d, Expr::add(Expr::var(d), Expr::var(sv)));
                    },
                    |b| {
                        b.assign(d, Expr::mul(Expr::var(d), Expr::f32(0.5)));
                    },
                );
            }
        }
        GenStmt::WhileDec(dst, kind) => {
            let d = f[*dst as usize % 4];
            let w = iv[3];
            // Bound the counter, then count it down; the decrement comes
            // first so a `continue` can never loop forever.
            b.assign(w, Expr::bin(BinOp::And, Expr::var(w), Expr::i32(7)));
            b.while_(Expr::bin(BinOp::Gt, Expr::var(w), Expr::i32(0)), |b| {
                b.assign(w, Expr::sub(Expr::var(w), Expr::i32(1)));
                match kind % 3 {
                    1 => b.if_(Expr::bin(BinOp::Eq, Expr::var(w), Expr::i32(2)), |b| {
                        b.stmt(Stmt::Break)
                    }),
                    2 => b.if_(Expr::bin(BinOp::Eq, Expr::var(w), Expr::i32(3)), |b| {
                        b.stmt(Stmt::Continue)
                    }),
                    _ => {}
                }
                b.assign(d, Expr::add(Expr::var(d), Expr::f32(0.01)));
            });
        }
        GenStmt::SharedMix(dst, src) => {
            let d = f[*dst as usize % 4];
            let sv = f[*src as usize % 4];
            let lane = Expr::Builtin(BuiltinVar::ThreadIdxX);
            b.store(
                Expr::Builtin(BuiltinVar::SharedBaseF32),
                lane.clone(),
                Expr::var(sv),
            );
            b.sync();
            b.assign(
                d,
                Expr::add(
                    Expr::var(d),
                    Expr::mul(
                        Expr::load(
                            Expr::Builtin(BuiltinVar::SharedBaseF32),
                            Expr::bin(BinOp::And, Expr::add(lane, Expr::i32(1)), Expr::i32(31)),
                        ),
                        Expr::f32(0.125),
                    ),
                ),
            );
            b.sync();
        }
        GenStmt::AtomicBump(src) => {
            b.atomic_add(
                Expr::var(out),
                Expr::add(
                    Expr::i32(256),
                    Expr::bin(BinOp::And, Expr::var(tid), Expr::i32(7)),
                ),
                Expr::mul(Expr::var(f[*src as usize % 4]), Expr::f32(0.125)),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Recording runtime wrapper
// ---------------------------------------------------------------------------

/// Wraps any [`HookRuntime`] and logs every interaction between the engine
/// and the runtime: hook dispatches (with argument bits and post-dispatch
/// target bits), loop checks (with iterator bits and the condition mask),
/// and register corruptions. Two engines agree iff their logs are equal.
struct Recorder<R> {
    inner: R,
    log: Vec<String>,
}

impl<R> Recorder<R> {
    fn new(inner: R) -> Self {
        Recorder {
            inner,
            log: Vec::new(),
        }
    }
}

fn bits_of(vals: &[Value]) -> Vec<u32> {
    vals.iter().map(|v| v.to_bits()).collect()
}

impl<R: HookRuntime> HookRuntime for Recorder<R> {
    fn on_hook(&mut self, hook: &Hook, ctx: &mut HookCtx) {
        let args: Vec<Vec<u32>> = ctx.args.iter().map(|a| bits_of(a)).collect();
        self.inner.on_hook(hook, ctx);
        let target = ctx.target.as_ref().map(|t| bits_of(t));
        self.log.push(format!(
            "hook site={} kind={:?} blk={} warp={} act={:08x} cyc={} args={:?} target={:?}",
            hook.site, hook.kind, ctx.block_id, ctx.warp_id, ctx.active, ctx.cycles, args, target,
        ));
    }

    fn on_loop_check(&mut self, loop_id: LoopId, ctx: &mut LoopCheckCtx) {
        self.inner.on_loop_check(loop_id, ctx);
        let iter = ctx.iter_var.as_ref().map(|t| bits_of(t));
        self.log.push(format!(
            "loop_check loop={} blk={} warp={} act={:08x} iter#{} cyc={} iter_var={:?} cond={:08x}",
            loop_id,
            ctx.block_id,
            ctx.warp_id,
            ctx.active,
            ctx.iteration,
            ctx.cycles,
            iter,
            *ctx.cond_mask,
        ));
    }

    fn register_corruption(
        &mut self,
        hook: &Hook,
        first_thread: u32,
        active: u32,
    ) -> Option<RegCorruption> {
        let r = self.inner.register_corruption(hook, first_thread, active);
        if let Some(rc) = &r {
            self.log.push(format!(
                "reg_corrupt site={} var={} lane={} mask={:08x}",
                hook.site, rc.var, rc.lane, rc.mask,
            ));
        }
        r
    }
}

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

struct RunResult {
    outcome: LaunchOutcome,
    out_bits: Vec<u32>,
    log: Vec<String>,
}

/// Run `kernel` on one engine with a fresh device and a recording runtime.
/// Returns the observable result plus the inner runtime for engine-specific
/// assertions (alarms, delivery flags).
fn run_engine<R: HookRuntime>(
    kernel: &KernelDef,
    trip: u8,
    engine: ExecEngine,
    inner: R,
) -> (RunResult, R) {
    let mut config = DeviceConfig::small_gpu();
    config.engine = engine;
    let mut dev = Device::new(config);
    let out = dev.alloc(PrimTy::F32, OUT_ELEMS);
    let inp = dev.alloc(PrimTy::F32, 64);
    let data: Vec<f32> = (0..64).map(|i| (i as f32 * 0.17).sin() * 3.0).collect();
    dev.mem.copy_in_f32(inp, &data);
    // The budget bounds runaway loops when a fault corrupts an iterator:
    // both engines must then report the same hang at the same cycle.
    let launch = Launch::grid1d(2, 32).with_budget(400_000);
    let mut rt = Recorder::new(inner);
    let outcome = dev.launch(
        kernel,
        &[Value::Ptr(out), Value::Ptr(inp), Value::I32(trip as i32)],
        &launch,
        &mut rt,
    );
    let out_bits = dev
        .mem
        .copy_out_f32(out, OUT_ELEMS)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (
        RunResult {
            outcome,
            out_bits,
            log: rt.log,
        },
        rt.inner,
    )
}

/// The divergence trap: compare every engine's run against the tree-walk
/// reference (the first entry) and, on any mismatch, panic with the kernel
/// source, its bytecode disassembly, and the first point of divergence —
/// everything needed to reproduce and debug by hand.
fn check_agreement(kernel: &KernelDef, label: &str, runs: &[(ExecEngine, &RunResult)]) {
    let mut diffs = String::new();
    let (ref_engine, reference) = runs[0];
    for &(engine, run) in &runs[1..] {
        let rn = ref_engine.name();
        let en = engine.name();
        if reference.outcome != run.outcome {
            diffs.push_str(&format!(
                "outcome differs:\n  {rn}: {:?}\n  {en}: {:?}\n",
                reference.outcome, run.outcome
            ));
        }
        if reference.out_bits != run.out_bits {
            let i = reference
                .out_bits
                .iter()
                .zip(&run.out_bits)
                .position(|(a, b)| a != b)
                .unwrap_or(usize::MAX);
            diffs.push_str(&format!(
                "output memory differs first at word {i}: {rn}={:#010x} {en}={:#010x}\n",
                reference.out_bits.get(i).copied().unwrap_or(0),
                run.out_bits.get(i).copied().unwrap_or(0),
            ));
        }
        if reference.log != run.log {
            let i = reference.log.iter().zip(&run.log).position(|(a, b)| a != b);
            match i {
                Some(i) => diffs.push_str(&format!(
                    "runtime event {i} differs:\n  {rn}: {}\n  {en}: {}\n",
                    reference.log[i], run.log[i]
                )),
                None => diffs.push_str(&format!(
                    "runtime event count differs: {rn}={} {en}={}\n",
                    reference.log.len(),
                    run.log.len()
                )),
            }
        }
    }
    if !diffs.is_empty() {
        panic!(
            "ENGINE DIVERGENCE [{label}]\n{diffs}--- kernel ---\n{}\n--- bytecode ---\n{}",
            print_kernel(kernel),
            disassemble(kernel),
        );
    }
}

/// Derive a pinned fault from proptest-supplied selectors: every byte of the
/// failing case is part of the replay, so shrinking converges on a minimal
/// (kernel, fault) pair.
fn pick_fault(fi: &FiMap, kind: u8, site_sel: u16, thread: u8, occ: u8, mask: u32) -> ArmedFault {
    let sites = &fi.sites;
    let i = site_sel as usize % sites.len().max(1);
    let site = match kind % 4 {
        0 => FaultSite::HookTarget {
            site: sites[i].site,
        },
        1 => FaultSite::RegisterLive {
            site: sites[i].site,
            var: sites[(i * 7 + 1) % sites.len()].var,
        },
        k => {
            let loops: Vec<_> = if k == 2 {
                fi.loops.iter().filter(|l| l.has_iterator).collect()
            } else {
                fi.loops.iter().collect()
            };
            if loops.is_empty() {
                FaultSite::HookTarget {
                    site: sites[i].site,
                }
            } else {
                let l = loops[site_sel as usize % loops.len()];
                if k == 2 {
                    FaultSite::LoopIterator { loop_id: l.loop_id }
                } else {
                    FaultSite::LoopDecision { loop_id: l.loop_id }
                }
            }
        }
    };
    ArmedFault {
        site,
        thread: thread as u32 % 64,
        occurrence: 1 + (occ as u64 % 5),
        mask: mask | 1, // never a no-op fault
    }
}

/// Profile the kernel and return trained ranges for its detectors.
fn train_ranges(kernel: &KernelDef, trip: u8) -> Vec<hauberk::RangeSet> {
    let profiler = build(kernel, BuildVariant::Profiler(FtOptions::default())).unwrap();
    let (r, pr) = run_engine(
        &profiler.kernel,
        trip,
        ExecEngine::TreeWalk,
        ProfilerRuntime::default(),
    );
    assert!(r.outcome.is_completed(), "profiling run must complete");
    (0..profiler.detectors.len())
        .map(|d| hauberk::ranges::profile_ranges(pr.samples(d as u32)))
        .collect()
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Fault-free agreement on the raw kernel: identical outcome (stats
    /// included) and bit-identical output memory.
    #[test]
    fn engines_agree_fault_free(g in gen_kernel()) {
        let k = materialize(&g);
        validate_kernel(&k).unwrap();
        let (tw, _) = run_engine(&k, g.trip, ExecEngine::TreeWalk, NullRuntime);
        let (bc, _) = run_engine(&k, g.trip, ExecEngine::Bytecode, NullRuntime);
        let (ba, _) = run_engine(&k, g.trip, ExecEngine::Batch, NullRuntime);
        prop_assert!(tw.outcome.is_completed(), "generated kernels terminate: {:?}", tw.outcome);
        check_agreement(&k, "fault-free baseline", &[
            (ExecEngine::TreeWalk, &tw),
            (ExecEngine::Bytecode, &bc),
            (ExecEngine::Batch, &ba),
        ]);
    }

    /// Fault-free agreement on the fully instrumented FT build: the hook
    /// dispatch sequence (argument bits, target bits, masks, cycle stamps),
    /// loop checks, and detector alarms all match, and no alarm fires.
    #[test]
    fn engines_agree_instrumented(g in gen_kernel()) {
        let k = materialize(&g);
        let ranges = train_ranges(&k, g.trip);
        let ft = build(&k, BuildVariant::Ft(FtOptions::default())).unwrap();
        prop_assert_eq!(ft.detectors.len(), ranges.len());

        let mk = || FtRuntime::new(ControlBlock::with_ranges(ranges.clone()));
        let (tw, rt_tw) = run_engine(&ft.kernel, g.trip, ExecEngine::TreeWalk, mk());
        let (bc, rt_bc) = run_engine(&ft.kernel, g.trip, ExecEngine::Bytecode, mk());
        let (ba, rt_ba) = run_engine(&ft.kernel, g.trip, ExecEngine::Batch, mk());
        check_agreement(&ft.kernel, "instrumented FT", &[
            (ExecEngine::TreeWalk, &tw),
            (ExecEngine::Bytecode, &bc),
            (ExecEngine::Batch, &ba),
        ]);
        prop_assert!(!rt_tw.cb.sdc_flag, "fault-free FT run alarmed: {:?}", rt_tw.cb.alarms);
        for rt in [&rt_bc, &rt_ba] {
            prop_assert_eq!(
                format!("{:?}", rt_tw.cb.alarms),
                format!("{:?}", rt.cb.alarms)
            );
        }
    }

    /// Agreement under an injected fault on the FI build: same corruption
    /// delivery (site, occurrence, cycle), same downstream behaviour —
    /// including traps and budget-bounded hangs when the fault wrecks
    /// control flow.
    #[test]
    fn engines_agree_under_faults(
        g in gen_kernel(),
        kind in any::<u8>(),
        site_sel in any::<u16>(),
        thread in any::<u8>(),
        occ in any::<u8>(),
        mask in any::<u32>(),
    ) {
        let k = materialize(&g);
        let fi = build(&k, BuildVariant::Fi).unwrap();
        prop_assume!(!fi.fi.sites.is_empty());
        let fault = pick_fault(&fi.fi, kind, site_sel, thread, occ, mask);

        let (tw, rt_tw) = run_engine(
            &fi.kernel, g.trip, ExecEngine::TreeWalk, FiRuntime::new(Some(fault)));
        let (bc, rt_bc) = run_engine(
            &fi.kernel, g.trip, ExecEngine::Bytecode, FiRuntime::new(Some(fault)));
        let (ba, rt_ba) = run_engine(
            &fi.kernel, g.trip, ExecEngine::Batch, FiRuntime::new(Some(fault)));
        check_agreement(&fi.kernel, &format!("FI fault={fault:?}"), &[
            (ExecEngine::TreeWalk, &tw),
            (ExecEngine::Bytecode, &bc),
            (ExecEngine::Batch, &ba),
        ]);
        for rt in [&rt_bc, &rt_ba] {
            prop_assert_eq!(rt_tw.arm.delivered(), rt.arm.delivered());
            prop_assert_eq!(rt_tw.delivered_cycle, rt.delivered_cycle);
        }
    }

    /// Agreement of the full detection pipeline under faults: the FI&FT
    /// build with trained detectors must classify identically — same alarms,
    /// same SDC flag, same first-alarm cycle.
    #[test]
    fn engines_agree_faults_with_detectors(
        g in gen_kernel(),
        kind in any::<u8>(),
        site_sel in any::<u16>(),
        thread in any::<u8>(),
        occ in any::<u8>(),
        mask in any::<u32>(),
    ) {
        let k = materialize(&g);
        let ranges = train_ranges(&k, g.trip);
        let fift = build(&k, BuildVariant::FiFt(FtOptions::default())).unwrap();
        prop_assume!(!fift.fi.sites.is_empty());
        let fault = pick_fault(&fift.fi, kind, site_sel, thread, occ, mask);

        let mk = || FiFtRuntime::new(Some(fault), ControlBlock::with_ranges(ranges.clone()));
        let (tw, rt_tw) = run_engine(&fift.kernel, g.trip, ExecEngine::TreeWalk, mk());
        let (bc, rt_bc) = run_engine(&fift.kernel, g.trip, ExecEngine::Bytecode, mk());
        let (ba, rt_ba) = run_engine(&fift.kernel, g.trip, ExecEngine::Batch, mk());
        check_agreement(&fift.kernel, &format!("FI&FT fault={fault:?}"), &[
            (ExecEngine::TreeWalk, &tw),
            (ExecEngine::Bytecode, &bc),
            (ExecEngine::Batch, &ba),
        ]);
        for rt in [&rt_bc, &rt_ba] {
            prop_assert_eq!(rt_tw.arm.delivered(), rt.arm.delivered());
            prop_assert_eq!(rt_tw.cb.sdc_flag, rt.cb.sdc_flag);
            prop_assert_eq!(rt_tw.first_alarm_cycle, rt.first_alarm_cycle);
            prop_assert_eq!(
                format!("{:?}", rt_tw.cb.alarms),
                format!("{:?}", rt.cb.alarms)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic divergence-heavy case
// ---------------------------------------------------------------------------

/// A hand-built kernel that alternates full-mask arithmetic runs (batch
/// regions) with per-lane divergence, a barrier-staged shared-memory
/// shuffle, and contended atomics — every batch→scalar fallback boundary in
/// one kernel. The three engines must agree bit-for-bit.
#[test]
fn divergence_heavy_three_way() {
    let g = GenKernel {
        trip: 9,
        body: vec![
            GenStmt::FpDef(0, 1, 7),
            GenStmt::IntDef(1, 2, 2),
            GenStmt::UDef(0, 1, 1),
            GenStmt::Guarded(2, 0, 4),
            GenStmt::WhileDec(1, 1),
            GenStmt::WhileDec(3, 2),
            GenStmt::SharedMix(0, 2),
            GenStmt::AtomicBump(3),
            GenStmt::Cast(2, 1, 3),
            GenStmt::FpAcc(1, 0),
        ],
    };
    let k = materialize(&g);
    validate_kernel(&k).unwrap();
    let (tw, _) = run_engine(&k, g.trip, ExecEngine::TreeWalk, NullRuntime);
    let (bc, _) = run_engine(&k, g.trip, ExecEngine::Bytecode, NullRuntime);
    let (ba, _) = run_engine(&k, g.trip, ExecEngine::Batch, NullRuntime);
    assert!(tw.outcome.is_completed(), "{:?}", tw.outcome);
    check_agreement(
        &k,
        "divergence-heavy",
        &[
            (ExecEngine::TreeWalk, &tw),
            (ExecEngine::Bytecode, &bc),
            (ExecEngine::Batch, &ba),
        ],
    );
}
