//! Property-based tests over the whole stack: randomly generated kernels
//! must round-trip through the printer/parser, run deterministically, and —
//! the core Hauberk invariant — never raise an alarm on a fault-free run of
//! their instrumented form.

use hauberk::builds::{build, BuildVariant, FtOptions};
use hauberk::control::ControlBlock;
use hauberk::runtime::{FtRuntime, ProfilerRuntime};
use hauberk_kir::builder::KernelBuilder;
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::printer::print_kernel;
use hauberk_kir::validate::validate_kernel;
use hauberk_kir::{BinOp, Expr, KernelDef, MathFn, PrimTy, Ty, Value, VarId};
use hauberk_sim::{Device, Launch, NullRuntime};
use proptest::prelude::*;

/// Recipe for one generated statement of the loop body.
#[derive(Debug, Clone)]
enum GenStmt {
    /// `f_k = <fp expr over available vars>`
    FpDef(u8, u8, u8),
    /// `f_k = f_k + <fp expr>` (self-accumulating)
    FpAcc(u8, u8),
    /// `i_k = <int expr>`
    IntDef(u8, u8),
    /// guarded accumulation inside an `if`
    Guarded(u8, u8),
}

/// A whole generated kernel: a preamble, a loop with generated statements,
/// stores of every accumulator.
#[derive(Debug, Clone)]
struct GenKernel {
    trip: u8,
    body: Vec<GenStmt>,
}

fn gen_stmt() -> impl Strategy<Value = GenStmt> {
    prop_oneof![
        (0u8..4, 0u8..4, 0u8..3).prop_map(|(a, b, c)| GenStmt::FpDef(a, b, c)),
        (0u8..4, 0u8..4).prop_map(|(a, b)| GenStmt::FpAcc(a, b)),
        (0u8..4, 0u8..5).prop_map(|(a, b)| GenStmt::IntDef(a, b)),
        (0u8..4, 0u8..4).prop_map(|(a, b)| GenStmt::Guarded(a, b)),
    ]
}

fn gen_kernel() -> impl Strategy<Value = GenKernel> {
    (1u8..20, prop::collection::vec(gen_stmt(), 1..8))
        .prop_map(|(trip, body)| GenKernel { trip, body })
}

/// Materialize the recipe as a KIR kernel. Constructed to always be
/// type-correct, terminating, and in-bounds.
fn materialize(g: &GenKernel) -> KernelDef {
    let mut b = KernelBuilder::new("generated");
    let out = b.param("out", Ty::global_ptr(PrimTy::F32));
    let inp = b.param("inp", Ty::global_ptr(PrimTy::F32));
    let n = b.param("n", Ty::I32);
    let tid = b.local("tid", Ty::I32);
    b.assign(tid, b.global_thread_id_x());

    // Four FP registers and four int registers.
    let f: Vec<VarId> = (0..4)
        .map(|i| b.let_(format!("f{i}"), Ty::F32, Expr::f32(0.5 + i as f32)))
        .collect();
    let iv: Vec<VarId> = (0..4)
        .map(|i| b.let_(format!("i{i}"), Ty::I32, Expr::i32(i + 1)))
        .collect();

    let it = b.local("it", Ty::I32);
    b.for_range(it, Expr::var(n), |b| {
        for s in &g.body {
            match s {
                GenStmt::FpDef(dst, src, kind) => {
                    let e = match kind {
                        0 => Expr::add(Expr::var(f[*src as usize]), Expr::f32(1.25)),
                        1 => Expr::mul(Expr::var(f[*src as usize]), Expr::f32(0.75)),
                        _ => Expr::call(
                            MathFn::Abs,
                            vec![Expr::sub(Expr::var(f[*src as usize]), Expr::f32(0.1))],
                        ),
                    };
                    b.assign(f[*dst as usize], e);
                }
                GenStmt::FpAcc(dst, src) => {
                    let d = f[*dst as usize];
                    b.assign(
                        d,
                        Expr::add(
                            Expr::var(d),
                            Expr::mul(Expr::var(f[*src as usize]), Expr::f32(0.001)),
                        ),
                    );
                }
                GenStmt::IntDef(dst, src) => {
                    let e = Expr::bin(
                        BinOp::And,
                        Expr::add(Expr::var(iv[*src as usize % 4]), Expr::var(it)),
                        Expr::i32(1023),
                    );
                    b.assign(iv[*dst as usize], e);
                }
                GenStmt::Guarded(dst, src) => {
                    let d = f[*dst as usize];
                    let sv = f[*src as usize];
                    b.if_(
                        Expr::lt(
                            Expr::bin(BinOp::Rem, Expr::var(it), Expr::i32(3)),
                            Expr::i32(2),
                        ),
                        |b| {
                            b.assign(d, Expr::add(Expr::var(d), Expr::var(sv)));
                        },
                    );
                }
            }
        }
        // Read some input so loads are exercised (tid-bounded).
        b.assign(
            f[0],
            Expr::add(
                Expr::var(f[0]),
                Expr::load(
                    Expr::var(inp),
                    Expr::bin(BinOp::Rem, Expr::var(tid), Expr::i32(64)),
                ),
            ),
        );
    });
    // Stores: one per FP register.
    for (i, fv) in f.iter().enumerate() {
        b.store(
            Expr::var(out),
            Expr::add(Expr::mul(Expr::var(tid), Expr::i32(4)), Expr::i32(i as i32)),
            Expr::var(*fv),
        );
    }
    let _ = g.trip;
    b.finish()
}

fn run_generated(
    kernel: &KernelDef,
    trip: u8,
    rt: &mut dyn hauberk_sim::HookRuntime,
) -> (hauberk_sim::LaunchOutcome, Vec<f32>) {
    let mut dev = Device::small_gpu();
    let out = dev.alloc(PrimTy::F32, 64 * 4);
    let inp = dev.alloc(PrimTy::F32, 64);
    let data: Vec<f32> = (0..64).map(|i| (i as f32 * 0.17).sin()).collect();
    dev.mem.copy_in_f32(inp, &data);
    let launch = Launch::grid1d(2, 32).with_budget(200_000_000);
    let outcome = dev.launch(
        kernel,
        &[Value::Ptr(out), Value::Ptr(inp), Value::I32(trip as i32)],
        &launch,
        rt,
    );
    let o = dev.mem.copy_out_f32(out, 64 * 4);
    (outcome, o)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// print → parse → identical AST.
    #[test]
    fn printer_parser_round_trip(g in gen_kernel()) {
        let k = materialize(&g);
        validate_kernel(&k).unwrap();
        let printed = print_kernel(&k);
        let back = parse_kernel(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        prop_assert_eq!(k, back);
    }

    /// Same kernel, same input ⇒ bit-identical output and cycles.
    #[test]
    fn simulator_is_deterministic(g in gen_kernel()) {
        let k = materialize(&g);
        let (o1, r1) = run_generated(&k, g.trip, &mut NullRuntime);
        let (o2, r2) = run_generated(&k, g.trip, &mut NullRuntime);
        prop_assert!(o1.is_completed());
        prop_assert_eq!(o1.stats().work_cycles, o2.stats().work_cycles);
        prop_assert_eq!(r1, r2);
    }

    /// The Hauberk invariant: a fault-free run of the fully instrumented
    /// kernel raises no alarm (checksum algebra holds, duplication compares
    /// equal, trained ranges cover the training run) and computes the same
    /// output as the baseline.
    #[test]
    fn instrumented_fault_free_run_never_alarms(g in gen_kernel()) {
        let k = materialize(&g);
        let (base_outcome, base_out) = run_generated(&k, g.trip, &mut NullRuntime);
        prop_assert!(base_outcome.is_completed());

        // Profile, then run FT with the trained ranges.
        let profiler = build(&k, BuildVariant::Profiler(FtOptions::default())).unwrap();
        let mut pr = ProfilerRuntime::default();
        let (p_outcome, _) = run_generated(&profiler.kernel, g.trip, &mut pr);
        prop_assert!(p_outcome.is_completed());
        let ranges: Vec<_> = (0..profiler.detectors.len())
            .map(|d| hauberk::ranges::profile_ranges(pr.samples(d as u32)))
            .collect();

        let ft = build(&k, BuildVariant::Ft(FtOptions::default())).unwrap();
        prop_assert_eq!(ft.detectors.len(), ranges.len());
        let mut rt = FtRuntime::new(ControlBlock::with_ranges(ranges));
        let (ft_outcome, ft_out) = run_generated(&ft.kernel, g.trip, &mut rt);
        prop_assert!(ft_outcome.is_completed());
        prop_assert!(!rt.cb.sdc_flag, "alarms: {:?}", rt.cb.alarms);
        prop_assert_eq!(base_out, ft_out);
    }

    /// Instrumented kernels (FT + FI passes applied) serialize through the
    /// printer and parser: the re-parsed kernel is alpha-equivalent (the
    /// parser renumbers variables by textual order, so we check canonical-
    /// form stability) and *semantically identical* (bit-equal outputs and
    /// cycle counts).
    #[test]
    fn instrumented_kernels_serialize(g in gen_kernel()) {
        let k = materialize(&g);
        for variant in [
            BuildVariant::Ft(FtOptions::default()),
            BuildVariant::Fi,
            BuildVariant::FiFt(FtOptions::default()),
        ] {
            let b = build(&k, variant).unwrap();
            let printed = print_kernel(&b.kernel);
            let back = parse_kernel(&printed)
                .unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
            // Canonical form is a fixed point.
            prop_assert_eq!(&print_kernel(&back), &printed);
            // And the deserialized kernel behaves identically.
            let (o1, r1) = run_generated(&b.kernel, g.trip, &mut NullRuntime);
            let (o2, r2) = run_generated(&back, g.trip, &mut NullRuntime);
            prop_assert!(o1.is_completed());
            prop_assert_eq!(o1.stats().work_cycles, o2.stats().work_cycles);
            prop_assert_eq!(r1, r2);
        }
    }

    /// R-Scatter instrumentation also preserves semantics fault-free.
    #[test]
    fn rscatter_fault_free_preserves_output(g in gen_kernel()) {
        let k = materialize(&g);
        let (_, base_out) = run_generated(&k, g.trip, &mut NullRuntime);
        let rs = build(&k, BuildVariant::RScatter).unwrap();
        let mut rt = FtRuntime::default();
        let (o, out) = run_generated(&rs.kernel, g.trip, &mut rt);
        prop_assert!(o.is_completed());
        prop_assert!(!rt.cb.sdc_flag);
        prop_assert_eq!(base_out, out);
    }
}

/// Named regression: the one shrunken counterexample proptest ever found —
/// a single-statement kernel (`trip: 1, body: [FpDef(0, 0, 0)]`, i.e. one
/// `f0 = f0 + 1.25` in a one-iteration loop). The minimal loop body once
/// tripped the instrumented fault-free invariant, so the case is pinned here
/// as an ordinary test instead of a `proptest-regressions` seed file.
#[test]
fn regression_minimal_single_fpdef_kernel() {
    let g = GenKernel {
        trip: 1,
        body: vec![GenStmt::FpDef(0, 0, 0)],
    };
    let k = materialize(&g);
    validate_kernel(&k).unwrap();

    // Round-trips through the printer/parser.
    let printed = print_kernel(&k);
    assert_eq!(k, parse_kernel(&printed).unwrap());

    // Baseline runs deterministically.
    let (o1, r1) = run_generated(&k, g.trip, &mut NullRuntime);
    let (o2, r2) = run_generated(&k, g.trip, &mut NullRuntime);
    assert!(o1.is_completed());
    assert_eq!(o1.stats().work_cycles, o2.stats().work_cycles);
    assert_eq!(r1, r2);

    // The instrumented fault-free run neither alarms nor perturbs output.
    let profiler = build(&k, BuildVariant::Profiler(FtOptions::default())).unwrap();
    let mut pr = ProfilerRuntime::default();
    let (p_outcome, _) = run_generated(&profiler.kernel, g.trip, &mut pr);
    assert!(p_outcome.is_completed());
    let ranges: Vec<_> = (0..profiler.detectors.len())
        .map(|d| hauberk::ranges::profile_ranges(pr.samples(d as u32)))
        .collect();
    let ft = build(&k, BuildVariant::Ft(FtOptions::default())).unwrap();
    assert_eq!(ft.detectors.len(), ranges.len());
    let mut rt = FtRuntime::new(ControlBlock::with_ranges(ranges));
    let (ft_outcome, ft_out) = run_generated(&ft.kernel, g.trip, &mut rt);
    assert!(ft_outcome.is_completed());
    assert!(!rt.cb.sdc_flag, "alarms: {:?}", rt.cb.alarms);
    assert_eq!(r1, ft_out);
}
