//! Paper-scale smoke tests (run with `cargo test --release -- --ignored`):
//! the larger problem sizes behind `figures --paper` must build, run, and
//! keep the headline properties.

use hauberk::builds::{build, BuildVariant, FtOptions};
use hauberk::control::ControlBlock;
use hauberk::program::{golden_run, run_program};
use hauberk::ranges::profile_ranges;
use hauberk::runtime::{FtRuntime, ProfilerRuntime};
use hauberk_benchmarks::{hpc_suite, ProblemScale};

#[test]
#[ignore = "paper-scale inputs: slower; run with --ignored"]
fn paper_scale_suite_runs_clean_under_protection() {
    for prog in hpc_suite(ProblemScale::Paper) {
        let prog = prog.as_ref();
        let (golden, _) = golden_run(prog, 0);
        assert!(!golden.is_empty(), "{}", prog.name());

        let profiler = build(
            &prog.build_kernel(),
            BuildVariant::Profiler(FtOptions::default()),
        )
        .unwrap();
        let mut pr = ProfilerRuntime::default();
        let run = run_program(prog, &profiler.kernel, 0, &mut pr, u64::MAX);
        assert!(run.outcome.is_completed(), "{} profiler", prog.name());
        let ranges: Vec<_> = (0..profiler.detectors.len())
            .map(|d| profile_ranges(pr.samples(d as u32)))
            .collect();

        let ft = build(&prog.build_kernel(), BuildVariant::Ft(FtOptions::default())).unwrap();
        let mut rt = FtRuntime::new(ControlBlock::with_ranges(ranges));
        let run = run_program(prog, &ft.kernel, 0, &mut rt, u64::MAX);
        assert!(run.outcome.is_completed(), "{} FT", prog.name());
        assert!(!rt.cb.sdc_flag, "{}: {:?}", prog.name(), rt.cb.alarms);
        assert_eq!(run.output.unwrap(), golden, "{}", prog.name());
    }
}

#[test]
#[ignore = "paper-scale inputs: slower; run with --ignored"]
fn paper_scale_overheads_keep_the_fig13_shape() {
    let rows = hauberk_bench_shim::measure(ProblemScale::Paper);
    let avg = rows.iter().map(|(_, h)| h).sum::<f64>() / rows.len() as f64;
    assert!(avg < 40.0, "paper-scale Hauberk average: {avg:.1}%");
    let rpes = rows.iter().find(|(n, _)| *n == "RPES").unwrap().1;
    for (n, h) in &rows {
        if n != &"RPES" {
            assert!(rpes > *h, "RPES dominates: {rpes:.1} vs {n} {h:.1}");
        }
    }
}

/// Minimal local re-measurement (the bench crate is a dev-only sibling, not
/// a dependency of the root package).
mod hauberk_bench_shim {
    use super::*;
    use hauberk_sim::{LaunchOutcome, NullRuntime};

    pub fn measure(scale: ProblemScale) -> Vec<(&'static str, f64)> {
        hpc_suite(scale)
            .iter()
            .map(|prog| {
                let prog = prog.as_ref();
                let base = run_program(prog, &prog.build_kernel(), 0, &mut NullRuntime, u64::MAX);
                let base_cycles = base.outcome.completed_stats().unwrap().kernel_cycles;
                let profiler = build(
                    &prog.build_kernel(),
                    BuildVariant::Profiler(FtOptions::default()),
                )
                .unwrap();
                let mut pr = ProfilerRuntime::default();
                run_program(prog, &profiler.kernel, 0, &mut pr, u64::MAX);
                let ranges: Vec<_> = (0..profiler.detectors.len())
                    .map(|d| profile_ranges(pr.samples(d as u32)))
                    .collect();
                let ft =
                    build(&prog.build_kernel(), BuildVariant::Ft(FtOptions::default())).unwrap();
                let mut rt = FtRuntime::new(ControlBlock::with_ranges(ranges));
                let cycles = match run_program(prog, &ft.kernel, 0, &mut rt, u64::MAX).outcome {
                    LaunchOutcome::Completed(s) => s.kernel_cycles,
                    other => panic!("{}: {other:?}", prog.name()),
                };
                (
                    prog.name(),
                    (cycles as f64 / base_cycles as f64 - 1.0) * 100.0,
                )
            })
            .collect()
    }
}
