//! Campaign determinism: the same `CampaignConfig` and seed must produce
//! **byte-identical** classified results — per-experiment CSV records and the
//! JSON summary — regardless of
//!
//!   * the rayon worker-thread count (1 vs. many): the injection loop runs
//!     experiments in parallel but classification is collected in plan
//!     order, and
//!   * the execution engine: the bytecode VM and the tree-walking
//!     interpreter must tally exactly the same outcomes at exactly the same
//!     simulated cycles.
//!
//! All four (engine × thread-count) combinations are compared against each
//! other in one test, so the thread-count global is never raced by a sibling
//! test in this binary.

use hauberk::builds::FtOptions;
use hauberk_benchmarks::{program_by_name, ProblemScale};
use hauberk_sim::ExecEngine;
use hauberk_swifi::campaign::{run_coverage_campaign, CampaignConfig};
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::report::{summary_json, to_csv};

fn campaign_fingerprint(engine: ExecEngine, threads: usize) -> (String, String) {
    rayon::set_thread_count(threads);
    let prog = program_by_name("CP", ProblemScale::Quick).expect("CP exists");
    let cfg = CampaignConfig {
        plan: PlanConfig {
            vars_per_program: 4,
            masks_per_var: 3,
            bit_counts: vec![1, 3],
            scheduler_per_mille: 120,
            register_per_mille: 120,
        },
        ..Default::default()
    };
    let mut cfg = cfg;
    cfg.engine = Some(engine);
    let r = run_coverage_campaign(prog.as_ref(), FtOptions::default(), &cfg);
    assert!(!r.results.is_empty(), "campaign ran no experiments");
    (to_csv(&r), summary_json(&r).to_string())
}

#[test]
fn campaign_results_are_thread_and_engine_invariant() {
    let combos = [
        (ExecEngine::TreeWalk, 1),
        (ExecEngine::TreeWalk, 4),
        (ExecEngine::Bytecode, 1),
        (ExecEngine::Bytecode, 4),
    ];
    let mut runs = Vec::new();
    for (engine, threads) in combos {
        runs.push((engine, threads, campaign_fingerprint(engine, threads)));
    }
    let (e0, t0, base) = &runs[0];
    for (engine, threads, fp) in &runs[1..] {
        assert_eq!(
            &base.0, &fp.0,
            "per-experiment CSV differs: {e0:?}/{t0} threads vs {engine:?}/{threads} threads"
        );
        assert_eq!(
            &base.1, &fp.1,
            "summary JSON differs: {e0:?}/{t0} threads vs {engine:?}/{threads} threads"
        );
    }
    // And re-running the exact same configuration is a fixed point.
    let again = campaign_fingerprint(ExecEngine::Bytecode, 4);
    assert_eq!(base.0, again.0, "re-run CSV differs");
    assert_eq!(base.1, again.1, "re-run summary differs");
}
