//! Campaign determinism: the same `CampaignConfig` and seed must produce
//! **byte-identical** classified results — per-experiment CSV records and the
//! JSON summary — regardless of
//!
//!   * the rayon worker-thread count (1 vs. many): the injection loop runs
//!     experiments in parallel but classification is collected in plan
//!     order, and
//!   * the execution engine: the bytecode VM and the tree-walking
//!     interpreter must tally exactly the same outcomes at exactly the same
//!     simulated cycles.
//!
//! All four (engine × thread-count) combinations are compared against each
//! other in one test, so the thread-count global is never raced by a sibling
//! test in this binary.
//!
//! The orchestrator tests extend the contract to sharded execution: the
//! summary must be invariant to the work-unit size (adaptive off) and to any
//! interruption point — killing a journaled campaign mid-flight and resuming
//! it, even from a journal whose last record was torn mid-write, must
//! converge to a summary byte-identical to an uninterrupted run.

use hauberk::builds::FtOptions;
use hauberk_benchmarks::{program_by_name, ProblemScale};
use hauberk_sim::ExecEngine;
use hauberk_swifi::campaign::{run_coverage_campaign, CampaignConfig, CampaignKind};
use hauberk_swifi::orchestrator::{run_orchestrated_campaign, OrchestratorConfig};
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::report::{summary_json, to_csv};
use std::path::PathBuf;

fn campaign_fingerprint(engine: ExecEngine, threads: usize) -> (String, String) {
    rayon::set_thread_count(threads);
    let prog = program_by_name("CP", ProblemScale::Quick).expect("CP exists");
    let cfg = CampaignConfig {
        plan: PlanConfig {
            vars_per_program: 4,
            masks_per_var: 3,
            bit_counts: vec![1, 3],
            scheduler_per_mille: 120,
            register_per_mille: 120,
        },
        ..Default::default()
    };
    let mut cfg = cfg;
    cfg.engine = Some(engine);
    let r = run_coverage_campaign(prog.as_ref(), FtOptions::default(), &cfg);
    assert!(!r.results.is_empty(), "campaign ran no experiments");
    (to_csv(&r), summary_json(&r).to_string())
}

#[test]
fn campaign_results_are_thread_and_engine_invariant() {
    let combos = [
        (ExecEngine::TreeWalk, 1),
        (ExecEngine::TreeWalk, 4),
        (ExecEngine::Bytecode, 1),
        (ExecEngine::Bytecode, 4),
        (ExecEngine::Batch, 1),
        (ExecEngine::Batch, 4),
    ];
    let mut runs = Vec::new();
    for (engine, threads) in combos {
        runs.push((engine, threads, campaign_fingerprint(engine, threads)));
    }
    let (e0, t0, base) = &runs[0];
    for (engine, threads, fp) in &runs[1..] {
        assert_eq!(
            &base.0, &fp.0,
            "per-experiment CSV differs: {e0:?}/{t0} threads vs {engine:?}/{threads} threads"
        );
        assert_eq!(
            &base.1, &fp.1,
            "summary JSON differs: {e0:?}/{t0} threads vs {engine:?}/{threads} threads"
        );
    }
    // And re-running the exact same configuration is a fixed point.
    let again = campaign_fingerprint(ExecEngine::Bytecode, 4);
    assert_eq!(base.0, again.0, "re-run CSV differs");
    assert_eq!(base.1, again.1, "re-run summary differs");
}

fn orch_cfg() -> CampaignConfig {
    CampaignConfig {
        plan: PlanConfig {
            vars_per_program: 6,
            masks_per_var: 8,
            bit_counts: vec![1, 3],
            scheduler_per_mille: 120,
            register_per_mille: 120,
        },
        ..Default::default()
    }
}

fn run_orch(orch: &OrchestratorConfig) -> (hauberk_swifi::ShardedCampaignResult, String, String) {
    let prog = program_by_name("CP", ProblemScale::Quick).expect("CP exists");
    let r = run_orchestrated_campaign(
        prog.as_ref(),
        CampaignKind::Coverage(FtOptions::default()),
        &orch_cfg(),
        orch,
    )
    .expect("orchestrated campaign");
    let text = r.summarize();
    let json = r.summary_json().to_string();
    (r, text, json)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hauberk-determinism-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

/// With adaptive sampling off, the summary must not depend on how the plan
/// is chunked into work units.
#[test]
fn sharded_summary_is_invariant_to_unit_size() {
    let (_, text5, json5) = run_orch(&OrchestratorConfig {
        shard_size: 5,
        ..Default::default()
    });
    for shard_size in [32, 10_000] {
        let (_, text, json) = run_orch(&OrchestratorConfig {
            shard_size,
            ..Default::default()
        });
        assert_eq!(
            text5, text,
            "text summary depends on shard size {shard_size}"
        );
        assert_eq!(
            json5, json,
            "JSON summary depends on shard size {shard_size}"
        );
    }
}

/// Simulate a kill: keep only a prefix of the journal, resume, and demand a
/// summary byte-identical to the uninterrupted run. `keep_extra_bytes`
/// additionally keeps a torn fragment of the next record, as a kill during a
/// write would leave behind.
fn interrupt_and_resume(keep_lines: usize, keep_extra_bytes: usize, tag: &str) {
    let full_journal = tmp(&format!("{tag}-full.jsonl"));
    let cut_journal = tmp(&format!("{tag}-cut.jsonl"));
    for p in [&full_journal, &cut_journal] {
        let _ = std::fs::remove_file(p);
    }
    let (full, full_text, full_json) = run_orch(&OrchestratorConfig {
        shard_size: 5,
        journal_path: Some(full_journal.clone()),
        ..Default::default()
    });
    assert!(full.executed > 30, "enough units to interrupt meaningfully");

    let text = std::fs::read_to_string(&full_journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > keep_lines + 1, "journal long enough to cut");
    let mut cut: String = lines[..keep_lines]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    if keep_extra_bytes > 0 {
        let torn = &lines[keep_lines][..keep_extra_bytes.min(lines[keep_lines].len() - 1)];
        cut.push_str(torn); // no trailing newline: torn mid-write
    }
    std::fs::write(&cut_journal, &cut).unwrap();

    let (resumed, res_text, res_json) = run_orch(&OrchestratorConfig {
        shard_size: 5,
        resume_from: Some(cut_journal.clone()),
        ..Default::default()
    });
    let _ = std::fs::remove_file(&full_journal);
    assert_eq!(
        resumed.resumed_units as usize,
        keep_lines - 1,
        "meta + units kept"
    );
    assert!(
        resumed.executed > resumed.resumed_injections,
        "resume re-executes the remaining work"
    );
    assert_eq!(
        resumed.dropped_lines,
        u64::from(keep_extra_bytes > 0),
        "torn fragment is dropped, clean cut drops nothing"
    );
    assert_eq!(full_text, res_text, "resumed text summary differs");
    assert_eq!(full_json, res_json, "resumed JSON summary differs");
    // The resumed journal is now complete: replaying it alone reproduces the
    // same summary with zero fresh execution.
    let (replayed, rep_text, _) = run_orch(&OrchestratorConfig {
        shard_size: 5,
        resume_from: Some(cut_journal.clone()),
        ..Default::default()
    });
    let _ = std::fs::remove_file(&cut_journal);
    assert_eq!(
        replayed.resumed_injections, replayed.executed,
        "completed journal replays without re-execution"
    );
    assert_eq!(full_text, rep_text, "replayed summary differs");
}

#[test]
fn interrupted_campaign_resumes_byte_identically() {
    // Keep the meta record plus 4 completed units — a mid-campaign kill.
    interrupt_and_resume(5, 0, "clean");
}

#[test]
fn torn_journal_resume_warns_and_converges() {
    // Same, but the kill tore the 6th record mid-write: the reader must
    // drop the fragment (with a warning), re-execute that unit, and still
    // produce the byte-identical summary.
    interrupt_and_resume(5, 25, "torn");
}

/// Truncate a journal line to its first `keep_bytes` bytes with no trailing
/// newline — the shape a kill mid-`write` leaves behind.
fn tear_line(full: &std::path::Path, cut: &std::path::Path, line: usize, keep_bytes: usize) {
    let text = std::fs::read_to_string(full).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() > line,
        "journal long enough to tear line {line}"
    );
    let mut out: String = lines[..line].iter().map(|l| format!("{l}\n")).collect();
    out.push_str(&lines[line][..keep_bytes.min(lines[line].len() - 1)]);
    std::fs::write(cut, &out).unwrap();
}

/// A kill during the very first write can tear the v3 meta header itself.
/// The resume must drop the fragment, append a fresh meta record, re-execute
/// everything, and still converge to the byte-identical summary — and the
/// healed journal must then replay clean.
#[test]
fn torn_meta_header_heals_on_resume() {
    let full_journal = tmp("meta-full.jsonl");
    let cut_journal = tmp("meta-cut.jsonl");
    for p in [&full_journal, &cut_journal] {
        let _ = std::fs::remove_file(p);
    }
    let (_, full_text, full_json) = run_orch(&OrchestratorConfig {
        shard_size: 5,
        journal_path: Some(full_journal.clone()),
        ..Default::default()
    });
    tear_line(&full_journal, &cut_journal, 0, 30);
    let _ = std::fs::remove_file(&full_journal);

    let (resumed, res_text, res_json) = run_orch(&OrchestratorConfig {
        shard_size: 5,
        resume_from: Some(cut_journal.clone()),
        ..Default::default()
    });
    assert_eq!(resumed.resumed_units, 0, "a torn meta replays nothing");
    assert_eq!(resumed.dropped_lines, 1, "the meta fragment is dropped");
    assert_eq!(full_text, res_text, "resumed text summary differs");
    assert_eq!(full_json, res_json, "resumed JSON summary differs");

    // The resume appended a fresh meta; the healed journal now replays with
    // zero fresh execution.
    let replay = hauberk_swifi::journal::read_journal(&cut_journal).unwrap();
    assert!(replay.meta.is_some(), "fresh meta appended on resume");
    assert_eq!(
        replay.dropped_lines, 1,
        "only the original fragment is torn"
    );
    let (replayed, rep_text, _) = run_orch(&OrchestratorConfig {
        shard_size: 5,
        resume_from: Some(cut_journal.clone()),
        ..Default::default()
    });
    let _ = std::fs::remove_file(&cut_journal);
    assert_eq!(
        replayed.resumed_injections, replayed.executed,
        "healed journal replays without re-execution"
    );
    assert_eq!(full_text, rep_text, "replayed summary differs");
}

/// A checkpointed journal spells its checkpoint identity out in a `ckpt`
/// record right after the meta. A kill can tear that record too; the resume
/// must drop the fragment, re-append the identity, and converge byte-
/// identically — with the checkpoint store still engaged.
#[test]
fn torn_checkpoint_record_heals_on_resume() {
    let full_journal = tmp("ckpt-full.jsonl");
    let cut_journal = tmp("ckpt-cut.jsonl");
    for p in [&full_journal, &cut_journal] {
        let _ = std::fs::remove_file(p);
    }
    let (full, full_text, full_json) = run_orch(&OrchestratorConfig {
        shard_size: 5,
        journal_path: Some(full_journal.clone()),
        checkpoint: true,
        ..Default::default()
    });
    assert!(full.checkpoint.is_some(), "checkpoint store must build");
    {
        // Layout check: the record under tear really is the ckpt identity.
        let replay = hauberk_swifi::journal::read_journal(&full_journal).unwrap();
        let meta = replay.meta.expect("meta record");
        let ck = replay.ckpt.expect("ckpt record");
        assert_eq!(ck.identity, meta.checkpoint, "identity matches the meta");
    }
    // Keep the meta, tear the ckpt record (line 1) mid-write.
    tear_line(&full_journal, &cut_journal, 1, 20);
    let _ = std::fs::remove_file(&full_journal);

    let (resumed, res_text, res_json) = run_orch(&OrchestratorConfig {
        shard_size: 5,
        resume_from: Some(cut_journal.clone()),
        checkpoint: true,
        ..Default::default()
    });
    assert_eq!(resumed.resumed_units, 0, "only meta survived the tear");
    assert_eq!(resumed.dropped_lines, 1, "the ckpt fragment is dropped");
    assert!(resumed.checkpoint.is_some(), "resume still checkpoints");
    assert_eq!(full_text, res_text, "resumed text summary differs");
    assert_eq!(full_json, res_json, "resumed JSON summary differs");

    // The identity record was re-appended: the healed journal carries it
    // again and replays with zero fresh execution.
    let replay = hauberk_swifi::journal::read_journal(&cut_journal).unwrap();
    let meta = replay.meta.expect("meta record");
    let ck = replay.ckpt.expect("ckpt record re-appended on resume");
    assert_eq!(ck.identity, meta.checkpoint, "healed identity matches meta");
    let (replayed, rep_text, _) = run_orch(&OrchestratorConfig {
        shard_size: 5,
        resume_from: Some(cut_journal.clone()),
        checkpoint: true,
        ..Default::default()
    });
    let _ = std::fs::remove_file(&cut_journal);
    assert_eq!(
        replayed.resumed_injections, replayed.executed,
        "healed checkpointed journal replays without re-execution"
    );
    assert_eq!(full_text, rep_text, "replayed summary differs");
}
