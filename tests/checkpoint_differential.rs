//! Differential checkpoint suite: fault-free prefix checkpointing must be an
//! **invisible** optimization. For property-generated kernels — with barrier
//! sections, thread-divergent guards, and divergent loop trip counts — a
//! checkpointed campaign must produce byte-identical observables to full
//! re-execution:
//!
//!   * the per-experiment CSV (one outcome per injection, so any divergence
//!     in outputs, hook logs, or alarms shows up as a changed record),
//!   * the JSON summary, and
//!   * the text summary,
//!
//! on every engine tier (tree-walk, bytecode, batch) and under 1 vs. 4
//! rayon worker threads. The generated kernels put fault sites in *every*
//! barrier-delimited section, so the comparison includes faults landing
//! immediately before and after section boundaries, and the composed
//! per-section outcome map must re-total to the campaign.
//!
//! Thread counts are only varied inside the property test: the sibling
//! tests in this binary run under whatever count is current, which is safe
//! precisely because the contract under test says results are thread-count
//! invariant.

use hauberk::builds::FtOptions;
use hauberk::program::HostProgram;
use hauberk::textprog::{TextOptions, TextProgram};
use hauberk_sim::ExecEngine;
use hauberk_swifi::campaign::{CampaignConfig, CampaignKind};
use hauberk_swifi::orchestrator::{run_orchestrated_campaign, OrchestratorConfig};
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::report::to_csv;
use hauberk_swifi::ShardedCampaignResult;
use proptest::prelude::*;

const ENGINES: [ExecEngine; 3] = [
    ExecEngine::TreeWalk,
    ExecEngine::Bytecode,
    ExecEngine::Batch,
];

/// Recipe for one generated kernel: number of barrier-delimited phases,
/// per-phase loop trip count, whether a thread-divergent guard scales the
/// accumulator, and whether the loop bound itself diverges per thread.
#[derive(Debug, Clone)]
struct GenKernel {
    phases: u8,
    trip: u8,
    guarded: bool,
    divergent_trip: bool,
}

fn gen_kernel() -> impl Strategy<Value = GenKernel> {
    (1u8..4, 1u8..6, any::<bool>(), any::<bool>()).prop_map(
        |(phases, trip, guarded, divergent_trip)| GenKernel {
            phases,
            trip,
            guarded,
            divergent_trip,
        },
    )
}

/// Render the recipe as KIR source. Each phase is `sync(); for { acc += ... }`
/// (the first phase omits the barrier), so `partition_sections` sees one
/// section per phase boundary and fault sites exist on both sides of every
/// barrier. The divergent variants exercise warp reconvergence under the
/// restored snapshot.
fn render(g: &GenKernel) -> String {
    let mut body = String::new();
    body.push_str("    let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();\n");
    body.push_str("    let acc: f32 = 0.5;\n");
    for p in 0..g.phases {
        if p > 0 {
            body.push_str("    sync();\n");
        }
        let bound = if g.divergent_trip {
            format!("tid % 3 + {}", g.trip)
        } else {
            format!("{}", g.trip)
        };
        body.push_str(&format!(
            "    for (i{p} = 0; i{p} < {bound}; i{p} = i{p} + 1) {{\n\
             \x20       acc = acc + load(x, (tid + i{p}) % n) * 0.125;\n\
             \x20   }}\n"
        ));
        if g.guarded {
            body.push_str("    if (tid % 3 < 1) {\n        acc = acc * 1.0625;\n    }\n");
        }
    }
    body.push_str("    store(out, tid, acc);\n");
    format!("kernel ckpt_prop(out: *global f32, x: *global f32, n: i32) {{\n{body}}}\n")
}

fn program(g: &GenKernel) -> TextProgram {
    let opts = TextOptions {
        blocks: 3,
        threads_per_block: 8,
        elems: 24,
        exact: false,
    };
    TextProgram::from_kir(&render(g), opts).expect("generated kernel parses")
}

/// Small but site-saturating plan: more target variables than the kernel
/// has, so every section's sites receive faults.
fn cfg(engine: ExecEngine) -> CampaignConfig {
    CampaignConfig {
        plan: PlanConfig {
            vars_per_program: 8,
            masks_per_var: 4,
            bit_counts: vec![1, 3],
            scheduler_per_mille: 120,
            register_per_mille: 120,
        },
        engine: Some(engine),
        ..Default::default()
    }
}

fn run(
    prog: &TextProgram,
    kind: CampaignKind,
    engine: ExecEngine,
    checkpoint: bool,
) -> (ShardedCampaignResult, String, String, String) {
    let r = run_orchestrated_campaign(
        prog,
        kind,
        &cfg(engine),
        &OrchestratorConfig {
            checkpoint,
            ..Default::default()
        },
    )
    .expect("orchestrated campaign");
    let csv = to_csv(&r.campaign);
    let json = r.summary_json().to_string();
    let text = r.summarize();
    (r, csv, json, text)
}

/// Assert the checkpointed run actually engaged the store and that its
/// composed per-section outcomes re-total to the executed injections.
fn check_engaged(g: &GenKernel, ck: &ShardedCampaignResult) {
    let stats = ck
        .checkpoint
        .as_ref()
        .unwrap_or_else(|| panic!("checkpoint store must build for {g:?}"));
    assert!(stats.boundaries > 0, "no boundaries captured for {g:?}");
    assert_eq!(stats.injections, ck.executed, "every injection accounted");
    let total: usize = ck.section_outcomes.iter().map(|s| s.counts.total()).sum();
    assert_eq!(
        total as u64, ck.executed,
        "section outcomes re-total the campaign"
    );
    if g.phases >= 2 {
        let sections: std::collections::BTreeSet<_> = ck
            .section_outcomes
            .iter()
            .filter_map(|s| s.section)
            .collect();
        assert!(
            sections.len() >= 2,
            "faults must land on both sides of a barrier for {g:?}: {:?}",
            ck.section_outcomes
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sensitivity campaigns on generated kernels: full vs. checkpointed is
    /// byte-identical per combination, all six (engine × thread-count)
    /// checkpointed runs agree with each other, and checkpointing does
    /// strictly less simulated work.
    #[test]
    fn checkpointed_sensitivity_is_byte_identical(g in gen_kernel()) {
        let prog = program(&g);
        let mut baseline: Option<(String, String, String)> = None;
        for engine in ENGINES {
            for threads in [1usize, 4] {
                rayon::set_thread_count(threads);
                let (full, f_csv, f_json, f_text) =
                    run(&prog, CampaignKind::Sensitivity, engine, false);
                let (ck, c_csv, c_json, c_text) =
                    run(&prog, CampaignKind::Sensitivity, engine, true);
                prop_assert_eq!(&f_csv, &c_csv, "CSV differs on {:?}/{}", engine, threads);
                prop_assert_eq!(&f_json, &c_json, "JSON differs on {:?}/{}", engine, threads);
                prop_assert_eq!(&f_text, &c_text, "text differs on {:?}/{}", engine, threads);
                prop_assert!(full.checkpoint.is_none(), "full run must not report stats");
                check_engaged(&g, &ck);
                prop_assert!(
                    ck.sim_cycles < full.sim_cycles,
                    "checkpointing must save cycles ({} vs {})",
                    ck.sim_cycles,
                    full.sim_cycles
                );
                match &baseline {
                    None => baseline = Some((c_csv, c_json, c_text)),
                    Some((csv, json, text)) => {
                        prop_assert_eq!(csv, &c_csv, "CSV varies with {:?}/{}", engine, threads);
                        prop_assert_eq!(json, &c_json, "JSON varies with {:?}/{}", engine, threads);
                        prop_assert_eq!(text, &c_text, "text varies with {:?}/{}", engine, threads);
                    }
                }
            }
        }
    }
}

/// Coverage campaigns run the FT-hardened build, so detector hook logs and
/// alarms feed the outcome of every injection: byte-identical CSV here means
/// the restored prefix reproduces the hook stream exactly, on every engine.
/// Uses a divergent, multi-section kernel — the adversarial case for
/// splicing.
#[test]
fn checkpointed_coverage_preserves_alarms_and_hook_logs() {
    let g = GenKernel {
        phases: 3,
        trip: 4,
        guarded: true,
        divergent_trip: true,
    };
    let prog = program(&g);
    for engine in ENGINES {
        let kind = CampaignKind::Coverage(FtOptions::default());
        let (full, f_csv, f_json, f_text) = run(&prog, kind, engine, false);
        let (ck, c_csv, c_json, c_text) = run(&prog, kind, engine, true);
        assert_eq!(f_csv, c_csv, "coverage CSV differs on {engine:?}");
        assert_eq!(f_json, c_json, "coverage JSON differs on {engine:?}");
        assert_eq!(f_text, c_text, "coverage text differs on {engine:?}");
        assert!(full.checkpoint.is_none());
        check_engaged(&g, &ck);
        // Detected outcomes exist, so alarms actually fired under splicing.
        assert!(
            ck.campaign
                .results
                .iter()
                .any(|r| { matches!(r.outcome, hauberk_swifi::classify::FiOutcome::Detected) }),
            "coverage campaign on {engine:?} raised no alarms — the hook-log \
             comparison would be vacuous"
        );
    }
}

/// Faults pinned to the sites adjacent to every barrier: the generated
/// kernels put an assignment as the last statement before each `sync()` and
/// the loop header right after it, so the plan's site sweep necessarily
/// covers both edges of each boundary. Verify the composed section map names
/// every phase and stays identical between the engines' checkpointed runs.
#[test]
fn boundary_faults_compose_across_all_sections() {
    let g = GenKernel {
        phases: 3,
        trip: 3,
        guarded: false,
        divergent_trip: false,
    };
    let prog = program(&g);
    let sections = hauberk_kir::partition_sections(&prog.build_kernel());
    assert!(
        sections.sections.len() >= 3,
        "three phases must partition into at least three sections, got {:?}",
        sections.sections
    );
    let mut per_engine = Vec::new();
    for engine in ENGINES {
        let (ck, csv, _, _) = run(&prog, CampaignKind::Sensitivity, engine, true);
        check_engaged(&g, &ck);
        let hit: std::collections::BTreeSet<_> = ck
            .section_outcomes
            .iter()
            .filter_map(|s| s.section)
            .collect();
        assert!(
            hit.len() >= sections.sections.len().min(3),
            "plan must place faults in every section on {engine:?}: {:?}",
            ck.section_outcomes
        );
        per_engine.push((engine, csv, ck.section_outcomes.clone()));
    }
    let (e0, csv0, sec0) = &per_engine[0];
    for (engine, csv, sec) in &per_engine[1..] {
        assert_eq!(csv0, csv, "CSV differs between {e0:?} and {engine:?}");
        assert_eq!(
            sec0, sec,
            "section composition differs between {e0:?} and {engine:?}"
        );
    }
}
