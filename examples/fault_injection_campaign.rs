//! Run a fault-injection campaign on one benchmark program and print its
//! error-sensitivity and detection-coverage profile (the per-program slice
//! of the paper's Figs. 1 and 14).
//!
//! ```bash
//! cargo run --release --example fault_injection_campaign            # CP
//! cargo run --release --example fault_injection_campaign -- MRI-Q
//! cargo run --release --example fault_injection_campaign -- TPACF 20 30
//! ```
//!
//! Arguments: `[program] [vars_per_program] [masks_per_var]`.

use hauberk::builds::FtOptions;
use hauberk_benchmarks::{program_by_name, ProblemScale};
use hauberk_swifi::campaign::{run_coverage_campaign, run_sensitivity_campaign, CampaignConfig};
use hauberk_swifi::classify::FiOutcome;
use hauberk_swifi::mask::PAPER_BIT_COUNTS;
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::stats::{aggregate, by_bits, multi_fault_coverage};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("CP");
    let vars: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let masks: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);

    let prog = program_by_name(name, ProblemScale::Quick)
        .unwrap_or_else(|| panic!("unknown program `{name}`"));
    let cfg = CampaignConfig {
        plan: PlanConfig {
            vars_per_program: vars,
            masks_per_var: masks,
            bit_counts: PAPER_BIT_COUNTS.to_vec(),
            scheduler_per_mille: 60,
            register_per_mille: 60,
        },
        ..Default::default()
    };

    println!(
        "=== {} — baseline error sensitivity (no detectors) ===",
        prog.name()
    );
    let base = run_sensitivity_campaign(prog.as_ref(), &cfg);
    let agg = aggregate(&base.results);
    println!(
        "{} injections: failure {:.1}%  SDC {:.1}%  not manifested {:.1}%",
        agg.total(),
        agg.ratio(FiOutcome::Failure) * 100.0,
        agg.ratio(FiOutcome::Undetected) * 100.0,
        agg.ratio(FiOutcome::Masked) * 100.0,
    );

    println!(
        "\n=== {} — with Hauberk detectors (FI&FT build) ===",
        prog.name()
    );
    let cov = run_coverage_campaign(prog.as_ref(), FtOptions::default(), &cfg);
    println!("loop detectors placed: {}", cov.detectors);
    for (bits, counts) in by_bits(&cov.results) {
        println!(
            "  {bits:>2}-bit masks: failure {:.1}%  masked {:.1}%  det&masked {:.1}%  detected {:.1}%  undetected {:.1}%",
            counts.ratio(FiOutcome::Failure) * 100.0,
            counts.ratio(FiOutcome::Masked) * 100.0,
            counts.ratio(FiOutcome::DetectedMasked) * 100.0,
            counts.ratio(FiOutcome::Detected) * 100.0,
            counts.ratio(FiOutcome::Undetected) * 100.0,
        );
    }
    let agg = aggregate(&cov.results);
    println!(
        "\ndetection coverage: {:.1}% (paper suite average: 86.8%)",
        agg.coverage() * 100.0
    );
    println!(
        "under two independent faults: {:.1}%",
        multi_fault_coverage(agg.coverage(), 2) * 100.0
    );
}
