//! Measure the performance overhead of every protection technique on the
//! full HPC suite — the paper's Fig. 13 — plus the loop-time profile behind
//! the design (Fig. 4), using only the public library APIs.
//!
//! ```bash
//! cargo run --release --example overhead_study
//! cargo run --release --example overhead_study -- --paper   # larger inputs
//! ```

use hauberk::builds::{build, r_naive_cycles, BuildVariant, FtOptions};
use hauberk::program::{run_program, HostProgram};
use hauberk::ranges::{profile_ranges, RangeSet};
use hauberk::runtime::{FtRuntime, ProfilerRuntime};
use hauberk::ControlBlock;
use hauberk_benchmarks::{hpc_suite, ProblemScale};
use hauberk_sim::{LaunchOutcome, NullRuntime};

/// Kernel cycles of one build variant with configured detectors, or `None`
/// when the variant cannot run (R-Scatter on TPACF: shared-memory overflow).
fn kernel_cycles(
    prog: &dyn HostProgram,
    variant: BuildVariant,
    ranges: &[RangeSet],
) -> Option<u64> {
    let b = build(&prog.build_kernel(), variant).ok()?;
    let cb = ControlBlock::with_ranges(ranges[..b.detectors.len().min(ranges.len())].to_vec());
    let mut rt = FtRuntime::new(cb);
    match run_program(prog, &b.kernel, 0, &mut rt, u64::MAX).outcome {
        LaunchOutcome::Completed(s) => (!rt.cb.sdc_flag).then_some(s.kernel_cycles),
        _ => None,
    }
}

/// Profile loop-detector value ranges for a given detector layout.
fn trained(prog: &dyn HostProgram, opts: FtOptions) -> Vec<RangeSet> {
    let profiler = build(&prog.build_kernel(), BuildVariant::Profiler(opts)).unwrap();
    let mut pr = ProfilerRuntime::default();
    run_program(prog, &profiler.kernel, 0, &mut pr, u64::MAX);
    (0..profiler.detectors.len())
        .map(|d| profile_ranges(pr.samples(d as u32)))
        .collect()
}

fn main() {
    let scale = if std::env::args().any(|a| a == "--paper") {
        ProblemScale::Paper
    } else {
        ProblemScale::Quick
    };
    println!(
        "{:<10} {:>7} {:>9} {:>10} {:>11} {:>10} {:>9}",
        "program", "loop %", "R-Naive", "R-Scatter", "Hauberk-NL", "Hauberk-L", "Hauberk"
    );
    let mut sum = 0.0;
    let mut n = 0.0;
    for prog in hpc_suite(scale) {
        let prog = prog.as_ref();
        let base_run = run_program(prog, &prog.build_kernel(), 0, &mut NullRuntime, u64::MAX);
        let stats = base_run.outcome.completed_stats().expect("baseline runs");
        let base = stats.kernel_cycles;
        let pct = |c: Option<u64>| {
            c.map(|c| format!("{:.1}", (c as f64 / base as f64 - 1.0) * 100.0))
                .unwrap_or_else(|| "N/A".into())
        };

        let ranges = trained(prog, FtOptions::default());
        let ranges_l = trained(prog, FtOptions::l_only());
        let full = kernel_cycles(prog, BuildVariant::Ft(FtOptions::default()), &ranges);
        if let Some(c) = full {
            sum += (c as f64 / base as f64 - 1.0) * 100.0;
            n += 1.0;
        }
        println!(
            "{:<10} {:>7.1} {:>9} {:>10} {:>11} {:>10} {:>9}",
            prog.name(),
            stats.loop_fraction() * 100.0,
            pct(Some(r_naive_cycles(base))),
            pct(kernel_cycles(prog, BuildVariant::RScatter, &ranges)),
            pct(kernel_cycles(
                prog,
                BuildVariant::Ft(FtOptions::nl_only()),
                &ranges
            )),
            pct(kernel_cycles(
                prog,
                BuildVariant::Ft(FtOptions::l_only()),
                &ranges_l
            )),
            pct(full),
        );
    }
    println!("\nHauberk average overhead: {:.1}% (paper: 15.3%)", sum / n);
}
