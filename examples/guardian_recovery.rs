//! Demonstrate the guardian's full Fig. 11 diagnosis flow on a simulated
//! two-GPU node: a healthy run, a tolerated transient fault, a false alarm
//! that updates the value ranges on-line, and a permanent device fault that
//! triggers BIST, disables the device, and migrates the work.
//!
//! ```bash
//! cargo run --release --example guardian_recovery
//! ```

use hauberk::builds::{build, BuildVariant, FtOptions};
use hauberk::program::{golden_run, run_program, HostProgram};
use hauberk::ranges::{profile_ranges, RangeSet};
use hauberk::runtime::ProfilerRuntime;
use hauberk_benchmarks::{cp::Cp, ProblemScale};
use hauberk_guardian::{
    Cluster, FaultRegime, Guardian, GuardianConfig, ManagedGpu, RecoveryOutcome,
};
use hauberk_sim::fault::{ArmedFault, FaultSite};

fn trained_ranges(prog: &Cp) -> (hauberk_kir::KernelDef, Vec<RangeSet>, ArmedFault) {
    let base = prog.build_kernel();
    let profiler = build(&base, BuildVariant::Profiler(FtOptions::default())).unwrap();
    let mut pr = ProfilerRuntime::default();
    let run = run_program(prog, &profiler.kernel, 0, &mut pr, u64::MAX);
    assert!(run.outcome.is_completed());
    let ranges = (0..profiler.detectors.len())
        .map(|d| profile_ranges(pr.samples(d as u32)))
        .collect();
    let fift = build(&base, BuildVariant::FiFt(FtOptions::default())).unwrap();
    let site = fift
        .fi
        .sites
        .iter()
        .find(|s| s.var_name.starts_with("energyx") && s.in_loop)
        .unwrap();
    let fault = ArmedFault {
        site: FaultSite::HookTarget { site: site.site },
        thread: 3,
        occurrence: 7,
        mask: 0x6000_0000,
    };
    (fift.kernel, ranges, fault)
}

fn describe(g: &Guardian, outcome: &RecoveryOutcome) {
    match outcome {
        RecoveryOutcome::Success {
            device,
            runs,
            false_alarm,
            ..
        } => println!(
            "  -> success on GPU {device} after {runs} run(s){}",
            if *false_alarm {
                " (false alarm diagnosed, ranges updated)"
            } else {
                ""
            }
        ),
        other => println!("  -> {other:?}"),
    }
    println!("  events: {:?}\n", g.events);
}

fn main() {
    let prog = Cp::new(ProblemScale::Quick);
    let (kernel, ranges, fault) = trained_ranges(&prog);
    let (golden, _) = golden_run(&prog, 0);
    let cfg = GuardianConfig {
        watchdog_floor: 20_000_000,
        ..Default::default()
    };

    println!("=== scenario 1: healthy device ===");
    let mut g = Guardian::new(cfg, Cluster::healthy(2));
    let mut r = ranges.clone();
    let out = g.run_protected(&prog, &kernel, &mut r, 0);
    describe(&g, &out);

    println!("=== scenario 2: transient fault (alarm -> re-execute -> recover) ===");
    let mut cluster = Cluster::healthy(2);
    cluster.gpus[0] = ManagedGpu::faulty(0, FaultRegime::Transient { remaining: 1 }, fault);
    let mut g = Guardian::new(cfg, cluster);
    let mut r = ranges.clone();
    let out = g.run_protected(&prog, &kernel, &mut r, 0);
    if let RecoveryOutcome::Success { output, .. } = &out {
        assert_eq!(*output, golden, "re-execution restored the golden output");
    }
    describe(&g, &out);

    println!("=== scenario 3: under-trained ranges (false alarm -> on-line learning) ===");
    let mut g = Guardian::new(cfg, Cluster::healthy(1));
    let mut naive = vec![profile_ranges(&[1e-30]); ranges.len()];
    let out = g.run_protected(&prog, &kernel, &mut naive, 0);
    describe(&g, &out);
    let mut g2 = Guardian::new(cfg, Cluster::healthy(1));
    let out2 = g2.run_protected(&prog, &kernel, &mut naive, 0);
    println!("  after learning, the rerun is clean:");
    describe(&g2, &out2);

    println!("=== scenario 4: permanent device fault (BIST -> disable -> migrate) ===");
    let mut cluster = Cluster::healthy(2);
    cluster.gpus[0] = ManagedGpu::faulty(0, FaultRegime::Permanent, fault);
    let mut g = Guardian::new(cfg, cluster);
    let mut r = ranges.clone();
    let out = g.run_protected(&prog, &kernel, &mut r, 0);
    describe(&g, &out);
    println!(
        "GPU 0 enabled: {} (back-off probe scheduled at t={})",
        g.cluster.gpus[0].enabled, g.cluster.gpus[0].next_probe
    );
}
