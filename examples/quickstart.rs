//! Quickstart: protect a GPU kernel with Hauberk, inject a fault, watch the
//! detectors catch it.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use hauberk::builds::{build, BuildVariant, FtOptions};
use hauberk::control::ControlBlock;
use hauberk::ranges::profile_ranges;
use hauberk::runtime::{FiFtRuntime, ProfilerRuntime};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::printer::print_kernel;
use hauberk_kir::{PrimTy, Value};
use hauberk_sim::fault::{ArmedFault, FaultSite};
use hauberk_sim::{Device, Launch, NullRuntime};

fn main() {
    // ── 1. A GPU kernel in the bundled mini-CUDA dialect ──────────────────
    let kernel = parse_kernel(
        r#"
        kernel dot(out: *global f32, x: *global f32, y: *global f32, n: i32) {
            let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
            let acc: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                acc = acc + load(x, i) * load(y, i);
            }
            store(out, tid, acc);
        }
        "#,
    )
    .expect("kernel parses");

    // ── 2. Derive the Hauberk detectors (source-to-source) ────────────────
    let ft = build(&kernel, BuildVariant::Ft(FtOptions::default())).expect("instrumentation");
    println!("=== instrumented kernel ===\n{}", print_kernel(&ft.kernel));
    println!(
        "protected loop variable(s): {}",
        ft.detectors
            .iter()
            .map(|d| d.var_name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // ── 3. Set up device data ──────────────────────────────────────────────
    let n: u32 = 64;
    let threads: u32 = 128;
    let setup = |dev: &mut Device| -> Vec<Value> {
        let out = dev.alloc(PrimTy::F32, threads);
        let x = dev.alloc(PrimTy::F32, n);
        let y = dev.alloc(PrimTy::F32, n);
        let xs: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() + 1.5).collect();
        let ys: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos() + 2.0).collect();
        dev.mem.copy_in_f32(x, &xs);
        dev.mem.copy_in_f32(y, &ys);
        vec![
            Value::Ptr(out),
            Value::Ptr(x),
            Value::Ptr(y),
            Value::I32(n as i32),
        ]
    };
    let launch = Launch::grid1d(threads / 32, 32);

    // Golden run (baseline, fault-free).
    let mut dev = Device::gpu();
    let args = setup(&mut dev);
    let outcome = dev.launch(&kernel, &args, &launch, &mut NullRuntime);
    assert!(outcome.is_completed());
    let golden = dev.mem.copy_out_f32(args[0].as_ptr().unwrap(), threads);
    println!("\ngolden out[0] = {}", golden[0]);

    // ── 4. Profile the value ranges the loop detector will check ───────────
    let profiler = build(&kernel, BuildVariant::Profiler(FtOptions::default())).unwrap();
    let mut pr = ProfilerRuntime::default();
    let mut dev = Device::gpu();
    let args = setup(&mut dev);
    dev.launch(&profiler.kernel, &args, &launch, &mut pr);
    let ranges: Vec<_> = (0..profiler.detectors.len())
        .map(|d| profile_ranges(pr.samples(d as u32)))
        .collect();
    println!("profiled ranges: {}", ranges[0]);

    // ── 5. Inject a fault into the protected accumulator mid-loop ─────────
    let fift = build(&kernel, BuildVariant::FiFt(FtOptions::default())).unwrap();
    let site = fift
        .fi
        .sites
        .iter()
        .find(|s| s.var_name == "acc" && s.in_loop)
        .expect("acc has an in-loop FI site");
    let fault = ArmedFault {
        site: FaultSite::HookTarget { site: site.site },
        thread: 5,
        occurrence: 20,
        mask: 1 << 28, // exponent bit: a large magnitude change
    };
    let mut rt = FiFtRuntime::new(Some(fault), ControlBlock::with_ranges(ranges));
    let mut dev = Device::gpu();
    let args = setup(&mut dev);
    let outcome = dev.launch(&fift.kernel, &args, &launch, &mut rt);
    assert!(outcome.is_completed());
    let corrupted = dev.mem.copy_out_f32(args[0].as_ptr().unwrap(), threads);

    println!("\n=== fault injected into thread 5's accumulator ===");
    println!("fault delivered: {}", rt.arm.delivered());
    println!("out[5]: golden {} vs corrupted {}", golden[5], corrupted[5]);
    println!("SDC alarm raised: {}", rt.cb.sdc_flag);
    for a in &rt.cb.alarms {
        println!("  alarm: {:?} (observed {:.3e})", a.kind, a.observed);
    }
    assert!(rt.cb.sdc_flag, "the detector catches the corruption");
    println!("\nHauberk caught the silent data corruption before it left the GPU.");
}
