#![warn(missing_docs)]

//! # hauberk-repro — umbrella crate
//!
//! Re-exports the whole reproduction so the examples and integration tests
//! (and downstream users who want a single dependency) can reach every
//! subsystem:
//!
//! * [`kir`] — kernel IR, mini-CUDA parser, dataflow analyses
//! * [`sim`] — the deterministic SIMT GPU simulator
//! * [`core`] — the Hauberk translator, range model, and library runtimes
//! * [`swifi`] — fault-injection campaigns and statistics
//! * [`guardian`] — the retry-based recovery engine
//! * [`benchmarks`] — the evaluation workloads
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the
//! system inventory and experiment index.

pub use hauberk as core;
pub use hauberk_benchmarks as benchmarks;
pub use hauberk_guardian as guardian;
pub use hauberk_kir as kir;
pub use hauberk_sim as sim;
pub use hauberk_swifi as swifi;
