//! Behavioural tests of the cycle cost model: dual-issue pairing, memory
//! coalescing, divergence serialization, and loop attribution — the
//! mechanisms behind the paper's Fig. 4 and Fig. 13.

use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{KernelDef, PrimTy, Value};
use hauberk_sim::{Device, ExecStats, Launch, NullRuntime};

fn run(k: &KernelDef, args: &[Value], dev: &mut Device, launch: Launch) -> ExecStats {
    let r = dev.launch(k, args, &launch, &mut NullRuntime);
    r.completed_stats().expect("completes").clone()
}

#[test]
fn coalesced_access_touches_fewer_segments_than_strided() {
    let coalesced = parse_kernel(
        r#"kernel c(out: *global f32, x: *global f32) {
            let i: i32 = thread_idx_x();
            store(out, i, load(x, i));
        }"#,
    )
    .unwrap();
    let strided = parse_kernel(
        r#"kernel s(out: *global f32, x: *global f32) {
            let i: i32 = thread_idx_x();
            store(out, i, load(x, i * 32));
        }"#,
    )
    .unwrap();
    let mut dev = Device::small_gpu();
    let out = dev.alloc(PrimTy::F32, 32);
    let x = dev.alloc(PrimTy::F32, 32 * 32);
    let args = [Value::Ptr(out), Value::Ptr(x)];
    let sc = run(&coalesced, &args, &mut dev, Launch::grid1d(1, 32));
    let ss = run(&strided, &args, &mut dev, Launch::grid1d(1, 32));
    assert!(
        ss.mem_segments > sc.mem_segments * 4,
        "strided load touches many more 128B segments: {} vs {}",
        ss.mem_segments,
        sc.mem_segments
    );
    assert!(ss.work_cycles > sc.work_cycles);
}

#[test]
fn divergent_branch_costs_both_arms() {
    let uniform = parse_kernel(
        r#"kernel u(out: *global f32) {
            let i: i32 = thread_idx_x();
            let v: f32 = 0.0;
            if (0 < 1) {
                v = sqrt(2.0) + sqrt(3.0) + sqrt(5.0);
            } else {
                v = sqrt(7.0) + sqrt(11.0) + sqrt(13.0);
            }
            store(out, i, v);
        }"#,
    )
    .unwrap();
    let divergent = parse_kernel(
        r#"kernel d(out: *global f32) {
            let i: i32 = thread_idx_x();
            let v: f32 = 0.0;
            if (i % 2 == 0) {
                v = sqrt(2.0) + sqrt(3.0) + sqrt(5.0);
            } else {
                v = sqrt(7.0) + sqrt(11.0) + sqrt(13.0);
            }
            store(out, i, v);
        }"#,
    )
    .unwrap();
    let mut dev = Device::small_gpu();
    let out = dev.alloc(PrimTy::F32, 32);
    let args = [Value::Ptr(out)];
    let cu = run(&uniform, &args, &mut dev, Launch::grid1d(1, 32)).work_cycles;
    let cd = run(&divergent, &args, &mut dev, Launch::grid1d(1, 32)).work_cycles;
    assert!(
        cd as f64 > cu as f64 * 1.3,
        "divergence serializes both arms: {cd} vs {cu}"
    );
}

#[test]
fn cross_class_instructions_pair_same_class_do_not() {
    // FP chain interleaved with independent integer ops pairs; a pure FP
    // chain cannot.
    let mixed = parse_kernel(
        r#"kernel m(out: *global f32, n: i32) {
            let f: f32 = 1.5;
            let a: i32 = 3;
            for (i = 0; i < n; i = i + 1) {
                f = f * 1.0001;
                a = a ^ 21;
                f = f + 0.5;
                a = a | 5;
            }
            store(out, a, f);
        }"#,
    )
    .unwrap();
    let pure = parse_kernel(
        r#"kernel p(out: *global f32, n: i32) {
            let f: f32 = 1.5;
            let g: f32 = 2.5;
            for (i = 0; i < n; i = i + 1) {
                f = f * 1.0001;
                g = g * 1.0002;
                f = f + 0.5;
                g = g + 0.25;
            }
            store(out, 0, f + g);
        }"#,
    )
    .unwrap();
    let mut dev = Device::small_gpu();
    let out = dev.alloc(PrimTy::F32, 64);
    let args = [Value::Ptr(out), Value::I32(64)];
    let sm = run(&mixed, &args, &mut dev, Launch::grid1d(1, 1));
    let sp = run(&pure, &args, &mut dev, Launch::grid1d(1, 1));
    // The pure-FP loop still pairs its integer step with the body's last FP
    // op once per iteration; the mixed loop pairs every interleaved pair.
    assert!(
        sm.paired_ops as f64 > sp.paired_ops as f64 * 1.8,
        "cross-class ops co-issue: {} vs {}",
        sm.paired_ops,
        sp.paired_ops
    );
    // Pairing can never exceed half of all issued ops (two-wide issue).
    assert!(sm.paired_ops * 2 <= sm.total_ops());
}

#[test]
fn loop_cycles_never_exceed_work_cycles() {
    let k = parse_kernel(
        r#"kernel l(out: *global f32, n: i32) {
            let a: f32 = 1.0;
            let b: f32 = sqrt(17.0);
            for (i = 0; i < n; i = i + 1) {
                a = a + b;
            }
            store(out, 0, a);
        }"#,
    )
    .unwrap();
    let mut dev = Device::small_gpu();
    let out = dev.alloc(PrimTy::F32, 4);
    let s = run(
        &k,
        &[Value::Ptr(out), Value::I32(100)],
        &mut dev,
        Launch::grid1d(1, 1),
    );
    assert!(s.loop_cycles > 0);
    assert!(s.loop_cycles <= s.work_cycles);
    assert!(s.loop_fraction() > 0.5 && s.loop_fraction() < 1.0);
}

#[test]
fn continue_in_for_still_executes_step() {
    let k = parse_kernel(
        r#"kernel c(out: *global i32, n: i32) {
            let count: i32 = 0;
            for (i = 0; i < n; i = i + 1) {
                if (i % 2 == 0) {
                    continue;
                }
                count = count + 1;
            }
            store(out, 0, count);
        }"#,
    )
    .unwrap();
    let mut dev = Device::small_gpu();
    let out = dev.alloc(PrimTy::I32, 4);
    let r = dev.launch(
        &k,
        &[Value::Ptr(out), Value::I32(10)],
        &Launch::grid1d(1, 1),
        &mut NullRuntime,
    );
    assert!(r.is_completed(), "{r:?}");
    assert_eq!(dev.mem.copy_out_i32(out, 1)[0], 5, "odd iterations counted");
}

#[test]
fn nested_break_only_exits_inner_loop() {
    let k = parse_kernel(
        r#"kernel nb(out: *global i32, n: i32) {
            let total: i32 = 0;
            for (i = 0; i < n; i = i + 1) {
                for (j = 0; j < 100; j = j + 1) {
                    if (j >= 3) {
                        break;
                    }
                    total = total + 1;
                }
            }
            store(out, 0, total);
        }"#,
    )
    .unwrap();
    let mut dev = Device::small_gpu();
    let out = dev.alloc(PrimTy::I32, 4);
    let r = dev.launch(
        &k,
        &[Value::Ptr(out), Value::I32(4)],
        &Launch::grid1d(1, 1),
        &mut NullRuntime,
    );
    assert!(r.is_completed());
    assert_eq!(dev.mem.copy_out_i32(out, 1)[0], 12, "4 outer x 3 inner");
}

#[test]
fn logical_ops_and_divergent_lane_loops() {
    // Per-lane trip counts: each lane loops `lane` times; reconvergence must
    // be exact and the cost must reflect the longest lane.
    let k = parse_kernel(
        r#"kernel ll(out: *global i32) {
            let i: i32 = thread_idx_x();
            let c: i32 = 0;
            for (j = 0; j < i; j = j + 1) {
                c = c + 2;
            }
            let ok: bool = c == i * 2 && true;
            store(out, i, cast<i32>(ok));
        }"#,
    )
    .unwrap();
    let mut dev = Device::small_gpu();
    let out = dev.alloc(PrimTy::I32, 32);
    let r = dev.launch(
        &k,
        &[Value::Ptr(out)],
        &Launch::grid1d(1, 32),
        &mut NullRuntime,
    );
    assert!(r.is_completed());
    assert_eq!(dev.mem.copy_out_i32(out, 32), vec![1; 32]);
}

#[test]
fn kernel_time_reflects_sm_parallelism() {
    // 8 identical blocks on a 4-SM device: kernel time ~ 2 blocks' work.
    let k = parse_kernel(
        r#"kernel p(out: *global f32, n: i32) {
            let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
            let a: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                a = a + 1.5;
            }
            store(out, tid, a);
        }"#,
    )
    .unwrap();
    let mut dev = Device::small_gpu(); // 4 SMs
    let out = dev.alloc(PrimTy::F32, 8 * 32);
    let s = run(
        &k,
        &[Value::Ptr(out), Value::I32(50)],
        &mut dev,
        Launch::grid1d(8, 32),
    );
    let per_block = s.work_cycles / 8;
    assert!(
        s.kernel_cycles >= per_block * 2 && s.kernel_cycles < per_block * 3,
        "8 blocks over 4 SMs run as ~2 rounds: kernel {} vs per-block {}",
        s.kernel_cycles,
        per_block
    );
}
