//! Snapshot round-trip properties: capture → restore → re-capture must be
//! bit-identical on every engine tier, fault-free resumes must reconverge at
//! every fence, and snapshots must refuse to restore across engines or out
//! of range — the invariants `crate::snapshot` documents, checked over
//! property-generated kernels and launch geometries.

use hauberk_kir::builder::KernelBuilder;
use hauberk_kir::{BinOp, Expr, KernelDef, PrimTy, Ty, Value};
use hauberk_sim::{Device, DeviceConfig, ExecEngine, Launch, NullRuntime, SnapshotError, Spliced};
use proptest::prelude::*;

const ENGINES: [ExecEngine; 3] = [
    ExecEngine::TreeWalk,
    ExecEngine::Bytecode,
    ExecEngine::Batch,
];

/// Recipe for one generated kernel: loop trip count, accumulator coefficient
/// selector, and whether a divergent guard runs inside the loop.
#[derive(Debug, Clone)]
struct GenKernel {
    trip: u8,
    coeff: u8,
    guarded: bool,
}

fn gen_kernel() -> impl Strategy<Value = GenKernel> {
    (1u8..12, 0u8..4, any::<bool>()).prop_map(|(trip, coeff, guarded)| GenKernel {
        trip,
        coeff,
        guarded,
    })
}

/// Materialize the recipe: `out[tid] = sum over the loop of scaled input
/// reads`, with an optional thread-divergent guard so warp reconvergence is
/// exercised too.
fn materialize(g: &GenKernel) -> KernelDef {
    let mut b = KernelBuilder::new("snapshot_prop");
    let out = b.param("out", Ty::global_ptr(PrimTy::F32));
    let inp = b.param("inp", Ty::global_ptr(PrimTy::F32));
    let n = b.param("n", Ty::I32);
    let tid = b.local("tid", Ty::I32);
    b.assign(tid, b.global_thread_id_x());
    let acc = b.let_("acc", Ty::F32, Expr::f32(0.25 * (g.coeff + 1) as f32));
    let it = b.local("it", Ty::I32);
    let guarded = g.guarded;
    b.for_range(it, Expr::var(n), |b| {
        b.assign(
            acc,
            Expr::add(
                Expr::var(acc),
                Expr::mul(
                    Expr::load(
                        Expr::var(inp),
                        Expr::bin(
                            BinOp::Rem,
                            Expr::add(Expr::var(tid), Expr::var(it)),
                            Expr::i32(64),
                        ),
                    ),
                    Expr::f32(0.125),
                ),
            ),
        );
        if guarded {
            b.if_(
                Expr::lt(
                    Expr::bin(BinOp::Rem, Expr::var(tid), Expr::i32(3)),
                    Expr::i32(1),
                ),
                |b| {
                    b.assign(acc, Expr::mul(Expr::var(acc), Expr::f32(1.0625)));
                },
            );
        }
    });
    b.store(Expr::var(out), Expr::var(tid), Expr::var(acc));
    b.finish()
}

struct Setup {
    dev: Device,
    args: Vec<Value>,
    out: hauberk_kir::PtrVal,
    elems: u32,
}

/// Fresh device + buffers for one run of the generated kernel.
fn setup(engine: ExecEngine, g: &GenKernel, launch: &Launch) -> Setup {
    let mut config = DeviceConfig::small_gpu();
    config.engine = engine;
    let mut dev = Device::new(config);
    let elems = launch.total_blocks() * launch.threads_per_block();
    let out = dev.alloc(PrimTy::F32, elems);
    let inp = dev.alloc(PrimTy::F32, 64);
    let data: Vec<f32> = (0..64).map(|i| (i as f32 * 0.31).cos() * 2.0).collect();
    dev.mem.copy_in_f32(inp, &data);
    let args = vec![Value::Ptr(out), Value::Ptr(inp), Value::I32(g.trip as i32)];
    Setup {
        dev,
        args,
        out,
        elems,
    }
}

fn out_bits(s: &Setup) -> Vec<u32> {
    s.dev
        .mem
        .copy_out_f32(s.out, s.elems)
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Capture is deterministic (two capture passes produce bit-identical
    /// snapshots and fences) and every snapshot restores bit-exactly: the
    /// resumed run's outcome and output memory equal the plain launch's, on
    /// all three engines.
    #[test]
    fn capture_restore_capture_is_bit_identical(
        g in gen_kernel(),
        blocks in 2u32..5,
        tpb_sel in 0usize..3,
    ) {
        let tpb = [8u32, 16, 32][tpb_sel];
        let launch = Launch::grid1d(blocks, tpb).with_budget(400_000);
        let boundaries: Vec<u32> = (0..=blocks).collect();
        let fences: Vec<u32> = (1..blocks).collect();
        let kernel = materialize(&g);
        for engine in ENGINES {
            // Plain launch: the reference observable.
            let mut plain = setup(engine, &g, &launch);
            let ref_outcome = plain
                .dev
                .launch(&kernel, &plain.args, &launch, &mut NullRuntime);
            let ref_bits = out_bits(&plain);

            // Two independent capture passes must agree bit-for-bit.
            let mut c1 = setup(engine, &g, &launch);
            let cap = c1.dev.capture_launch(
                &kernel, &c1.args, &launch, &mut NullRuntime, &boundaries, &fences,
            );
            let mut c2 = setup(engine, &g, &launch);
            let cap2 = c2.dev.capture_launch(
                &kernel, &c2.args, &launch, &mut NullRuntime, &boundaries, &fences,
            );
            prop_assert_eq!(&cap.outcome, &ref_outcome);
            prop_assert_eq!(&cap.snapshots, &cap2.snapshots);
            prop_assert_eq!(&cap.fences, &cap2.fences);
            prop_assert_eq!(cap.snapshots.len(), boundaries.len());
            prop_assert_eq!(out_bits(&c1), ref_bits.clone());

            // Every boundary restores bit-exactly.
            for (b, snap) in &cap.snapshots {
                let mut resumed = setup(engine, &g, &launch);
                let outcome = resumed
                    .dev
                    .resume_launch(&kernel, &resumed.args, &launch, &mut NullRuntime, snap)
                    .expect("same-engine in-range restore");
                prop_assert_eq!(&outcome, &ref_outcome, "boundary {}", b);
                prop_assert_eq!(out_bits(&resumed), ref_bits.clone(), "boundary {}", b);
            }
        }
    }

    /// A fault-free resume reconverges at every fence: restoring boundary
    /// `b` and running to fence `b + 1` reproduces the reference fingerprint
    /// exactly, so the run splices instead of executing the tail.
    #[test]
    fn fault_free_resume_reconverges_at_every_fence(
        g in gen_kernel(),
        blocks in 2u32..5,
    ) {
        let launch = Launch::grid1d(blocks, 16).with_budget(400_000);
        let boundaries: Vec<u32> = (0..blocks).collect();
        let fences: Vec<u32> = (1..blocks).collect();
        let kernel = materialize(&g);
        for engine in ENGINES {
            let mut c = setup(engine, &g, &launch);
            let cap = c.dev.capture_launch(
                &kernel, &c.args, &launch, &mut NullRuntime, &boundaries, &fences,
            );
            prop_assert_eq!(cap.fences.len(), fences.len());
            for (fence, expected_fp) in &cap.fences {
                let snap = &cap
                    .snapshots
                    .iter()
                    .find(|(b, _)| *b + 1 == *fence)
                    .expect("boundary below fence")
                    .1;
                let mut resumed = setup(engine, &g, &launch);
                let run = resumed
                    .dev
                    .resume_spliced(
                        &kernel,
                        &resumed.args,
                        &launch,
                        &mut NullRuntime,
                        snap,
                        *fence,
                        *expected_fp,
                    )
                    .expect("same-engine in-range restore");
                prop_assert!(
                    matches!(run, Spliced::Reconverged { .. }),
                    "fault-free resume must reconverge at fence {}",
                    fence
                );
            }
        }
    }
}

/// Restoring a snapshot onto a different engine tier is a typed refusal
/// naming both engines, for every ordered engine pair.
#[test]
fn cross_engine_restore_is_rejected() {
    let g = GenKernel {
        trip: 4,
        coeff: 1,
        guarded: false,
    };
    let launch = Launch::grid1d(2, 16).with_budget(400_000);
    let kernel = materialize(&g);
    for src in ENGINES {
        let mut c = setup(src, &g, &launch);
        let cap = c
            .dev
            .capture_launch(&kernel, &c.args, &launch, &mut NullRuntime, &[1], &[]);
        let snap = &cap.snapshots[0].1;
        for dst in ENGINES {
            if src == dst {
                continue;
            }
            let mut other = setup(dst, &g, &launch);
            let err = other
                .dev
                .resume_launch(&kernel, &other.args, &launch, &mut NullRuntime, snap)
                .expect_err("cross-engine restore must be refused");
            assert_eq!(
                err,
                SnapshotError::EngineMismatch {
                    snapshot: src,
                    device: dst,
                }
            );
            let msg = err.to_string();
            assert!(
                msg.contains(src.name()) && msg.contains(dst.name()),
                "error names both engines: {msg}"
            );
        }
    }
}

/// A snapshot whose resume point lies beyond the launch grid is a typed
/// refusal, not a silent truncation.
#[test]
fn out_of_range_restore_is_rejected() {
    let g = GenKernel {
        trip: 4,
        coeff: 0,
        guarded: false,
    };
    let big = Launch::grid1d(4, 16).with_budget(400_000);
    let small = Launch::grid1d(2, 16).with_budget(400_000);
    let kernel = materialize(&g);
    let mut c = setup(ExecEngine::Bytecode, &g, &big);
    let cap = c
        .dev
        .capture_launch(&kernel, &c.args, &big, &mut NullRuntime, &[3], &[]);
    let snap = &cap.snapshots[0].1;
    let mut other = setup(ExecEngine::Bytecode, &g, &small);
    let err = other
        .dev
        .resume_launch(&kernel, &other.args, &small, &mut NullRuntime, snap)
        .expect_err("restore beyond the grid must be refused");
    assert_eq!(
        err,
        SnapshotError::BlockOutOfRange {
            next_block: 3,
            total_blocks: 2,
        }
    );
}
