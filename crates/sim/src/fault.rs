//! Fault arming and delivery: the architecture-state corruption machinery of
//! the SWIFI toolset (§VII).
//!
//! A fault is *armed* against a static location ([`FaultSite`]), a specific
//! global thread, a dynamic occurrence count, and an XOR bit mask. Delivery
//! happens inside the interpreter's hook/loop-check callbacks via
//! [`FaultArm`], which the FI library runtimes embed. Occurrence counting is
//! **per (site, thread)**, making injections deterministic regardless of
//! block execution order.

use crate::hooks::{HookCtx, LoopCheckCtx};
use hauberk_kir::stmt::{LoopId, SiteId};
use hauberk_kir::MemSpace;
use std::collections::HashMap;

/// Static location a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Corrupt the target variable of fault-injection hook `site` right
    /// after its defining statement (ALU / FPU / register-file faults).
    HookTarget {
        /// Hook site id.
        site: SiteId,
    },
    /// Corrupt the iterator variable of loop `loop_id` at a condition
    /// evaluation (SM-scheduler fault on the iterator path).
    LoopIterator {
        /// Loop id.
        loop_id: LoopId,
    },
    /// Flip the thread's branch decision at a condition evaluation of loop
    /// `loop_id` (SM-scheduler fault on the decision path).
    LoopDecision {
        /// Loop id.
        loop_id: LoopId,
    },
    /// Corrupt variable `var` while it sits in a register, at the k-th
    /// execution of hook `site` by the target thread — the register-file
    /// fault class (c): the corruption lands *between* the variable's
    /// definition and a later use.
    RegisterLive {
        /// Trigger hook site (any site; typically not `var`'s own def).
        site: SiteId,
        /// The live variable to corrupt.
        var: u32,
    },
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSite::HookTarget { site } => write!(f, "hook_target({site})"),
            FaultSite::LoopIterator { loop_id } => write!(f, "loop_iterator({loop_id})"),
            FaultSite::LoopDecision { loop_id } => write!(f, "loop_decision({loop_id})"),
            FaultSite::RegisterLive { site, var } => {
                write!(f, "register_live(site={site},var={var})")
            }
        }
    }
}

/// A fault armed for delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmedFault {
    /// Where.
    pub site: FaultSite,
    /// Which global linear thread.
    pub thread: u32,
    /// Which dynamic occurrence for that thread (1-based: 1 = first
    /// execution of the site by that thread).
    pub occurrence: u64,
    /// XOR mask applied to the 32-bit architecture state.
    pub mask: u32,
}

/// Tracks occurrence counts and delivers an armed fault at most once.
#[derive(Debug, Default)]
pub struct FaultArm {
    fault: Option<ArmedFault>,
    counts: HashMap<(FaultSite, u32), u64>,
    delivered: bool,
}

impl FaultArm {
    /// Arm `fault` (or none, for fault-free runs).
    pub fn new(fault: Option<ArmedFault>) -> Self {
        FaultArm {
            fault,
            counts: HashMap::new(),
            delivered: false,
        }
    }

    /// Whether the armed fault was activated during the run. A fault that is
    /// never activated (its site/thread/occurrence never executed) is *not
    /// manifested* by construction.
    pub fn delivered(&self) -> bool {
        self.delivered
    }

    /// The armed fault, if any.
    pub fn fault(&self) -> Option<&ArmedFault> {
        self.fault.as_ref()
    }

    /// Poll for a register-file corruption at hook `site` (the interpreter
    /// applies it to the named variable). Counts occurrences per thread.
    pub fn poll_register(
        &mut self,
        site: SiteId,
        first_thread: u32,
        active: u32,
        warp_width: u32,
    ) -> Option<crate::hooks::RegCorruption> {
        let f = self.fault?;
        let FaultSite::RegisterLive { site: want, var } = f.site else {
            return None;
        };
        if want != site {
            return None;
        }
        let mut hit = None;
        for lane in 0..warp_width {
            if active & (1 << lane) == 0 {
                continue;
            }
            let thread = first_thread + lane;
            let n = self.counts.entry((f.site, thread)).or_insert(0);
            *n += 1;
            if thread == f.thread && *n == f.occurrence && !self.delivered {
                self.delivered = true;
                hit = Some(crate::hooks::RegCorruption {
                    var,
                    lane,
                    mask: f.mask,
                });
            }
        }
        hit
    }

    /// Deliver at a fault-injection hook: corrupts the target variable of
    /// the matching lane if the armed (site, thread, occurrence) matches.
    pub fn at_hook(&mut self, site: SiteId, ctx: &mut HookCtx<'_>) {
        let Some(f) = self.fault else { return };
        let FaultSite::HookTarget { site: want } = f.site else {
            return;
        };
        if want != site {
            return;
        }
        let lanes: Vec<u32> = ctx.active_lanes().collect();
        for lane in lanes {
            let thread = ctx.thread_of(lane);
            let n = self.counts.entry((f.site, thread)).or_insert(0);
            *n += 1;
            if thread == f.thread && *n == f.occurrence && !self.delivered {
                if let Some(target) = ctx.target.as_deref_mut() {
                    target[lane as usize] = target[lane as usize].xor_bits(f.mask);
                    self.delivered = true;
                }
            }
        }
    }

    /// Deliver at a loop condition evaluation (scheduler faults).
    pub fn at_loop_check(&mut self, loop_id: LoopId, ctx: &mut LoopCheckCtx<'_>) {
        let Some(f) = self.fault else { return };
        match f.site {
            FaultSite::LoopIterator { loop_id: want } if want == loop_id => {
                let lanes: Vec<u32> = ctx.active_lanes().collect();
                for lane in lanes {
                    let thread = ctx.first_thread + lane;
                    let n = self.counts.entry((f.site, thread)).or_insert(0);
                    *n += 1;
                    if thread == f.thread && *n == f.occurrence && !self.delivered {
                        if let Some(iv) = ctx.iter_var.as_deref_mut() {
                            iv[lane as usize] = iv[lane as usize].xor_bits(f.mask);
                            self.delivered = true;
                        }
                    }
                }
            }
            FaultSite::LoopDecision { loop_id: want } if want == loop_id => {
                let lanes: Vec<u32> = ctx.active_lanes().collect();
                for lane in lanes {
                    let thread = ctx.first_thread + lane;
                    let n = self.counts.entry((f.site, thread)).or_insert(0);
                    *n += 1;
                    if thread == f.thread && *n == f.occurrence && !self.delivered {
                        *ctx.cond_mask ^= 1 << lane;
                        self.delivered = true;
                    }
                }
            }
            _ => {}
        }
    }
}

/// A burst of memory-word corruptions, applied directly to device memory
/// before (or between) kernel launches. This emulates the paper's graphics
/// experiments: a transient fault corrupting one value of the input stream,
/// or an intermittent fault corrupting 10,000 consecutive values (80 µs on a
/// 250 MHz FPU at IPC 1 with 50% FP instructions — Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBurst {
    /// Memory space to corrupt.
    pub space: MemSpace,
    /// First byte address.
    pub addr: u32,
    /// Number of consecutive 32-bit words to corrupt.
    pub words: u32,
    /// XOR mask applied to each word.
    pub mask: u32,
}

impl MemoryBurst {
    /// A single-value transient corruption.
    pub fn transient(addr: u32, mask: u32) -> Self {
        MemoryBurst {
            space: MemSpace::Global,
            addr,
            words: 1,
            mask,
        }
    }

    /// The paper's 10,000-value intermittent corruption.
    pub fn intermittent_10k(addr: u32, mask: u32) -> Self {
        MemoryBurst {
            space: MemSpace::Global,
            addr,
            words: 10_000,
            mask,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::Value;

    fn ctx_with_target<'a>(target: &'a mut Vec<Value>, args: &'a [Vec<Value>]) -> HookCtx<'a> {
        HookCtx {
            block_id: 0,
            warp_id: 0,
            active: 0b11,
            warp_width: 2,
            first_thread: 0,
            cycles: 0,
            args,
            target: Some(target),
        }
    }

    #[test]
    fn delivers_exactly_once_at_right_occurrence() {
        let mut arm = FaultArm::new(Some(ArmedFault {
            site: FaultSite::HookTarget { site: 7 },
            thread: 1,
            occurrence: 2,
            mask: 0x1,
        }));
        let args: Vec<Vec<Value>> = vec![];
        let mut target = vec![Value::I32(0), Value::I32(0)];

        // First execution: occurrence 1, no delivery.
        arm.at_hook(7, &mut ctx_with_target(&mut target, &args));
        assert!(!arm.delivered());
        assert_eq!(target[1], Value::I32(0));

        // Second execution: occurrence 2 on thread 1 -> flip bit 0.
        arm.at_hook(7, &mut ctx_with_target(&mut target, &args));
        assert!(arm.delivered());
        assert_eq!(target[1], Value::I32(1));
        assert_eq!(target[0], Value::I32(0), "other lanes untouched");

        // Further executions do nothing.
        arm.at_hook(7, &mut ctx_with_target(&mut target, &args));
        assert_eq!(target[1], Value::I32(1));
    }

    #[test]
    fn wrong_site_never_delivers() {
        let mut arm = FaultArm::new(Some(ArmedFault {
            site: FaultSite::HookTarget { site: 3 },
            thread: 0,
            occurrence: 1,
            mask: 0xFF,
        }));
        let args: Vec<Vec<Value>> = vec![];
        let mut target = vec![Value::I32(0)];
        let mut ctx = HookCtx {
            block_id: 0,
            warp_id: 0,
            active: 1,
            warp_width: 1,
            first_thread: 0,
            cycles: 0,
            args: &args,
            target: Some(&mut target),
        };
        arm.at_hook(4, &mut ctx);
        assert!(!arm.delivered());
    }

    #[test]
    fn loop_decision_flips_cond_mask() {
        let mut arm = FaultArm::new(Some(ArmedFault {
            site: FaultSite::LoopDecision { loop_id: 0 },
            thread: 0,
            occurrence: 1,
            mask: 0,
        }));
        let mut cond = 0b0u32;
        let mut ctx = LoopCheckCtx {
            block_id: 0,
            warp_id: 0,
            active: 1,
            warp_width: 1,
            first_thread: 0,
            cycles: 0,
            iteration: 0,
            iter_var: None,
            cond_mask: &mut cond,
        };
        arm.at_loop_check(0, &mut ctx);
        assert!(arm.delivered());
        assert_eq!(cond, 0b1, "thread forced to take another iteration");
    }

    #[test]
    fn none_fault_is_inert() {
        let mut arm = FaultArm::new(None);
        let args: Vec<Vec<Value>> = vec![];
        let mut target = vec![Value::I32(5)];
        arm.at_hook(0, &mut ctx_with_target(&mut target, &args));
        assert!(!arm.delivered());
        assert_eq!(target[0], Value::I32(5));
    }
}
