//! The hook-runtime interface: how instrumentation statements reach the
//! Hauberk libraries.
//!
//! The translator inserts [`hauberk_kir::Hook`] statements; when the
//! interpreter executes one it dispatches to the [`HookRuntime`] supplied at
//! launch. The four Hauberk library variants (profiler, FT, FI, FI&FT)
//! implement this trait in the `hauberk` crate; [`NullRuntime`] ignores
//! everything (baseline runs).
//!
//! The interpreter also calls [`HookRuntime::on_loop_check`] at every loop
//! condition evaluation, giving fault injectors a place to emulate
//! **SM-scheduler faults** (corrupting a loop iterator or a branch decision)
//! without rewriting the AST.

use hauberk_kir::stmt::LoopId;
use hauberk_kir::{Hook, Value};

/// Warp-level context handed to a hook.
pub struct HookCtx<'a> {
    /// Linearized block id.
    pub block_id: u32,
    /// Warp index within the block.
    pub warp_id: u32,
    /// Active lane mask.
    pub active: u32,
    /// Lanes per warp.
    pub warp_width: u32,
    /// Global linear thread id of lane 0 of this warp.
    pub first_thread: u32,
    /// Accumulated work cycles of the launch at dispatch time — the
    /// simulated-clock timestamp used for detection-latency telemetry.
    pub cycles: u64,
    /// Evaluated hook arguments: `args[i][lane]`.
    pub args: &'a [Vec<Value>],
    /// Per-lane values of the hook's target variable, mutable so a fault
    /// injector can corrupt the just-defined state (Fig. 12).
    pub target: Option<&'a mut Vec<Value>>,
}

impl HookCtx<'_> {
    /// Iterate over active lanes.
    pub fn active_lanes(&self) -> impl Iterator<Item = u32> + '_ {
        let mask = self.active;
        (0..self.warp_width).filter(move |l| mask & (1 << l) != 0)
    }

    /// Global linear thread id of `lane`.
    pub fn thread_of(&self, lane: u32) -> u32 {
        self.first_thread + lane
    }
}

/// Warp-level context for a loop condition evaluation.
pub struct LoopCheckCtx<'a> {
    /// Linearized block id.
    pub block_id: u32,
    /// Warp index within the block.
    pub warp_id: u32,
    /// Lanes still iterating this loop.
    pub active: u32,
    /// Lanes per warp.
    pub warp_width: u32,
    /// Global linear thread id of lane 0.
    pub first_thread: u32,
    /// Accumulated work cycles of the launch at dispatch time.
    pub cycles: u64,
    /// How many times this warp has evaluated this loop's condition in the
    /// current loop instance (0 on entry).
    pub iteration: u64,
    /// Per-lane iterator values (for `for` loops), mutable so a scheduler
    /// fault can corrupt the iterator.
    pub iter_var: Option<&'a mut Vec<Value>>,
    /// The lane mask the condition evaluated to; a scheduler fault may flip
    /// bits to corrupt the control-flow decision.
    pub cond_mask: &'a mut u32,
}

impl LoopCheckCtx<'_> {
    /// Iterate over active lanes.
    pub fn active_lanes(&self) -> impl Iterator<Item = u32> + '_ {
        let mask = self.active;
        (0..self.warp_width).filter(move |l| mask & (1 << l) != 0)
    }
}

/// A register-file corruption request: flip bits of *any* live variable at
/// the current hook point — the paper's fault class (c), a value corrupted
/// **between** its definition and a later use while it sits in a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegCorruption {
    /// Variable to corrupt.
    pub var: hauberk_kir::VarId,
    /// Lane whose copy is corrupted.
    pub lane: u32,
    /// XOR mask.
    pub mask: u32,
}

/// Receiver for instrumentation events during a launch.
pub trait HookRuntime {
    /// Called when a [`Hook`] statement executes.
    fn on_hook(&mut self, hook: &Hook, ctx: &mut HookCtx<'_>);

    /// Called at every loop condition evaluation (before the mask is
    /// applied). Default: no-op.
    fn on_loop_check(&mut self, _loop_id: LoopId, _ctx: &mut LoopCheckCtx<'_>) {}

    /// Polled right after [`HookRuntime::on_hook`]: a register-file fault
    /// may corrupt a variable *other than* the hook's target (the value sits
    /// in a register between uses). Default: none.
    fn register_corruption(
        &mut self,
        _hook: &Hook,
        _first_thread: u32,
        _active: u32,
    ) -> Option<RegCorruption> {
        None
    }

    /// Whether this runtime ignores every callback: it neither observes nor
    /// mutates hook arguments, targets, loop iterators, or decision masks,
    /// and never reports a corruption. Engines may then skip materializing
    /// typed lane-state views at dispatch points (charges, stats, and
    /// telemetry are unaffected). Only override to return `true` for a
    /// runtime whose callbacks are all no-ops.
    fn is_passive(&self) -> bool {
        false
    }

    /// A stable fingerprint of the runtime state that can still influence
    /// the *remainder* of the launch — the part a reconvergence check must
    /// compare before splicing a reference suffix onto a resumed run
    /// ([`crate::device::Device::resume_spliced`]).
    ///
    /// Two runs whose device state and `state_fingerprint` agree at a block
    /// boundary must behave identically from that boundary on. State that
    /// only feeds *post-run* readouts (a delivered-fault flag read by the
    /// classifier, say) must be excluded, or equivalent runs would never
    /// fingerprint equal. The default `None` opts out: a runtime that cannot
    /// make this guarantee never reconverges and splice attempts fall back
    /// to full re-execution.
    fn state_fingerprint(&self) -> Option<u64> {
        None
    }
}

/// A runtime that ignores all events (baseline executions).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRuntime;

impl HookRuntime for NullRuntime {
    fn on_hook(&mut self, _hook: &Hook, _ctx: &mut HookCtx<'_>) {}

    fn is_passive(&self) -> bool {
        true
    }

    /// Stateless, so any two null runtimes are interchangeable.
    fn state_fingerprint(&self) -> Option<u64> {
        Some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_lane_iteration() {
        let args: Vec<Vec<Value>> = vec![];
        let ctx = HookCtx {
            block_id: 0,
            warp_id: 0,
            active: 0b1010,
            warp_width: 8,
            first_thread: 16,
            cycles: 0,
            args: &args,
            target: None,
        };
        let lanes: Vec<u32> = ctx.active_lanes().collect();
        assert_eq!(lanes, vec![1, 3]);
        assert_eq!(ctx.thread_of(3), 19);
    }
}
