//! Execution statistics: cycle accounting, op-class counters, and the
//! loop/non-loop attribution behind the paper's Fig. 4.

use std::fmt;
use std::ops::AddAssign;

/// Operation classes for the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Integer ALU.
    IAlu,
    /// FP add/mul/compare pipe.
    FAlu,
    /// Special-function unit (sqrt/rsqrt/sin/cos/exp/log, FP div).
    Sfu,
    /// Memory (load/store/atomic).
    Mem,
    /// Control (branch decisions, loop back-edges, sync).
    Ctl,
}

impl OpClass {
    /// All classes in display order.
    pub const ALL: [OpClass; 5] = [
        OpClass::IAlu,
        OpClass::FAlu,
        OpClass::Sfu,
        OpClass::Mem,
        OpClass::Ctl,
    ];

    /// Index into count arrays.
    pub const fn idx(self) -> usize {
        match self {
            OpClass::IAlu => 0,
            OpClass::FAlu => 1,
            OpClass::Sfu => 2,
            OpClass::Mem => 3,
            OpClass::Ctl => 4,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpClass::IAlu => "ialu",
            OpClass::FAlu => "falu",
            OpClass::Sfu => "sfu",
            OpClass::Mem => "mem",
            OpClass::Ctl => "ctl",
        })
    }
}

/// Statistics of one kernel launch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Simulated kernel time: the busiest SM's total cycles.
    pub kernel_cycles: u64,
    /// Total work cycles summed over all warps (what loop attribution is a
    /// fraction of).
    pub work_cycles: u64,
    /// Work cycles charged while executing inside any loop body or loop
    /// header back-edge.
    pub loop_cycles: u64,
    /// Instructions issued, per op class.
    pub class_counts: [u64; 5],
    /// Instructions that dual-issued for free (pairing hits).
    pub paired_ops: u64,
    /// Total memory segments touched (coalescing traffic).
    pub mem_segments: u64,
    /// Number of blocks executed.
    pub blocks: u64,
    /// Number of warps executed.
    pub warps: u64,
    /// `__syncthreads()` executed.
    pub syncs: u64,
    /// Hook statements dispatched.
    pub hooks: u64,
}

impl ExecStats {
    /// Fraction of work cycles spent inside loops (Fig. 4's metric).
    pub fn loop_fraction(&self) -> f64 {
        if self.work_cycles == 0 {
            0.0
        } else {
            self.loop_cycles as f64 / self.work_cycles as f64
        }
    }

    /// Total instructions issued.
    pub fn total_ops(&self) -> u64 {
        self.class_counts.iter().sum()
    }

    /// Detector overhead in kernel cycles against a baseline run of the
    /// uninstrumented kernel. Saturating: engine-equivalent builds can in
    /// principle tie, and a tie must read as zero overhead, not wrap.
    pub fn overhead_vs(&self, baseline_kernel_cycles: u64) -> u64 {
        self.kernel_cycles.saturating_sub(baseline_kernel_cycles)
    }

    /// [`Self::overhead_vs`] as a fraction of the baseline (0.0 when the
    /// baseline is degenerate).
    pub fn overhead_frac_vs(&self, baseline_kernel_cycles: u64) -> f64 {
        if baseline_kernel_cycles == 0 {
            0.0
        } else {
            self.overhead_vs(baseline_kernel_cycles) as f64 / baseline_kernel_cycles as f64
        }
    }
}

impl From<&ExecStats> for hauberk_telemetry::ExecSnapshot {
    fn from(s: &ExecStats) -> Self {
        hauberk_telemetry::ExecSnapshot {
            kernel_cycles: s.kernel_cycles,
            work_cycles: s.work_cycles,
            loop_cycles: s.loop_cycles,
            ops: s.total_ops(),
            paired_ops: s.paired_ops,
            mem_segments: s.mem_segments,
            blocks: s.blocks,
            warps: s.warps,
            syncs: s.syncs,
            hooks: s.hooks,
        }
    }
}

impl AddAssign<&ExecStats> for ExecStats {
    fn add_assign(&mut self, rhs: &ExecStats) {
        self.kernel_cycles += rhs.kernel_cycles;
        self.work_cycles += rhs.work_cycles;
        self.loop_cycles += rhs.loop_cycles;
        for i in 0..5 {
            self.class_counts[i] += rhs.class_counts[i];
        }
        self.paired_ops += rhs.paired_ops;
        self.mem_segments += rhs.mem_segments;
        self.blocks += rhs.blocks;
        self.warps += rhs.warps;
        self.syncs += rhs.syncs;
        self.hooks += rhs.hooks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_fraction_handles_zero() {
        let s = ExecStats::default();
        assert_eq!(s.loop_fraction(), 0.0);
        let s = ExecStats {
            work_cycles: 100,
            loop_cycles: 87,
            ..Default::default()
        };
        assert!((s.loop_fraction() - 0.87).abs() < 1e-12);
    }

    #[test]
    fn overhead_accounting_saturates() {
        let s = ExecStats {
            kernel_cycles: 1500,
            ..Default::default()
        };
        assert_eq!(s.overhead_vs(1000), 500);
        assert_eq!(s.overhead_vs(2000), 0, "faster than baseline reads as 0");
        assert!((s.overhead_frac_vs(1000) - 0.5).abs() < 1e-12);
        assert_eq!(s.overhead_frac_vs(0), 0.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = ExecStats {
            work_cycles: 10,
            class_counts: [1, 2, 3, 4, 5],
            ..Default::default()
        };
        let b = a.clone();
        a += &b;
        assert_eq!(a.work_cycles, 20);
        assert_eq!(a.class_counts, [2, 4, 6, 8, 10]);
        assert_eq!(a.total_ops(), 30);
    }

    #[test]
    fn class_indices_are_dense() {
        let mut seen = [false; 5];
        for c in OpClass::ALL {
            seen[c.idx()] = true;
        }
        assert!(seen.iter().all(|x| *x));
    }
}
