//! Device and cost-model configuration.

use crate::stats::OpClass;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which execution engine a device uses to run kernels.
///
/// All engines implement identical semantics (same `ExecStats`, same trap
/// ordering, same hook/fault behavior — enforced by the differential property
/// suite); they differ only in speed and in representation:
///
/// * [`TreeWalk`](ExecEngine::TreeWalk) interprets the KIR statement tree
///   directly. Slow, obviously correct; the reference oracle.
/// * [`Bytecode`](ExecEngine::Bytecode) runs flat register bytecode compiled
///   once per kernel (see `hauberk-kir::lower` and the `bytecode`/`vm`
///   modules). The default for campaigns.
/// * [`Batch`](ExecEngine::Batch) runs the same bytecode with a batch plan:
///   full-mask straight-line regions execute as lane-blocked micro-ops with
///   precomputed cycle-charge tables (see `hauberk-kir::batch` and the
///   `vm_batch` module), falling back to the per-op VM at any
///   divergence/barrier/atomic boundary. The fastest tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecEngine {
    /// The tree-walking reference interpreter.
    TreeWalk,
    /// The compiled register-bytecode VM.
    Bytecode,
    /// The batched lane-vector VM (bytecode plus full-mask region batching).
    Batch,
}

impl ExecEngine {
    /// Every engine, oracle first (the order the differential suites use).
    pub const ALL: [ExecEngine; 3] = [
        ExecEngine::TreeWalk,
        ExecEngine::Bytecode,
        ExecEngine::Batch,
    ];

    /// Stable CLI/telemetry name.
    pub fn name(self) -> &'static str {
        match self {
            ExecEngine::TreeWalk => "tree-walk",
            ExecEngine::Bytecode => "bytecode",
            ExecEngine::Batch => "batch",
        }
    }

    /// Parse a CLI spelling (`tree-walk`/`treewalk`/`tree`/`interp`,
    /// `bytecode`/`vm`, or `batch`/`vector`/`simd`).
    pub fn parse(s: &str) -> Option<ExecEngine> {
        match s.to_ascii_lowercase().as_str() {
            "tree-walk" | "treewalk" | "tree" | "interp" | "interpreter" => {
                Some(ExecEngine::TreeWalk)
            }
            "bytecode" | "vm" | "compiled" => Some(ExecEngine::Bytecode),
            "batch" | "vector" | "simd" | "lane-vector" => Some(ExecEngine::Batch),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Process-wide default engine for newly constructed [`DeviceConfig`]s
/// (0 = tree-walk, 1 = bytecode, 2 = batch).
static DEFAULT_ENGINE: AtomicU8 = AtomicU8::new(1);

/// Set the process-wide default engine used by [`DeviceConfig::gpu`] /
/// [`DeviceConfig::cpu`] (and everything built on them). Campaign binaries
/// call this from their `--engine` flag; tests use it to force all engines
/// through identical code paths.
pub fn set_default_engine(e: ExecEngine) {
    DEFAULT_ENGINE.store(
        match e {
            ExecEngine::TreeWalk => 0,
            ExecEngine::Bytecode => 1,
            ExecEngine::Batch => 2,
        },
        Ordering::Relaxed,
    );
}

/// The current process-wide default engine.
pub fn default_engine() -> ExecEngine {
    match DEFAULT_ENGINE.load(Ordering::Relaxed) {
        0 => ExecEngine::TreeWalk,
        2 => ExecEngine::Batch,
        _ => ExecEngine::Bytecode,
    }
}

/// Per-operation-class issue costs and pairing rules.
///
/// Costs are *warp issue cycles* (SIMT: one instruction issues for the whole
/// warp). The absolute values are loosely modeled on the GT200 generation the
/// paper evaluates (fast integer add, 4-cycle FP pipe, ~4× slower
/// special-function unit, expensive memory); what the reproduction depends on
/// is their **relationships**:
///
/// * integer ops are cheaper than FP ops (why PNS has the smallest
///   Hauberk-L overhead, §IX.A),
/// * SFU ops (sqrt/sin/cos/div) dominate FP-heavy loop bodies,
/// * a memory access costs its base plus an extra charge per additional
///   128-byte segment touched by the warp (coalescing),
/// * two *consecutive, independent* operations of *different* classes can
///   dual-issue (the second is free). Duplicated computation competes for
///   the same unit class and does not pair — the reason optimized full
///   duplication (R-Scatter) stays expensive on saturated GPU kernels while
///   Hauberk's cross-class XOR/counter instructions are nearly free.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Integer ALU op cost.
    pub ialu: u64,
    /// FP unit op cost.
    pub falu: u64,
    /// Special-function unit cost (sqrt, rsqrt, sin, cos, exp, log, FP div).
    pub sfu: u64,
    /// Control overhead per branch/loop-iteration decision.
    pub ctl: u64,
    /// `__syncthreads()` cost.
    pub sync: u64,
    /// Base cost of a warp memory access (fully coalesced).
    pub mem_base: u64,
    /// Extra cost per additional 128-byte segment touched by the warp.
    pub mem_segment_extra: u64,
    /// Segment size in bytes for coalescing (128 on GT200).
    pub segment_bytes: u32,
    /// Cost of the FT-library `HauberkCheckRange` call (per detector, after
    /// the loop; checks up to three value ranges on the FP path).
    pub hook_check_range: u64,
    /// Cost of the FT-library `HauberkCheckEqual` call.
    pub hook_check_equal: u64,
    /// Cost of the kernel-exit checksum validation.
    pub hook_checksum_check: u64,
    /// Cost of recording a non-loop mismatch into the control block
    /// (only paid when a mismatch occurs, i.e. under faults).
    pub hook_nl_mismatch: u64,
    /// Whether dual-issue pairing is enabled.
    pub dual_issue: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ialu: 2,
            falu: 4,
            sfu: 16,
            ctl: 2,
            sync: 4,
            mem_base: 16,
            mem_segment_extra: 8,
            segment_bytes: 128,
            hook_check_range: 24,
            hook_check_equal: 8,
            hook_checksum_check: 6,
            hook_nl_mismatch: 8,
            dual_issue: true,
        }
    }
}

impl CostModel {
    /// Issue cost of one op of `class`.
    pub fn class_cost(&self, class: OpClass) -> u64 {
        match class {
            OpClass::IAlu => self.ialu,
            OpClass::FAlu => self.falu,
            OpClass::Sfu => self.sfu,
            OpClass::Ctl => self.ctl,
            OpClass::Mem => self.mem_base,
        }
    }
}

/// Configuration of a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors; blocks are assigned round-robin
    /// and simulated kernel time is the busiest SM's total.
    pub num_sms: u32,
    /// Warp width (lanes per warp). 32, like every CUDA device.
    pub warp_width: u32,
    /// Shared memory available per block, in bytes (16 KiB on GT200 — the
    /// limit that makes R-Scatter uncompilable for TPACF).
    pub shared_mem_per_block: u32,
    /// Global memory capacity in bytes (allocation beyond this fails).
    pub global_mem_bytes: u32,
    /// Strict (page-protected, CPU-style) memory checking: out-of-bounds
    /// accesses trap instead of wrapping, and integer division by zero traps.
    pub strict_memory: bool,
    /// Cost model.
    pub cost: CostModel,
    /// Execution engine (defaults to the process-wide [`default_engine`]).
    pub engine: ExecEngine,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::gpu()
    }
}

impl DeviceConfig {
    /// A GT200-like GPU: 30 SMs, 32-lane warps, 16 KiB shared memory per
    /// block, permissive memory semantics.
    pub fn gpu() -> Self {
        DeviceConfig {
            num_sms: 30,
            warp_width: 32,
            shared_mem_per_block: 16 * 1024,
            global_mem_bytes: 64 * 1024 * 1024,
            strict_memory: false,
            cost: CostModel::default(),
            engine: default_engine(),
        }
    }

    /// A small GPU for fast unit tests (4 SMs, 4 MiB of memory).
    pub fn small_gpu() -> Self {
        DeviceConfig {
            num_sms: 4,
            global_mem_bytes: 4 * 1024 * 1024,
            ..DeviceConfig::gpu()
        }
    }

    /// A CPU-mode device: one single-lane "SM" with strict page-granularity
    /// memory protection (the paper's explanation for the low SDC / high
    /// crash ratio of CPU programs, §II.A).
    pub fn cpu() -> Self {
        DeviceConfig {
            num_sms: 1,
            warp_width: 1,
            shared_mem_per_block: 64 * 1024,
            global_mem_bytes: 64 * 1024 * 1024,
            strict_memory: true,
            cost: CostModel {
                // CPU-mode times are not used for any figure; keep defaults.
                ..CostModel::default()
            },
            engine: default_engine(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_gpu_like() {
        let c = DeviceConfig::default();
        assert_eq!(c.warp_width, 32);
        assert!(!c.strict_memory);
        assert!(c.cost.ialu < c.cost.falu);
        assert!(c.cost.falu < c.cost.sfu);
    }

    #[test]
    fn cpu_mode_is_strict_single_lane() {
        let c = DeviceConfig::cpu();
        assert!(c.strict_memory);
        assert_eq!(c.warp_width, 1);
        assert_eq!(c.num_sms, 1);
    }

    #[test]
    fn class_costs_consistent() {
        let m = CostModel::default();
        assert_eq!(m.class_cost(OpClass::IAlu), m.ialu);
        assert_eq!(m.class_cost(OpClass::Sfu), m.sfu);
        assert_eq!(m.class_cost(OpClass::Mem), m.mem_base);
    }
}
