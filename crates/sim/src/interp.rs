//! The warp-lockstep interpreter.
//!
//! One [`WarpExec`] runs one warp of one block to completion, maintaining a
//! per-variable lane vector, an active mask through structured control flow,
//! the pipeline pairing state for the dual-issue cost model, and the
//! loop-cycle attribution. Traps (out-of-bounds in strict mode, misaligned
//! accesses, illegal instructions) and budget exhaustion abort the launch.

use crate::config::{CostModel, DeviceConfig};
use crate::hooks::{HookCtx, HookRuntime, LoopCheckCtx};
use crate::memory::MemRegion;
use crate::outcome::TrapReason;
use crate::stats::{ExecStats, OpClass};
use hauberk_kir::expr::{BinOp, BuiltinVar, Expr, MathFn, UnOp};
use hauberk_kir::stmt::{Block, Hook, HookKind, Stmt};
use hauberk_kir::{KernelDef, MemSpace, PrimTy, PtrVal, Value};
use hauberk_telemetry::{Event, Telemetry};

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecErr {
    /// The kernel trapped.
    Trap(TrapReason),
    /// The cycle budget was exhausted (hang).
    Hang,
}

impl From<TrapReason> for ExecErr {
    fn from(t: TrapReason) -> Self {
        ExecErr::Trap(t)
    }
}

/// Break/continue lane masks flowing out of a block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Flow {
    brk: u32,
    cont: u32,
}

/// Geometry of the executing warp.
#[derive(Debug, Clone, Copy)]
pub struct WarpGeom {
    /// Grid dimensions in blocks.
    pub grid: (u32, u32),
    /// Block dimensions in threads.
    pub block_dim: (u32, u32),
    /// This block's coordinates.
    pub block_idx: (u32, u32),
    /// Warp index within the block (warps cover linearized thread ids in
    /// order).
    pub warp_id: u32,
}

impl WarpGeom {
    /// Linearized block id.
    pub fn block_lin(&self) -> u32 {
        self.block_idx.1 * self.grid.0 + self.block_idx.0
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block_dim.0 * self.block_dim.1
    }

    /// Global linear thread id of lane 0 of this warp.
    pub fn first_thread(&self, warp_width: u32) -> u32 {
        self.block_lin() * self.threads_per_block() + self.warp_id * warp_width
    }
}

/// Tag of the op that produced a value (for dependence-aware pairing).
pub(crate) type Tag = u64;

/// Dual-issue pipeline pairing state, shared by both execution engines.
pub(crate) struct Pipe {
    /// Tag of the most recently charged op.
    pub(crate) last_tag: Tag,
    /// Class of the most recently charged op.
    pub(crate) last_class: Option<OpClass>,
    /// Whether the most recent op itself co-issued (pairing is at most
    /// two-wide).
    pub(crate) last_paired: bool,
    pub(crate) next_tag: Tag,
}

impl Pipe {
    pub(crate) fn new() -> Self {
        Pipe {
            last_tag: 0,
            last_class: None,
            last_paired: false,
            next_tag: 1,
        }
    }
}

// -- shared cost accounting -------------------------------------------------
//
// The tree walker and the bytecode VM must charge cycles *identically* (the
// differential suite compares `ExecStats` bit-for-bit), so the accounting
// lives in free functions both engines call.

/// Charge one op of `class`; `dep_tags` are the producer tags of its
/// operands (pairing requires independence from the previous op). Returns
/// the new op's tag.
pub(crate) fn charge_op(
    pipe: &mut Pipe,
    stats: &mut ExecStats,
    budget: &mut u64,
    loop_depth: u32,
    cost: &CostModel,
    class: OpClass,
    dep_tags: [Tag; 2],
) -> Result<Tag, ExecErr> {
    let tag = pipe.next_tag;
    pipe.next_tag += 1;
    stats.class_counts[class.idx()] += 1;

    let dependent = pipe.last_tag != 0 && dep_tags.contains(&pipe.last_tag);
    // Memory ops and control ops occupy the issue path exclusively (branch
    // resolution blocks co-issue on the modeled architecture).
    let pairable = cost.dual_issue
        && !dependent
        && !pipe.last_paired
        && pipe.last_class.is_some()
        && pipe.last_class != Some(class)
        && !matches!(class, OpClass::Mem | OpClass::Ctl)
        && !matches!(pipe.last_class, Some(OpClass::Mem) | Some(OpClass::Ctl));

    let c = if pairable {
        stats.paired_ops += 1;
        0
    } else {
        cost.class_cost(class)
    };
    pipe.last_paired = pairable;
    pipe.last_class = Some(class);
    pipe.last_tag = tag;
    charge_cycles(stats, budget, loop_depth, c)?;
    Ok(tag)
}

/// Charge raw cycles (memory segment extras, hook costs, sync).
pub(crate) fn charge_cycles(
    stats: &mut ExecStats,
    budget: &mut u64,
    loop_depth: u32,
    c: u64,
) -> Result<(), ExecErr> {
    stats.work_cycles += c;
    if loop_depth > 0 {
        stats.loop_cycles += c;
    }
    if *budget < c {
        *budget = 0;
        return Err(ExecErr::Hang);
    }
    *budget -= c;
    Ok(())
}

/// Charge a warp memory access with segment coalescing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn charge_mem_op(
    pipe: &mut Pipe,
    stats: &mut ExecStats,
    budget: &mut u64,
    loop_depth: u32,
    cost: &CostModel,
    addrs: &[u32],
    mask: u32,
    width: usize,
    deps: [Tag; 2],
) -> Result<(), ExecErr> {
    // A warp has at most 32 lanes, so the segment scratch fits on the stack.
    let mut segments = [0u32; 32];
    let mut n = 0;
    for l in lanes(mask, width) {
        segments[n] = addrs[l] / cost.segment_bytes;
        n += 1;
    }
    let segments = &mut segments[..n];
    segments.sort_unstable();
    let mut nseg = 0u64;
    let mut prev = None;
    for &s in segments.iter() {
        if prev != Some(s) {
            nseg += 1;
            prev = Some(s);
        }
    }
    let nseg = nseg.max(1);
    stats.mem_segments += nseg;
    // Base via the pairing-aware path (Mem never pairs), extras raw.
    charge_op(pipe, stats, budget, loop_depth, cost, OpClass::Mem, deps)?;
    charge_cycles(
        stats,
        budget,
        loop_depth,
        (nseg - 1) * cost.mem_segment_extra,
    )?;
    Ok(())
}

/// Cost of dispatching a hook of `kind`.
pub(crate) fn hook_cost(cost: &CostModel, kind: &HookKind) -> u64 {
    match kind {
        HookKind::CheckRange { .. } => cost.hook_check_range,
        HookKind::CheckEqual { .. } => cost.hook_check_equal,
        HookKind::ChecksumCheck => cost.hook_checksum_check,
        HookKind::NlMismatch => cost.hook_nl_mismatch,
        // Measurement-only hooks (FI, profiler) cost nothing: the FI and
        // profiler builds are not used for performance measurement.
        HookKind::FiPoint { .. } | HookKind::Profile { .. } | HookKind::CountExec => 0,
    }
}

/// The initial active mask of a warp: lanes whose linear thread id falls
/// inside the block.
pub(crate) fn warp_initial_mask(geom: &WarpGeom, warp_width: u32) -> u32 {
    let tpb = geom.threads_per_block();
    let start = geom.warp_id * warp_width;
    let mut mask = 0u32;
    for l in 0..warp_width {
        if start + l < tpb {
            mask |= 1 << l;
        }
    }
    mask
}

/// Per-lane values of a thread-geometry builtin.
pub(crate) fn builtin_lanes(b: BuiltinVar, geom: &WarpGeom, warp_width: u32) -> Vec<Value> {
    let (bdx, bdy) = geom.block_dim;
    let base_lane = geom.warp_id * warp_width;
    (0..warp_width)
        .map(|l| {
            let lin = base_lane + l;
            let tx = lin % bdx;
            let ty = (lin / bdx) % bdy.max(1);
            match b {
                BuiltinVar::ThreadIdxX => Value::I32(tx as i32),
                BuiltinVar::ThreadIdxY => Value::I32(ty as i32),
                BuiltinVar::BlockIdxX => Value::I32(geom.block_idx.0 as i32),
                BuiltinVar::BlockIdxY => Value::I32(geom.block_idx.1 as i32),
                BuiltinVar::BlockDimX => Value::I32(bdx as i32),
                BuiltinVar::BlockDimY => Value::I32(bdy as i32),
                BuiltinVar::GridDimX => Value::I32(geom.grid.0 as i32),
                BuiltinVar::GridDimY => Value::I32(geom.grid.1 as i32),
                BuiltinVar::SharedBaseF32 => Value::Ptr(PtrVal {
                    space: MemSpace::Shared,
                    addr: 0,
                    elem: PrimTy::F32,
                }),
                BuiltinVar::SharedBaseI32 => Value::Ptr(PtrVal {
                    space: MemSpace::Shared,
                    addr: 0,
                    elem: PrimTy::I32,
                }),
            }
        })
        .collect()
}

/// Zero the inactive lanes of hook argument vectors so runtimes see one
/// normalized buffer regardless of engine (inactive lanes would otherwise
/// leak engine-specific scratch state).
pub(crate) fn zero_inactive(vals: &mut [Value], mask: u32, width: usize) {
    for (l, v) in vals.iter_mut().enumerate().take(width) {
        if mask & (1 << l) == 0 {
            *v = Value::I32(0);
        }
    }
}

/// Executes one warp.
pub struct WarpExec<'a> {
    kernel: &'a KernelDef,
    cfg: &'a DeviceConfig,
    global: &'a mut MemRegion,
    shared: &'a mut MemRegion,
    runtime: &'a mut dyn HookRuntime,
    stats: &'a mut ExecStats,
    /// Remaining cycle budget shared across the launch.
    budget: &'a mut u64,
    geom: WarpGeom,
    width: usize,
    /// regs[var][lane]
    regs: Vec<Vec<Value>>,
    /// Producer tag of the value currently held by each variable.
    producer: Vec<Tag>,
    pipe: Pipe,
    loop_depth: u32,
    /// Telemetry for hot hook-dispatch events (one branch when disabled).
    tele: &'a Telemetry,
    /// Launch id for event correlation (0 when telemetry is disabled).
    launch_id: u64,
}

impl<'a> WarpExec<'a> {
    /// Build a warp executor. `args` are the kernel parameter values,
    /// broadcast to all lanes.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kernel: &'a KernelDef,
        cfg: &'a DeviceConfig,
        global: &'a mut MemRegion,
        shared: &'a mut MemRegion,
        runtime: &'a mut dyn HookRuntime,
        stats: &'a mut ExecStats,
        budget: &'a mut u64,
        geom: WarpGeom,
        args: &[Value],
        tele: &'a Telemetry,
        launch_id: u64,
    ) -> Self {
        assert_eq!(args.len(), kernel.n_params, "kernel argument count");
        let width = cfg.warp_width as usize;
        let mut regs = Vec::with_capacity(kernel.vars.len());
        for (i, decl) in kernel.vars.iter().enumerate() {
            let init = if i < kernel.n_params {
                args[i]
            } else {
                Value::zero_of(decl.ty)
            };
            regs.push(vec![init; width]);
        }
        WarpExec {
            kernel,
            cfg,
            global,
            shared,
            runtime,
            stats,
            budget,
            geom,
            width,
            producer: vec![0; kernel.vars.len()],
            regs,
            pipe: Pipe::new(),
            loop_depth: 0,
            tele,
            launch_id,
        }
    }

    /// The initial active mask: lanes whose linear thread id falls inside
    /// the block.
    pub fn initial_mask(&self) -> u32 {
        warp_initial_mask(&self.geom, self.cfg.warp_width)
    }

    /// Run the warp to completion.
    pub fn run(&mut self) -> Result<(), ExecErr> {
        let mask = self.initial_mask();
        if mask == 0 {
            return Ok(());
        }
        self.stats.warps += 1;
        // Copy the &'a reference out so the block borrow is independent of
        // the &mut self borrow (no per-warp clone of the kernel body).
        let kernel: &'a KernelDef = self.kernel;
        let flow = self.exec_block(&kernel.body, mask)?;
        debug_assert_eq!(flow, Flow::default(), "break/continue escaped kernel");
        Ok(())
    }

    // -- cost accounting ---------------------------------------------------

    /// Charge one op of `class`; `dep_tags` are the producer tags of its
    /// operands (pairing requires independence from the previous op).
    /// Returns the new op's tag.
    fn charge(&mut self, class: OpClass, dep_tags: [Tag; 2]) -> Result<Tag, ExecErr> {
        charge_op(
            &mut self.pipe,
            self.stats,
            self.budget,
            self.loop_depth,
            &self.cfg.cost,
            class,
            dep_tags,
        )
    }

    /// Charge raw cycles (memory segment extras, hook costs, sync).
    fn add_cycles(&mut self, c: u64) -> Result<(), ExecErr> {
        charge_cycles(self.stats, self.budget, self.loop_depth, c)
    }

    // -- expression evaluation ----------------------------------------------

    /// Evaluate `e` for the lanes in `mask`. Returns per-lane values (only
    /// masked lanes are meaningful) and the producer tag of the top op.
    fn eval(&mut self, e: &Expr, mask: u32) -> Result<(Vec<Value>, Tag), ExecErr> {
        match e {
            Expr::Lit(v) => Ok((vec![*v; self.width], 0)),
            Expr::Var(v) => Ok((self.regs[*v as usize].clone(), self.producer[*v as usize])),
            Expr::Builtin(b) => {
                let vals = self.builtin_lanes(*b);
                Ok((vals, 0))
            }
            Expr::Un(op, inner) => {
                let (iv, itag) = self.eval(inner, mask)?;
                if *op == UnOp::BitsOf {
                    // Register reinterpretation: free.
                    let out = iv.iter().map(|v| Value::U32(v.to_bits())).collect();
                    return Ok((out, itag));
                }
                let class = match op {
                    UnOp::Neg => {
                        if matches!(self.lane_ty(&iv, mask), Some(PrimTy::F32)) {
                            OpClass::FAlu
                        } else {
                            OpClass::IAlu
                        }
                    }
                    _ => OpClass::IAlu,
                };
                let tag = self.charge(class, [itag, 0])?;
                let mut out = vec![Value::I32(0); self.width];
                for l in lanes(mask, self.width) {
                    out[l] = un_value(*op, iv[l])?;
                }
                Ok((out, tag))
            }
            Expr::Bin(op, a, b) => {
                let (av, atag) = self.eval(a, mask)?;
                let (bv, btag) = self.eval(b, mask)?;
                let class = bin_class(*op, self.lane_ty(&av, mask));
                let tag = self.charge(class, [atag, btag])?;
                let mut out = vec![Value::I32(0); self.width];
                let strict = self.cfg.strict_memory;
                for l in lanes(mask, self.width) {
                    out[l] = bin_value(*op, av[l], bv[l], strict)?;
                }
                Ok((out, tag))
            }
            Expr::Call(m, argxs) => {
                let mut argv = Vec::with_capacity(argxs.len());
                let mut tags = [0u64; 2];
                for (i, ax) in argxs.iter().enumerate() {
                    let (v, t) = self.eval(ax, mask)?;
                    if i < 2 {
                        tags[i] = t;
                    }
                    argv.push(v);
                }
                let is_f32 = matches!(self.lane_ty(&argv[0], mask), Some(PrimTy::F32));
                let class = match m {
                    MathFn::Abs | MathFn::Min | MathFn::Max => {
                        if is_f32 {
                            OpClass::FAlu
                        } else {
                            OpClass::IAlu
                        }
                    }
                    _ => OpClass::Sfu,
                };
                let tag = self.charge(class, tags)?;
                let mut out = vec![Value::I32(0); self.width];
                for l in lanes(mask, self.width) {
                    let args: Vec<Value> = argv.iter().map(|v| v[l]).collect();
                    out[l] = math_value(*m, &args)?;
                }
                Ok((out, tag))
            }
            Expr::Load { ptr, index } => {
                let (pv, ptag) = self.eval(ptr, mask)?;
                let (iv, itag) = self.eval(index, mask)?;
                let mut addrs = vec![0u32; self.width];
                let mut space = MemSpace::Global;
                let mut elem = PrimTy::F32;
                for l in lanes(mask, self.width) {
                    let p = as_ptr(pv[l])?;
                    let idx = as_index(iv[l])?;
                    let fp = p.offset_elems(idx);
                    addrs[l] = fp.addr;
                    space = fp.space;
                    elem = fp.elem;
                }
                self.charge_mem(&addrs, mask, [ptag, itag])?;
                let mut out = vec![Value::I32(0); self.width];
                for l in lanes(mask, self.width) {
                    let region = self.region(space);
                    out[l] = region.read(elem, addrs[l])?;
                }
                Ok((out, self.pipe.last_tag))
            }
            Expr::Cast(to, inner) => {
                let (iv, itag) = self.eval(inner, mask)?;
                let from_f32 = matches!(self.lane_ty(&iv, mask), Some(PrimTy::F32));
                let class = if from_f32 || *to == PrimTy::F32 {
                    OpClass::FAlu
                } else {
                    OpClass::IAlu
                };
                let tag = self.charge(class, [itag, 0])?;
                let mut out = vec![Value::I32(0); self.width];
                for l in lanes(mask, self.width) {
                    out[l] = cast_value(*to, iv[l])?;
                }
                Ok((out, tag))
            }
        }
    }

    /// Prim type of the first masked lane (None for pointers).
    fn lane_ty(&self, vals: &[Value], mask: u32) -> Option<PrimTy> {
        lanes(mask, self.width)
            .next()
            .and_then(|l| vals[l].ty().as_prim())
    }

    fn builtin_lanes(&self, b: BuiltinVar) -> Vec<Value> {
        builtin_lanes(b, &self.geom, self.cfg.warp_width)
    }

    fn region(&mut self, space: MemSpace) -> &mut MemRegion {
        match space {
            MemSpace::Global => self.global,
            MemSpace::Shared => self.shared,
        }
    }

    /// Charge a warp memory access with segment coalescing.
    fn charge_mem(&mut self, addrs: &[u32], mask: u32, deps: [Tag; 2]) -> Result<(), ExecErr> {
        charge_mem_op(
            &mut self.pipe,
            self.stats,
            self.budget,
            self.loop_depth,
            &self.cfg.cost,
            addrs,
            mask,
            self.width,
            deps,
        )
    }

    // -- statements ----------------------------------------------------------

    fn exec_block(&mut self, b: &Block, active: u32) -> Result<Flow, ExecErr> {
        let mut live = active;
        let mut flow = Flow::default();
        for s in &b.0 {
            if live == 0 {
                break;
            }
            let f = self.exec_stmt(s, live)?;
            flow.brk |= f.brk;
            flow.cont |= f.cont;
            live &= !(f.brk | f.cont);
        }
        Ok(flow)
    }

    fn write_var(&mut self, var: u32, vals: &[Value], mask: u32, tag: Tag) {
        let slot = &mut self.regs[var as usize];
        for l in lanes(mask, self.width) {
            slot[l] = vals[l];
        }
        self.producer[var as usize] = tag;
    }

    fn exec_stmt(&mut self, s: &Stmt, mask: u32) -> Result<Flow, ExecErr> {
        match s {
            Stmt::Assign { var, value } => {
                let (vals, tag) = self.eval(value, mask)?;
                self.write_var(*var, &vals, mask, tag);
                Ok(Flow::default())
            }
            Stmt::Store { ptr, index, value } => {
                let (pv, ptag) = self.eval(ptr, mask)?;
                let (iv, itag) = self.eval(index, mask)?;
                let (vv, _vtag) = self.eval(value, mask)?;
                let mut addrs = vec![0u32; self.width];
                let mut space = MemSpace::Global;
                for l in lanes(mask, self.width) {
                    let p = as_ptr(pv[l])?;
                    let idx = as_index(iv[l])?;
                    let fp = p.offset_elems(idx);
                    addrs[l] = fp.addr;
                    space = fp.space;
                }
                self.charge_mem(&addrs, mask, [ptag, itag])?;
                for l in lanes(mask, self.width) {
                    let v = vv[l];
                    self.region(space).write(addrs[l], v)?;
                }
                Ok(Flow::default())
            }
            Stmt::AtomicAdd { ptr, index, value } => {
                let (pv, ptag) = self.eval(ptr, mask)?;
                let (iv, itag) = self.eval(index, mask)?;
                let (vv, _) = self.eval(value, mask)?;
                let mut addrs = vec![0u32; self.width];
                let mut space = MemSpace::Global;
                let mut elem = PrimTy::I32;
                for l in lanes(mask, self.width) {
                    let p = as_ptr(pv[l])?;
                    let idx = as_index(iv[l])?;
                    let fp = p.offset_elems(idx);
                    addrs[l] = fp.addr;
                    space = fp.space;
                    elem = fp.elem;
                }
                // Atomics serialize: base + extra per lane.
                self.charge_mem(&addrs, mask, [ptag, itag])?;
                let lane_count = mask.count_ones() as u64;
                self.add_cycles(lane_count.saturating_sub(1) * self.cfg.cost.mem_segment_extra)?;
                let strict = self.cfg.strict_memory;
                for l in lanes(mask, self.width) {
                    let region = self.region(space);
                    let old = region.read(elem, addrs[l])?;
                    let new = bin_value(BinOp::Add, old, vv[l], strict)?;
                    region.write(addrs[l], new)?;
                }
                Ok(Flow::default())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let (cv, ctag) = self.eval(cond, mask)?;
                self.charge(OpClass::Ctl, [ctag, 0])?;
                let mut t_mask = 0u32;
                for l in lanes(mask, self.width) {
                    if as_cond(cv[l])? {
                        t_mask |= 1 << l;
                    }
                }
                let e_mask = mask & !t_mask;
                let mut flow = Flow::default();
                if t_mask != 0 {
                    let f = self.exec_block(then_blk, t_mask)?;
                    flow.brk |= f.brk;
                    flow.cont |= f.cont;
                }
                if e_mask != 0 {
                    let f = self.exec_block(else_blk, e_mask)?;
                    flow.brk |= f.brk;
                    flow.cont |= f.cont;
                }
                Ok(flow)
            }
            Stmt::For {
                id,
                var,
                init,
                cond,
                step,
                body,
            } => {
                let (iv, itag) = self.eval(init, mask)?;
                self.write_var(*var, &iv, mask, itag);
                self.loop_depth += 1;
                let result = self.run_loop(Some((*var, step)), *id, cond, body, mask);
                self.loop_depth -= 1;
                result?;
                Ok(Flow::default())
            }
            Stmt::While { id, cond, body } => {
                self.loop_depth += 1;
                let result = self.run_loop(None, *id, cond, body, mask);
                self.loop_depth -= 1;
                result?;
                Ok(Flow::default())
            }
            Stmt::Break => Ok(Flow { brk: mask, cont: 0 }),
            Stmt::Continue => Ok(Flow { brk: 0, cont: mask }),
            Stmt::SyncThreads => {
                self.stats.syncs += 1;
                self.add_cycles(self.cfg.cost.sync)?;
                Ok(Flow::default())
            }
            Stmt::Hook(h) => {
                self.exec_hook(h, mask)?;
                Ok(Flow::default())
            }
        }
    }

    /// Shared loop driver for `for` (with iterator/step) and `while`.
    fn run_loop(
        &mut self,
        for_parts: Option<(u32, &Expr)>,
        loop_id: u32,
        cond: &Expr,
        body: &Block,
        entry_mask: u32,
    ) -> Result<(), ExecErr> {
        let mut live = entry_mask;
        let mut iteration: u64 = 0;
        loop {
            if live == 0 {
                break;
            }
            let (cv, ctag) = self.eval(cond, live)?;
            self.charge(OpClass::Ctl, [ctag, 0])?;
            let mut cond_mask = 0u32;
            for l in lanes(live, self.width) {
                if as_cond(cv[l])? {
                    cond_mask |= 1 << l;
                }
            }
            // Scheduler-fault window: the runtime may corrupt the iterator
            // or the decision mask here.
            self.loop_check_hook(
                for_parts.map(|(v, _)| v),
                loop_id,
                live,
                iteration,
                &mut cond_mask,
            )?;
            live &= cond_mask;
            if live == 0 {
                break;
            }
            let f = self.exec_block(body, live)?;
            // Lanes that broke leave the loop; continue lanes rejoin for the
            // step/condition.
            live &= !f.brk;
            let step_mask = live; // includes rejoined continue lanes
            if let Some((var, step)) = for_parts {
                if step_mask != 0 {
                    let (sv, stag) = self.eval(step, step_mask)?;
                    self.write_var(var, &sv, step_mask, stag);
                }
            }
            iteration += 1;
        }
        Ok(())
    }

    fn loop_check_hook(
        &mut self,
        iter_var: Option<u32>,
        loop_id: u32,
        active: u32,
        iteration: u64,
        cond_mask: &mut u32,
    ) -> Result<(), ExecErr> {
        let geom = self.geom;
        let warp_width = self.cfg.warp_width;
        let first_thread = geom.first_thread(warp_width);
        let cycles = self.stats.work_cycles;
        self.tele.emit_hot_with(|| Event::HookDispatch {
            launch_id: self.launch_id,
            kind: "loop_check",
            site: loop_id as u64,
            block: geom.block_lin(),
            warp: geom.warp_id,
            cycles,
        });
        {
            let iter_slot = iter_var.map(|v| &mut self.regs[v as usize]);
            let mut ctx = LoopCheckCtx {
                block_id: geom.block_lin(),
                warp_id: geom.warp_id,
                active,
                warp_width,
                first_thread,
                cycles,
                iteration,
                iter_var: iter_slot,
                cond_mask,
            };
            self.runtime.on_loop_check(loop_id, &mut ctx);
        }
        // The runtime may have corrupted the iterator; the change takes
        // effect at the next condition evaluation, like a register
        // corruption between instructions. Invalidate the producer tag so
        // pairing decisions stay conservative.
        if let Some(v) = iter_var {
            self.producer[v as usize] = 0;
        }
        Ok(())
    }

    fn exec_hook(&mut self, h: &Hook, mask: u32) -> Result<(), ExecErr> {
        let mut argvals = Vec::with_capacity(h.args.len());
        for a in &h.args {
            let (mut v, _) = self.eval(a, mask)?;
            zero_inactive(&mut v, mask, self.width);
            argvals.push(v);
        }
        let hook_cost = hook_cost(&self.cfg.cost, &h.kind);
        self.add_cycles(hook_cost)?;
        self.stats.hooks += 1;

        let geom = self.geom;
        let warp_width = self.cfg.warp_width;
        let first_thread = geom.first_thread(warp_width);
        let cycles = self.stats.work_cycles;
        self.tele.emit_hot_with(|| Event::HookDispatch {
            launch_id: self.launch_id,
            kind: hook_kind_name(&h.kind),
            site: h.site as u64,
            block: geom.block_lin(),
            warp: geom.warp_id,
            cycles,
        });
        let target_slot = h.target.map(|v| &mut self.regs[v as usize]);
        let mut ctx = HookCtx {
            block_id: geom.block_lin(),
            warp_id: geom.warp_id,
            active: mask,
            warp_width,
            first_thread,
            cycles,
            args: &argvals,
            target: target_slot,
        };
        self.runtime.on_hook(h, &mut ctx);
        // Register-file faults: the runtime may corrupt any live variable at
        // this point (the value sits in a register between uses).
        if let Some(rc) = self.runtime.register_corruption(h, first_thread, mask) {
            if rc.lane < self.cfg.warp_width
                && mask & (1 << rc.lane) != 0
                && (rc.var as usize) < self.regs.len()
            {
                let slot = &mut self.regs[rc.var as usize][rc.lane as usize];
                *slot = slot.xor_bits(rc.mask);
                self.producer[rc.var as usize] = 0;
            }
        }
        // The hook may have corrupted its target variable; drop its producer
        // tag so later pairing decisions stay conservative.
        if let Some(v) = h.target {
            self.producer[v as usize] = 0;
        }
        Ok(())
    }
}

/// Stable event label for a hook kind.
pub(crate) fn hook_kind_name(kind: &HookKind) -> &'static str {
    match kind {
        HookKind::CheckRange { .. } => "check_range",
        HookKind::CheckEqual { .. } => "check_equal",
        HookKind::ChecksumCheck => "checksum_check",
        HookKind::NlMismatch => "nl_mismatch",
        HookKind::FiPoint { .. } => "fi_point",
        HookKind::Profile { .. } => "profile",
        HookKind::CountExec => "count_exec",
    }
}

/// Iterate set lanes of `mask` below `width`.
pub(crate) fn lanes(mask: u32, width: usize) -> impl Iterator<Item = usize> {
    (0..width).filter(move |l| mask & (1 << l) != 0)
}

pub(crate) fn as_ptr(v: Value) -> Result<PtrVal, TrapReason> {
    v.as_ptr().ok_or(TrapReason::IllegalInstruction)
}

pub(crate) fn as_index(v: Value) -> Result<i64, TrapReason> {
    match v {
        Value::I32(i) => Ok(i as i64),
        Value::U32(u) => Ok(u as i64),
        Value::Bool(b) => Ok(b as i64),
        _ => Err(TrapReason::IllegalInstruction),
    }
}

pub(crate) fn as_cond(v: Value) -> Result<bool, TrapReason> {
    v.as_bool().ok_or(TrapReason::IllegalInstruction)
}

/// Class of a binary op given the (prim) type of its left operand.
pub(crate) fn bin_class(op: BinOp, ty: Option<PrimTy>) -> OpClass {
    let is_f = matches!(ty, Some(PrimTy::F32));
    match op {
        BinOp::Div | BinOp::Rem if is_f => OpClass::Sfu,
        _ if is_f => OpClass::FAlu,
        _ => OpClass::IAlu,
    }
}

pub(crate) fn un_value(op: UnOp, v: Value) -> Result<Value, TrapReason> {
    use TrapReason::IllegalInstruction as Ill;
    match (op, v) {
        (UnOp::Neg, Value::F32(x)) => Ok(Value::F32(-x)),
        (UnOp::Neg, Value::I32(x)) => Ok(Value::I32(x.wrapping_neg())),
        (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (UnOp::BitNot, Value::I32(x)) => Ok(Value::I32(!x)),
        (UnOp::BitNot, Value::U32(x)) => Ok(Value::U32(!x)),
        (UnOp::BitsOf, v) => Ok(Value::U32(v.to_bits())),
        _ => Err(Ill),
    }
}

/// Binary operation semantics (C/CUDA-like; see [`crate`] docs).
pub fn bin_value(op: BinOp, a: Value, b: Value, strict: bool) -> Result<Value, TrapReason> {
    use BinOp::*;
    use TrapReason::IllegalInstruction as Ill;
    // Pointer arithmetic.
    if let (Value::Ptr(p), idx) = (a, b) {
        if matches!(op, Add | Sub) {
            let i = as_index(idx)?;
            let i = if op == Sub { -i } else { i };
            return Ok(Value::Ptr(p.offset_elems(i)));
        }
        if matches!(op, Eq | Ne) {
            if let Value::Ptr(q) = b {
                let eq = p == q;
                return Ok(Value::Bool(if op == Eq { eq } else { !eq }));
            }
        }
        return Err(Ill);
    }
    match (a, b) {
        (Value::F32(x), Value::F32(y)) => Ok(match op {
            Add => Value::F32(x + y),
            Sub => Value::F32(x - y),
            Mul => Value::F32(x * y),
            Div => Value::F32(x / y),
            Rem => Value::F32(x % y),
            Lt => Value::Bool(x < y),
            Le => Value::Bool(x <= y),
            Gt => Value::Bool(x > y),
            Ge => Value::Bool(x >= y),
            Eq => Value::Bool(x.to_bits() == y.to_bits()),
            Ne => Value::Bool(x.to_bits() != y.to_bits()),
            _ => return Err(Ill),
        }),
        (Value::I32(x), Value::I32(y)) => Ok(match op {
            Add => Value::I32(x.wrapping_add(y)),
            Sub => Value::I32(x.wrapping_sub(y)),
            Mul => Value::I32(x.wrapping_mul(y)),
            Div => {
                if y == 0 {
                    if strict {
                        return Err(TrapReason::IntDivByZero);
                    }
                    Value::I32(0)
                } else {
                    Value::I32(x.wrapping_div(y))
                }
            }
            Rem => {
                if y == 0 {
                    if strict {
                        return Err(TrapReason::IntDivByZero);
                    }
                    Value::I32(0)
                } else {
                    Value::I32(x.wrapping_rem(y))
                }
            }
            And => Value::I32(x & y),
            Or => Value::I32(x | y),
            Xor => Value::I32(x ^ y),
            Shl => Value::I32(x.wrapping_shl(y as u32 & 31)),
            Shr => Value::I32(x.wrapping_shr(y as u32 & 31)),
            Lt => Value::Bool(x < y),
            Le => Value::Bool(x <= y),
            Gt => Value::Bool(x > y),
            Ge => Value::Bool(x >= y),
            Eq => Value::Bool(x == y),
            Ne => Value::Bool(x != y),
            LAnd | LOr => return Err(Ill),
        }),
        (Value::U32(x), Value::U32(y)) => Ok(match op {
            Add => Value::U32(x.wrapping_add(y)),
            Sub => Value::U32(x.wrapping_sub(y)),
            Mul => Value::U32(x.wrapping_mul(y)),
            Div => match x.checked_div(y) {
                Some(v) => Value::U32(v),
                None if strict => return Err(TrapReason::IntDivByZero),
                None => Value::U32(0),
            },
            Rem => match x.checked_rem(y) {
                Some(v) => Value::U32(v),
                None if strict => return Err(TrapReason::IntDivByZero),
                None => Value::U32(0),
            },
            And => Value::U32(x & y),
            Or => Value::U32(x | y),
            Xor => Value::U32(x ^ y),
            Shl => Value::U32(x.wrapping_shl(y & 31)),
            Shr => Value::U32(x.wrapping_shr(y & 31)),
            Lt => Value::Bool(x < y),
            Le => Value::Bool(x <= y),
            Gt => Value::Bool(x > y),
            Ge => Value::Bool(x >= y),
            Eq => Value::Bool(x == y),
            Ne => Value::Bool(x != y),
            LAnd | LOr => return Err(Ill),
        }),
        (Value::Bool(x), Value::Bool(y)) => Ok(match op {
            LAnd | And => Value::Bool(x && y),
            LOr | Or => Value::Bool(x || y),
            Eq => Value::Bool(x == y),
            Ne => Value::Bool(x != y),
            Xor => Value::Bool(x ^ y),
            _ => return Err(Ill),
        }),
        _ => Err(Ill),
    }
}

pub(crate) fn math_value(m: MathFn, args: &[Value]) -> Result<Value, TrapReason> {
    use TrapReason::IllegalInstruction as Ill;
    match m {
        MathFn::Min | MathFn::Max => match (args[0], args[1]) {
            (Value::F32(a), Value::F32(b)) => Ok(Value::F32(if m == MathFn::Min {
                a.min(b)
            } else {
                a.max(b)
            })),
            (Value::I32(a), Value::I32(b)) => Ok(Value::I32(if m == MathFn::Min {
                a.min(b)
            } else {
                a.max(b)
            })),
            (Value::U32(a), Value::U32(b)) => Ok(Value::U32(if m == MathFn::Min {
                a.min(b)
            } else {
                a.max(b)
            })),
            _ => Err(Ill),
        },
        MathFn::Abs => match args[0] {
            Value::F32(a) => Ok(Value::F32(a.abs())),
            Value::I32(a) => Ok(Value::I32(a.wrapping_abs())),
            _ => Err(Ill),
        },
        _ => {
            let Value::F32(x) = args[0] else {
                return Err(Ill);
            };
            Ok(Value::F32(match m {
                MathFn::Sqrt => x.sqrt(),
                MathFn::Rsqrt => 1.0 / x.sqrt(),
                MathFn::Sin => x.sin(),
                MathFn::Cos => x.cos(),
                MathFn::Exp => x.exp(),
                MathFn::Log => x.ln(),
                MathFn::Floor => x.floor(),
                _ => unreachable!("handled above"),
            }))
        }
    }
}

pub(crate) fn cast_value(to: PrimTy, v: Value) -> Result<Value, TrapReason> {
    use TrapReason::IllegalInstruction as Ill;
    let out = match (v, to) {
        (Value::F32(x), PrimTy::F32) => Value::F32(x),
        (Value::F32(x), PrimTy::I32) => Value::I32(x as i32),
        (Value::F32(x), PrimTy::U32) => Value::U32(x as u32),
        (Value::F32(x), PrimTy::Bool) => Value::Bool(x != 0.0),
        (Value::I32(x), PrimTy::F32) => Value::F32(x as f32),
        (Value::I32(x), PrimTy::I32) => Value::I32(x),
        (Value::I32(x), PrimTy::U32) => Value::U32(x as u32),
        (Value::I32(x), PrimTy::Bool) => Value::Bool(x != 0),
        (Value::U32(x), PrimTy::F32) => Value::F32(x as f32),
        (Value::U32(x), PrimTy::I32) => Value::I32(x as i32),
        (Value::U32(x), PrimTy::U32) => Value::U32(x),
        (Value::U32(x), PrimTy::Bool) => Value::Bool(x != 0),
        (Value::Bool(x), PrimTy::F32) => Value::F32(x as u32 as f32),
        (Value::Bool(x), PrimTy::I32) => Value::I32(x as i32),
        (Value::Bool(x), PrimTy::U32) => Value::U32(x as u32),
        (Value::Bool(x), PrimTy::Bool) => Value::Bool(x),
        (Value::Ptr(_), _) => return Err(Ill),
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_value_int_div_by_zero_modes() {
        // GPU: returns 0 (CUDA-like); CPU: traps.
        assert_eq!(
            bin_value(BinOp::Div, Value::I32(5), Value::I32(0), false).unwrap(),
            Value::I32(0)
        );
        assert!(matches!(
            bin_value(BinOp::Div, Value::I32(5), Value::I32(0), true),
            Err(TrapReason::IntDivByZero)
        ));
    }

    #[test]
    fn fp_div_by_zero_is_infinite_not_a_trap() {
        // §II.A: "divide-by-zero in FP value does not lead to an exception
        // but returns an infinite value".
        let v = bin_value(BinOp::Div, Value::F32(1.0), Value::F32(0.0), true).unwrap();
        assert_eq!(v, Value::F32(f32::INFINITY));
    }

    #[test]
    fn pointer_arithmetic_in_elements() {
        let p = Value::Ptr(PtrVal {
            space: MemSpace::Global,
            addr: 256,
            elem: PrimTy::F32,
        });
        let q = bin_value(BinOp::Add, p, Value::I32(3), false).unwrap();
        assert_eq!(q.as_ptr().unwrap().addr, 268);
        let r = bin_value(BinOp::Sub, p, Value::I32(1), false).unwrap();
        assert_eq!(r.as_ptr().unwrap().addr, 252);
    }

    #[test]
    fn nan_comparisons_are_false() {
        let nan = Value::F32(f32::NAN);
        assert_eq!(
            bin_value(BinOp::Lt, nan, Value::F32(1.0), false).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            bin_value(BinOp::Ge, nan, Value::F32(1.0), false).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn shifts_mask_count() {
        assert_eq!(
            bin_value(BinOp::Shl, Value::U32(1), Value::U32(33), false).unwrap(),
            Value::U32(2)
        );
    }

    #[test]
    fn type_mismatch_is_illegal_instruction() {
        assert!(matches!(
            bin_value(BinOp::Add, Value::I32(1), Value::F32(1.0), false),
            Err(TrapReason::IllegalInstruction)
        ));
    }

    #[test]
    fn cast_semantics() {
        assert_eq!(
            cast_value(PrimTy::I32, Value::F32(3.9)).unwrap(),
            Value::I32(3)
        );
        assert_eq!(
            cast_value(PrimTy::F32, Value::I32(-2)).unwrap(),
            Value::F32(-2.0)
        );
        assert!(cast_value(
            PrimTy::I32,
            Value::Ptr(PtrVal {
                space: MemSpace::Global,
                addr: 0,
                elem: PrimTy::F32
            })
        )
        .is_err());
    }

    #[test]
    fn math_values() {
        assert_eq!(
            math_value(MathFn::Sqrt, &[Value::F32(4.0)]).unwrap(),
            Value::F32(2.0)
        );
        assert_eq!(
            math_value(MathFn::Min, &[Value::I32(3), Value::I32(-1)]).unwrap(),
            Value::I32(-1)
        );
        // sqrt of negative is NaN, not a trap.
        let v = math_value(MathFn::Sqrt, &[Value::F32(-1.0)]).unwrap();
        assert!(v.as_f32().unwrap().is_nan());
    }

    #[test]
    fn lanes_iterates_set_bits() {
        let ls: Vec<usize> = lanes(0b1011, 8).collect();
        assert_eq!(ls, vec![0, 1, 3]);
    }
}
