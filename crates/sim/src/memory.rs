//! Device memory: a word-addressed region with a bump allocator, typed
//! accessors, and the GPU/CPU protection split.
//!
//! * **GPU (permissive) mode** — three tiers, modeling a device with a
//!   coarse MMU but no page-granularity protection (the paper's explanation
//!   for the GPU's high SDC / lower crash ratio):
//!   1. inside the allocated extent — normal access (a corrupted address
//!      silently reads/writes *some other live data*);
//!   2. past the allocation but inside the device address space — loads
//!      return deterministic garbage and stores are dropped (the mechanism
//!      behind the paper's TPACF failure case, where a write-and-verify
//!      retry loop spins forever because "the corrupted address never
//!      returns the write requested value", §IX.B);
//!   3. beyond the device address space — the access traps (kernel crash
//!      detected by the runtime).
//!
//!   Misaligned accesses trap in both modes (CUDA's
//!   `cudaErrorMisalignedAddress`).
//! * **CPU (strict) mode** — any access at or beyond the allocation bump
//!   point traps, emulating page protection.

use crate::outcome::TrapReason;
use hauberk_kir::{MemSpace, PrimTy, PtrVal, Value};

/// A linear, word-granular memory region.
///
/// The backing store is materialized lazily: `words` only ever covers the
/// allocated extent `[0, brk)`. Addresses at or beyond `brk` are never
/// backed — permissive mode synthesizes deterministic garbage for loads and
/// drops stores there, strict mode traps — so a fresh multi-megabyte device
/// costs nothing until kernels actually allocate.
/// Two regions compare equal iff every observable read agrees: the backed
/// words, the allocation extent, and the protection mode. Reads beyond `brk`
/// are a pure function of the address, so word+extent equality covers the
/// whole address space — this is what makes [`crate::snapshot::Snapshot`]
/// round trips bit-exact without materializing the unbacked tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRegion {
    space: MemSpace,
    words: Vec<u32>,
    /// Device address-space size, in bytes (word-aligned).
    capacity: u32,
    /// Allocation bump pointer, in bytes.
    brk: u32,
    strict: bool,
}

/// Alignment of fresh allocations, in bytes (matches CUDA's 256-byte
/// allocation granularity; keeps buffers segment-aligned for coalescing).
pub const ALLOC_ALIGN: u32 = 256;

/// Result of address resolution in permissive mode.
enum Slot {
    /// A backed word.
    Word(usize),
    /// Mapped but unallocated (permissive mode only).
    Unallocated(u32),
}

impl MemRegion {
    /// Create a region of `capacity_bytes` (rounded down to whole words).
    pub fn new(space: MemSpace, capacity_bytes: u32, strict: bool) -> Self {
        MemRegion {
            space,
            words: Vec::new(),
            capacity: capacity_bytes / 4 * 4,
            brk: 0,
            strict,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Bytes allocated so far.
    pub fn allocated(&self) -> u32 {
        self.brk
    }

    /// The backed words (the allocated extent `[0, brk)`, padded to the
    /// alignment granule). Together with [`MemRegion::allocated`] this is
    /// the region's entire observable state — reads beyond it are a pure
    /// function of the address — so it is what snapshot fingerprints hash.
    pub fn backed_words(&self) -> &[u32] {
        &self.words
    }

    /// Allocate `n` elements of `elem`, zero-initialized, 256-byte aligned.
    /// Returns `None` when the region is exhausted.
    pub fn alloc(&mut self, elem: PrimTy, n: u32) -> Option<PtrVal> {
        let bytes = n.checked_mul(elem.size_bytes())?;
        let base = self.brk.checked_add(ALLOC_ALIGN - 1)? / ALLOC_ALIGN * ALLOC_ALIGN;
        let end = base.checked_add(bytes)?;
        if end > self.capacity() {
            return None;
        }
        // `base` is 256-byte aligned, so it sits at or past the backed
        // extent; the resize zero-fills the alignment gap and the new
        // allocation in one pass.
        self.words.resize((end as usize).div_ceil(4), 0);
        self.brk = end;
        Some(PtrVal {
            space: self.space,
            addr: base,
            elem,
        })
    }

    /// Reset the allocator and zero the region (fresh device state).
    pub fn reset(&mut self) {
        self.words.clear();
        self.brk = 0;
    }

    /// Resolve an address per the protection mode.
    fn resolve(&self, addr: u32) -> Result<Slot, TrapReason> {
        if !addr.is_multiple_of(4) {
            return Err(TrapReason::Misaligned {
                space: self.space,
                addr,
            });
        }
        if self.strict {
            if addr >= self.brk {
                return Err(TrapReason::OutOfBounds {
                    space: self.space,
                    addr,
                });
            }
            return Ok(Slot::Word((addr / 4) as usize));
        }
        if addr >= self.capacity() {
            // Beyond the device address space: even a protection-less GPU's
            // coarse MMU faults here.
            return Err(TrapReason::OutOfBounds {
                space: self.space,
                addr,
            });
        }
        if addr >= self.brk {
            // Mapped but unallocated: no page protection — loads see
            // garbage, stores vanish.
            return Ok(Slot::Unallocated(addr));
        }
        Ok(Slot::Word((addr / 4) as usize))
    }

    /// Read the raw 32-bit word at `addr`.
    pub fn read_word(&self, addr: u32) -> Result<u32, TrapReason> {
        match self.resolve(addr)? {
            Slot::Word(i) => Ok(self.words[i]),
            // Deterministic garbage for unallocated reads.
            Slot::Unallocated(a) => Ok(a.wrapping_mul(2654435761).rotate_left(7)),
        }
    }

    /// Write the raw 32-bit word at `addr`.
    pub fn write_word(&mut self, addr: u32, w: u32) -> Result<(), TrapReason> {
        match self.resolve(addr)? {
            Slot::Word(i) => {
                self.words[i] = w;
                Ok(())
            }
            Slot::Unallocated(_) => Ok(()), // dropped
        }
    }

    /// Read a typed value at `addr`.
    pub fn read(&self, elem: PrimTy, addr: u32) -> Result<Value, TrapReason> {
        Ok(Value::from_bits(elem, self.read_word(addr)?))
    }

    /// Write a typed value at `addr`.
    pub fn write(&mut self, addr: u32, v: Value) -> Result<(), TrapReason> {
        self.write_word(addr, v.to_bits())
    }

    /// Host-side bulk copy in (`h2d`). Panics on out-of-range (host bug, not
    /// a simulated fault).
    pub fn copy_in(&mut self, ptr: PtrVal, data: &[Value]) {
        for (i, v) in data.iter().enumerate() {
            let addr = ptr.addr + (i as u32) * 4;
            assert!(addr < self.brk, "host copy_in beyond allocation");
            self.words[(addr / 4) as usize] = v.to_bits();
        }
    }

    /// Host-side bulk copy out (`d2h`).
    pub fn copy_out(&self, ptr: PtrVal, n: u32) -> Vec<Value> {
        (0..n)
            .map(|i| {
                let addr = ptr.addr + i * 4;
                assert!(addr < self.brk, "host copy_out beyond allocation");
                Value::from_bits(ptr.elem, self.words[(addr / 4) as usize])
            })
            .collect()
    }

    /// Corrupt `count` consecutive words starting at `addr` by XORing `mask`
    /// (intermittent/memory-fault emulation for the graphics experiments,
    /// paper Fig. 3).
    pub fn corrupt_words(&mut self, addr: u32, count: u32, mask: u32) {
        for i in 0..count {
            let a = addr.wrapping_add(i * 4);
            if let Ok(Slot::Word(idx)) = self.resolve(a & !3) {
                self.words[idx] ^= mask;
            }
        }
    }

    /// Convenience: copy a `&[f32]` in.
    pub fn copy_in_f32(&mut self, ptr: PtrVal, data: &[f32]) {
        let vals: Vec<Value> = data.iter().map(|v| Value::F32(*v)).collect();
        self.copy_in(ptr, &vals);
    }

    /// Convenience: copy a `&[i32]` in.
    pub fn copy_in_i32(&mut self, ptr: PtrVal, data: &[i32]) {
        let vals: Vec<Value> = data.iter().map(|v| Value::I32(*v)).collect();
        self.copy_in(ptr, &vals);
    }

    /// Convenience: read back `n` `f32`s. Unbacked words read as zero, as
    /// they did when the full region was materialized eagerly.
    pub fn copy_out_f32(&self, ptr: PtrVal, n: u32) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let idx = ((ptr.addr + i * 4) / 4) as usize;
                f32::from_bits(self.words.get(idx).copied().unwrap_or(0))
            })
            .collect()
    }

    /// Convenience: read back `n` `i32`s. Unbacked words read as zero.
    pub fn copy_out_i32(&self, ptr: PtrVal, n: u32) -> Vec<i32> {
        (0..n)
            .map(|i| {
                let idx = ((ptr.addr + i * 4) / 4) as usize;
                self.words.get(idx).copied().unwrap_or(0) as i32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(strict: bool) -> MemRegion {
        MemRegion::new(MemSpace::Global, 4096, strict)
    }

    #[test]
    fn alloc_is_aligned_and_zeroed() {
        let mut m = region(false);
        let a = m.alloc(PrimTy::F32, 10).unwrap();
        let b = m.alloc(PrimTy::I32, 1).unwrap();
        assert_eq!(a.addr % ALLOC_ALIGN, 0);
        assert_eq!(b.addr % ALLOC_ALIGN, 0);
        assert!(b.addr >= a.addr + 40);
        assert_eq!(m.read(PrimTy::F32, a.addr).unwrap(), Value::F32(0.0));
    }

    #[test]
    fn alloc_exhaustion_returns_none() {
        let mut m = region(false);
        assert!(m.alloc(PrimTy::F32, 2000).is_none());
        assert!(m.alloc(PrimTy::F32, 512).is_some());
        assert!(m.alloc(PrimTy::F32, 600).is_none());
        assert!(m.alloc(PrimTy::F32, 512).is_some(), "exact fit succeeds");
    }

    #[test]
    fn strict_oob_traps_permissive_wraps() {
        let mut strict = region(true);
        let p = strict.alloc(PrimTy::I32, 4).unwrap();
        strict.write(p.addr, Value::I32(7)).unwrap();
        assert!(matches!(
            strict.read(PrimTy::I32, p.addr + 4096),
            Err(TrapReason::OutOfBounds { .. })
        ));

        let mut perm = region(false);
        let p = perm.alloc(PrimTy::I32, 4).unwrap();
        perm.write(p.addr, Value::I32(42)).unwrap();
        // Unallocated-but-mapped: garbage read, dropped write, no trap.
        let v = perm.read(PrimTy::I32, p.addr + 1024).unwrap();
        assert!(v.as_i32().is_some());
        perm.write(p.addr + 1024, Value::I32(7)).unwrap();
        // Beyond the address space: traps even in permissive mode.
        assert!(matches!(
            perm.read(PrimTy::I32, 1 << 30),
            Err(TrapReason::OutOfBounds { .. })
        ));
    }

    #[test]
    fn misaligned_traps_in_both_modes() {
        for strict in [true, false] {
            let mut m = region(strict);
            let p = m.alloc(PrimTy::F32, 4).unwrap();
            assert!(matches!(
                m.read(PrimTy::F32, p.addr + 2),
                Err(TrapReason::Misaligned { .. })
            ));
        }
    }

    #[test]
    fn host_copies_round_trip() {
        let mut m = region(false);
        let p = m.alloc(PrimTy::F32, 4).unwrap();
        m.copy_in_f32(p, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.copy_out_f32(p, 4), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn corrupt_words_flips_bits() {
        let mut m = region(false);
        let p = m.alloc(PrimTy::I32, 4).unwrap();
        m.copy_in_i32(p, &[0, 0, 0, 0]);
        m.corrupt_words(p.addr, 2, 1);
        assert_eq!(m.copy_out_i32(p, 4), vec![1, 1, 0, 0]);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = region(false);
        let p = m.alloc(PrimTy::I32, 4).unwrap();
        m.copy_in_i32(p, &[9, 9, 9, 9]);
        m.reset();
        assert_eq!(m.allocated(), 0);
        let p2 = m.alloc(PrimTy::I32, 4).unwrap();
        assert_eq!(m.copy_out_i32(p2, 4), vec![0, 0, 0, 0]);
    }
}
