//! The `ExecBackend` abstraction: one interface over all execution engines.
//!
//! The device's launch loop used to `match` on [`ExecEngine`] inline —
//! compile for the bytecode VM, skip compilation for the tree walker, pick
//! the executor per warp. Each new tier would have widened every such match
//! (in `device.rs` and anywhere else that selects an engine). Instead, each
//! tier now implements [`ExecBackend`]:
//!
//! * [`ExecBackend::prepare`] runs once per launch and produces whatever
//!   per-launch artifact the tier wants (nothing for the tree walker; a
//!   cached [`CompiledKernel`] for the bytecode VM; a
//!   [`BatchCompiled`] — bytecode + region plan — for the batch tier);
//! * [`ExecBackend::run_warp`] executes one warp against that artifact,
//!   with all mutable launch state passed through [`WarpCtx`] (memory,
//!   runtime hooks for fault injection, stats, cycle budget, telemetry).
//!
//! The contract every backend must honor is **observational equivalence**:
//! identical `ExecStats`, trap/hang ordering, hook and fault-injection
//! windows, and output bits for the same kernel and launch — engines may
//! differ only in speed. The three-way differential suite at the workspace
//! root enforces this.
//!
//! [`ExecEngine::backend`] maps the config enum to a `&'static dyn
//! ExecBackend`, which is the *only* place an engine match remains.

use crate::bytecode::{compile_cached, CompiledKernel};
use crate::config::{DeviceConfig, ExecEngine};
use crate::hooks::HookRuntime;
use crate::interp::{ExecErr, WarpExec, WarpGeom};
use crate::memory::MemRegion;
use crate::stats::ExecStats;
use crate::vm::VmExec;
use crate::vm_batch::{compile_batch_cached, BatchCompiled};
use hauberk_kir::{KernelDef, Value};
use hauberk_telemetry::Telemetry;
use std::any::Any;
use std::sync::Arc;

/// Everything a backend needs to execute one warp: the launch's mutable
/// state plus this warp's geometry. Borrowed fresh for each warp from the
/// device's launch loop.
pub struct WarpCtx<'a> {
    /// Device configuration (cost model, warp width, strictness).
    pub cfg: &'a DeviceConfig,
    /// Global memory.
    pub global: &'a mut MemRegion,
    /// This block's shared memory.
    pub shared: &'a mut MemRegion,
    /// Hook/fault runtime (the injection and alarm surface).
    pub runtime: &'a mut dyn HookRuntime,
    /// Launch-wide execution statistics.
    pub stats: &'a mut ExecStats,
    /// Remaining launch cycle budget.
    pub budget: &'a mut u64,
    /// This warp's geometry.
    pub geom: WarpGeom,
    /// Kernel arguments (broadcast to lanes).
    pub args: &'a [Value],
    /// Telemetry pipeline.
    pub tele: &'a Telemetry,
    /// Launch id for telemetry correlation.
    pub launch_id: u64,
}

/// A backend's per-launch compilation artifact, opaque to the device.
/// Backends downcast it back in [`ExecBackend::run_warp`].
pub struct Prepared(Option<Arc<dyn Any + Send + Sync>>);

impl Prepared {
    /// No artifact (interpretation straight off the AST).
    pub fn none() -> Self {
        Prepared(None)
    }

    /// Wrap a backend artifact.
    pub fn new<T: Any + Send + Sync>(artifact: Arc<T>) -> Self {
        Prepared(Some(artifact))
    }

    /// Downcast back to the concrete artifact type.
    ///
    /// # Panics
    /// Panics if no artifact was prepared or the type differs — both are
    /// backend implementation bugs (`prepare` and `run_warp` belong to the
    /// same impl).
    pub fn get<T: Any>(&self) -> &T {
        self.0
            .as_deref()
            .expect("backend prepared no artifact")
            .downcast_ref::<T>()
            .expect("backend artifact type mismatch")
    }
}

/// One execution engine behind a uniform interface. Implementations must be
/// observationally equivalent (stats, traps, hooks, faults, outputs) and
/// stateless (`&self`; all launch state lives in [`WarpCtx`]), so a single
/// `&'static` instance serves all launches on all threads.
pub trait ExecBackend: Sync {
    /// Which engine this backend implements.
    fn engine(&self) -> ExecEngine;

    /// Per-launch preparation (compilation through the build caches).
    fn prepare(&self, kernel: &KernelDef, cfg: &DeviceConfig) -> Prepared;

    /// Execute one warp to completion.
    fn run_warp(
        &self,
        prepared: &Prepared,
        kernel: &KernelDef,
        ctx: WarpCtx<'_>,
    ) -> Result<(), ExecErr>;
}

/// The tree-walking reference interpreter (no compilation).
pub struct TreeWalkBackend;

impl ExecBackend for TreeWalkBackend {
    fn engine(&self) -> ExecEngine {
        ExecEngine::TreeWalk
    }

    fn prepare(&self, _kernel: &KernelDef, _cfg: &DeviceConfig) -> Prepared {
        Prepared::none()
    }

    fn run_warp(
        &self,
        _prepared: &Prepared,
        kernel: &KernelDef,
        ctx: WarpCtx<'_>,
    ) -> Result<(), ExecErr> {
        WarpExec::new(
            kernel,
            ctx.cfg,
            ctx.global,
            ctx.shared,
            ctx.runtime,
            ctx.stats,
            ctx.budget,
            ctx.geom,
            ctx.args,
            ctx.tele,
            ctx.launch_id,
        )
        .run()
    }
}

/// The per-op bytecode VM (compiles through the process-wide build cache).
pub struct BytecodeBackend;

impl ExecBackend for BytecodeBackend {
    fn engine(&self) -> ExecEngine {
        ExecEngine::Bytecode
    }

    fn prepare(&self, kernel: &KernelDef, cfg: &DeviceConfig) -> Prepared {
        Prepared::new(compile_cached(kernel, &cfg.cost))
    }

    fn run_warp(
        &self,
        prepared: &Prepared,
        _kernel: &KernelDef,
        ctx: WarpCtx<'_>,
    ) -> Result<(), ExecErr> {
        let compiled = prepared.get::<CompiledKernel>();
        VmExec::new(
            compiled,
            ctx.cfg,
            ctx.global,
            ctx.shared,
            ctx.runtime,
            ctx.stats,
            ctx.budget,
            ctx.geom,
            ctx.args,
            ctx.tele,
            ctx.launch_id,
        )
        .run()
    }
}

/// The batch tier: the bytecode VM plus the lane-blocked region fast path.
pub struct BatchBackend;

impl ExecBackend for BatchBackend {
    fn engine(&self) -> ExecEngine {
        ExecEngine::Batch
    }

    fn prepare(&self, kernel: &KernelDef, cfg: &DeviceConfig) -> Prepared {
        Prepared::new(compile_batch_cached(kernel, &cfg.cost))
    }

    fn run_warp(
        &self,
        prepared: &Prepared,
        _kernel: &KernelDef,
        ctx: WarpCtx<'_>,
    ) -> Result<(), ExecErr> {
        let bc = prepared.get::<BatchCompiled>();
        VmExec::new(
            &bc.compiled,
            ctx.cfg,
            ctx.global,
            ctx.shared,
            ctx.runtime,
            ctx.stats,
            ctx.budget,
            ctx.geom,
            ctx.args,
            ctx.tele,
            ctx.launch_id,
        )
        .with_batch(&bc.batch)
        .run()
    }
}

impl ExecEngine {
    /// The backend implementing this engine — the single remaining
    /// engine-selection point in the simulator.
    pub fn backend(self) -> &'static dyn ExecBackend {
        match self {
            ExecEngine::TreeWalk => &TreeWalkBackend,
            ExecEngine::Bytecode => &BytecodeBackend,
            ExecEngine::Batch => &BatchBackend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_roundtrips_engine() {
        for e in ExecEngine::ALL {
            assert_eq!(e.backend().engine(), e);
        }
    }

    #[test]
    #[should_panic(expected = "prepared no artifact")]
    fn prepared_none_panics_on_get() {
        Prepared::none().get::<CompiledKernel>();
    }
}
