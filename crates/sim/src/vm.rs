//! The bytecode VM: warp-lockstep execution of compiled kernels.
//!
//! [`VmExec`] is the fast sibling of [`crate::interp::WarpExec`]. It runs the
//! flat register bytecode produced by `hauberk-kir::lower` with **bit-exact**
//! semantics — same charge ordering, same trap ordering, same producer-tag
//! plumbing for dual-issue pairing, same hook and fault windows, same
//! `ExecStats` — which the differential property suite at the workspace root
//! enforces against the tree walker on every CI run.
//!
//! ## Raw register file
//!
//! Where the tree walker allocates a `Vec<Value>` per expression node, the VM
//! works in one flat `Vec<u32>` (register-major, one word per lane) holding
//! each value's bit pattern (`Value::to_bits`). It can do this because KIR is
//! statically typed and every way a register changes at runtime preserves its
//! static type:
//!
//! * ordinary ops write results whose type the validator fixed at build time;
//! * injected faults go through `Value::xor_bits`, which flips bits but
//!   keeps the variant (`Bool` corruption is masked to bit 0, mirroring
//!   `xor_bits`' `& 1`);
//! * hook runtimes mutate their target only via `xor_bits` (all bundled
//!   runtimes do; a hypothetical runtime that *replaced* a value with one of
//!   a different type would diverge from the tree walker and is unsupported).
//!
//! So the lowering annotates every op with its operands' static types
//! ([`Op::Bin::ta`], [`Op::Load::elem`], ...), and the hot lane loops run
//! directly on `u32` words — no 16-byte enum copies, no per-lane tag
//! dispatch, no nested `Vec` indexing. `Bool` registers maintain a `0/1`
//! invariant (exactly `Value::to_bits` of a `Bool`), and pointer registers
//! hold only the address (space and element type are static).
//!
//! Rare paths — hook dispatch, the loop-check fault window, and uncommon
//! op/type combinations — materialize typed [`Value`] views on demand and
//! delegate to the *same* helper functions the tree walker uses
//! (`bin_value`, `math_value`, ... — crate-private in `interp`), so their
//! semantics cannot drift.
//!
//! ## Control flow
//!
//! Structured control flow runs on a small frame stack (one frame per open
//! `if` or loop) driven by the jump targets baked into the bytecode. The
//! protocol relies on the lowering's *join invariant* (see
//! `hauberk-kir::lower`): ordinary instructions always execute with a
//! non-empty mask; when every active lane leaves a path (`break`, an `if`
//! with no survivors), control jumps through a `join_pc` chain of
//! terminator-style ops ([`Op::EndArm`], [`Op::LoopNext`], [`Op::Halt`]) that
//! tolerate an empty mask. That is what keeps cycle charges identical to a
//! walker that simply never visits dead statements.
//!
//! The VM requires kernels that pass `hauberk_kir::validate::validate_kernel`
//! (lowering already panics on most invalid forms); on ill-typed kernels the
//! tree walker raises `IllegalInstruction` traps that the static annotations
//! here cannot reproduce.

use crate::bytecode::CompiledKernel;
use crate::config::DeviceConfig;
use crate::hooks::{HookCtx, HookRuntime, LoopCheckCtx};
use crate::interp::{
    bin_class, bin_value, builtin_lanes, cast_value, charge_cycles, charge_mem_op, charge_op,
    lanes, math_value, un_value, warp_initial_mask, ExecErr, Pipe, Tag, WarpGeom,
};
use crate::memory::MemRegion;
use crate::outcome::TrapReason;
use crate::stats::{ExecStats, OpClass};
use crate::vm_batch::{
    run_micro_ops, sorted_segment_count, table_idx, BatchKernel, ChargeEntry, NO_REGION,
};
use hauberk_kir::batch::TagSrc;
use hauberk_kir::lower::{Op, Reg, NO_REG};
use hauberk_kir::{BinOp, MathFn, MemSpace, PrimTy, PtrVal, Ty, UnOp, Value};
use hauberk_telemetry::{Event, Telemetry};

/// Reconstruct a typed [`Value`] from a raw register word. Exact inverse of
/// `Value::to_bits` given the static type (`Bool` masks to bit 0 like
/// `Value::from_bits`; pointers carry their static space/element type).
#[inline(always)]
fn value_of(ty: Ty, raw: u32) -> Value {
    match ty {
        Ty::Prim(p) => Value::from_bits(p, raw),
        Ty::Ptr { space, elem } => Value::Ptr(PtrVal {
            space,
            addr: raw,
            elem,
        }),
    }
}

/// Raw-word equivalent of `as_index` for a statically-typed integer index.
#[inline(always)]
fn index_of(ty: PrimTy, raw: u32) -> i64 {
    match ty {
        PrimTy::I32 => raw as i32 as i64,
        PrimTy::U32 => raw as i64,
        // `Bool` lanes are 0/1 by invariant; `& 1` mirrors `from_bits`.
        PrimTy::Bool => (raw & 1) as i64,
        // Unreachable on validated kernels (the tree walker would trap).
        PrimTy::F32 => 0,
    }
}

/// `dst[l] = f(src[l])` over the active lanes.
#[inline(always)]
fn map1(
    regs: &mut [u32],
    w: usize,
    full: u32,
    mask: u32,
    d: usize,
    s: usize,
    f: impl Fn(u32) -> u32,
) {
    let (db, sb) = (d * w, s * w);
    assert!(db + w <= regs.len() && sb + w <= regs.len());
    if mask == full {
        for l in 0..w {
            regs[db + l] = f(regs[sb + l]);
        }
    } else {
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            regs[db + l] = f(regs[sb + l]);
        }
    }
}

/// `dst[l] = f(a[l], b[l])` over the active lanes.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn map2(
    regs: &mut [u32],
    w: usize,
    full: u32,
    mask: u32,
    d: usize,
    a: usize,
    b: usize,
    f: impl Fn(u32, u32) -> u32,
) {
    let (db, ab, bb) = (d * w, a * w, b * w);
    assert!(db + w <= regs.len() && ab + w <= regs.len() && bb + w <= regs.len());
    if mask == full {
        for l in 0..w {
            regs[db + l] = f(regs[ab + l], regs[bb + l]);
        }
    } else {
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            regs[db + l] = f(regs[ab + l], regs[bb + l]);
        }
    }
}

/// Fallible [`map1`]: lanes run in ascending order, the first trap wins
/// (matching the tree walker's lane order).
#[inline(always)]
fn try_map1(
    regs: &mut [u32],
    w: usize,
    full: u32,
    mask: u32,
    d: usize,
    s: usize,
    f: impl Fn(u32) -> Result<u32, TrapReason>,
) -> Result<(), TrapReason> {
    let (db, sb) = (d * w, s * w);
    if mask == full {
        for l in 0..w {
            regs[db + l] = f(regs[sb + l])?;
        }
    } else {
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            regs[db + l] = f(regs[sb + l])?;
        }
    }
    Ok(())
}

/// Fallible [`map2`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn try_map2(
    regs: &mut [u32],
    w: usize,
    full: u32,
    mask: u32,
    d: usize,
    a: usize,
    b: usize,
    f: impl Fn(u32, u32) -> Result<u32, TrapReason>,
) -> Result<(), TrapReason> {
    let (db, ab, bb) = (d * w, a * w, b * w);
    if mask == full {
        for l in 0..w {
            regs[db + l] = f(regs[ab + l], regs[bb + l])?;
        }
    } else {
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            regs[db + l] = f(regs[ab + l], regs[bb + l])?;
        }
    }
    Ok(())
}

/// Typed fast-path lane loops for [`Op::Bin`]. Every arm computes exactly
/// what [`bin_value`] computes for that (type, op) pair, on raw words; any
/// combination without a dedicated arm falls back to [`bin_value`] itself.
#[allow(clippy::too_many_arguments)]
fn bin_lanes(
    regs: &mut [u32],
    w: usize,
    full: u32,
    mask: u32,
    op: BinOp,
    ta: Ty,
    tb: Ty,
    d: usize,
    a: usize,
    b: usize,
    strict: bool,
) -> Result<(), TrapReason> {
    use BinOp::*;
    use PrimTy::*;
    macro_rules! m2 {
        ($f:expr) => {{
            map2(regs, w, full, mask, d, a, b, $f);
            return Ok(());
        }};
    }
    // f32 lane helpers: operate on the float interpretation, store the bits.
    macro_rules! ff {
        ($f:expr) => {
            m2!(|x, y| {
                let f: fn(f32, f32) -> f32 = $f;
                f(f32::from_bits(x), f32::from_bits(y)).to_bits()
            })
        };
    }
    macro_rules! fc {
        ($f:expr) => {
            m2!(|x, y| {
                let f: fn(f32, f32) -> bool = $f;
                f(f32::from_bits(x), f32::from_bits(y)) as u32
            })
        };
    }
    macro_rules! ii {
        ($f:expr) => {
            m2!(|x, y| {
                let f: fn(i32, i32) -> i32 = $f;
                f(x as i32, y as i32) as u32
            })
        };
    }
    macro_rules! ic {
        ($f:expr) => {
            m2!(|x, y| {
                let f: fn(i32, i32) -> bool = $f;
                f(x as i32, y as i32) as u32
            })
        };
    }
    match (ta, op) {
        (Ty::Prim(F32), Add) => ff!(|x, y| x + y),
        (Ty::Prim(F32), Sub) => ff!(|x, y| x - y),
        (Ty::Prim(F32), Mul) => ff!(|x, y| x * y),
        (Ty::Prim(F32), Div) => ff!(|x, y| x / y),
        (Ty::Prim(F32), Rem) => ff!(|x, y| x % y),
        (Ty::Prim(F32), Lt) => fc!(|x, y| x < y),
        (Ty::Prim(F32), Le) => fc!(|x, y| x <= y),
        (Ty::Prim(F32), Gt) => fc!(|x, y| x > y),
        (Ty::Prim(F32), Ge) => fc!(|x, y| x >= y),
        // f32 equality is bitwise in `bin_value` — raw comparison is exact.
        (Ty::Prim(F32), Eq) => m2!(|x, y| (x == y) as u32),
        (Ty::Prim(F32), Ne) => m2!(|x, y| (x != y) as u32),

        (Ty::Prim(I32), Add) => ii!(|x, y| x.wrapping_add(y)),
        (Ty::Prim(I32), Sub) => ii!(|x, y| x.wrapping_sub(y)),
        (Ty::Prim(I32), Mul) => ii!(|x, y| x.wrapping_mul(y)),
        (Ty::Prim(I32), Div) | (Ty::Prim(I32), Rem) => {
            try_map2(regs, w, full, mask, d, a, b, |x, y| {
                let (x, y) = (x as i32, y as i32);
                if y == 0 {
                    if strict {
                        return Err(TrapReason::IntDivByZero);
                    }
                    return Ok(0);
                }
                Ok(if op == Div {
                    x.wrapping_div(y) as u32
                } else {
                    x.wrapping_rem(y) as u32
                })
            })
        }
        (Ty::Prim(I32), And) => m2!(|x, y| x & y),
        (Ty::Prim(I32), Or) => m2!(|x, y| x | y),
        (Ty::Prim(I32), Xor) => m2!(|x, y| x ^ y),
        (Ty::Prim(I32), Shl) => ii!(|x, y| x.wrapping_shl(y as u32 & 31)),
        (Ty::Prim(I32), Shr) => ii!(|x, y| x.wrapping_shr(y as u32 & 31)),
        (Ty::Prim(I32), Lt) => ic!(|x, y| x < y),
        (Ty::Prim(I32), Le) => ic!(|x, y| x <= y),
        (Ty::Prim(I32), Gt) => ic!(|x, y| x > y),
        (Ty::Prim(I32), Ge) => ic!(|x, y| x >= y),
        (Ty::Prim(I32), Eq) => m2!(|x, y| (x == y) as u32),
        (Ty::Prim(I32), Ne) => m2!(|x, y| (x != y) as u32),

        (Ty::Prim(U32), Add) => m2!(|x, y| x.wrapping_add(y)),
        (Ty::Prim(U32), Sub) => m2!(|x, y| x.wrapping_sub(y)),
        (Ty::Prim(U32), Mul) => m2!(|x, y| x.wrapping_mul(y)),
        (Ty::Prim(U32), Div) | (Ty::Prim(U32), Rem) => {
            try_map2(regs, w, full, mask, d, a, b, |x, y| {
                let r = if op == Div {
                    x.checked_div(y)
                } else {
                    x.checked_rem(y)
                };
                match r {
                    Some(v) => Ok(v),
                    None if strict => Err(TrapReason::IntDivByZero),
                    None => Ok(0),
                }
            })
        }
        (Ty::Prim(U32), And) => m2!(|x, y| x & y),
        (Ty::Prim(U32), Or) => m2!(|x, y| x | y),
        (Ty::Prim(U32), Xor) => m2!(|x, y| x ^ y),
        (Ty::Prim(U32), Shl) => m2!(|x, y| x.wrapping_shl(y & 31)),
        (Ty::Prim(U32), Shr) => m2!(|x, y| x.wrapping_shr(y & 31)),
        (Ty::Prim(U32), Lt) => m2!(|x, y| (x < y) as u32),
        (Ty::Prim(U32), Le) => m2!(|x, y| (x <= y) as u32),
        (Ty::Prim(U32), Gt) => m2!(|x, y| (x > y) as u32),
        (Ty::Prim(U32), Ge) => m2!(|x, y| (x >= y) as u32),
        (Ty::Prim(U32), Eq) => m2!(|x, y| (x == y) as u32),
        (Ty::Prim(U32), Ne) => m2!(|x, y| (x != y) as u32),

        // Bool lanes hold 0/1 by invariant, so bitwise ops match `bin_value`.
        (Ty::Prim(Bool), LAnd) | (Ty::Prim(Bool), And) => m2!(|x, y| x & y),
        (Ty::Prim(Bool), LOr) | (Ty::Prim(Bool), Or) => m2!(|x, y| x | y),
        (Ty::Prim(Bool), Xor) => m2!(|x, y| x ^ y),
        (Ty::Prim(Bool), Eq) => m2!(|x, y| (x == y) as u32),
        (Ty::Prim(Bool), Ne) => m2!(|x, y| (x != y) as u32),

        // Pointer arithmetic: `addr + index * elem_size`, exactly
        // `PtrVal::offset_elems` over `as_index`.
        (Ty::Ptr { elem, .. }, Add) | (Ty::Ptr { elem, .. }, Sub) if matches!(tb, Ty::Prim(p) if p.is_integer()) =>
        {
            let Ty::Prim(it) = tb else { unreachable!() };
            let esz = elem.size_bytes() as i64;
            let neg = op == Sub;
            m2!(move |x, y| {
                let mut i = index_of(it, y);
                if neg {
                    i = -i;
                }
                (x as i64).wrapping_add(i.wrapping_mul(esz)) as u32
            })
        }
        // Pointer equality compares the full `PtrVal`; space/elem are static,
        // so only the address part needs a runtime comparison.
        (Ty::Ptr { space, elem }, Eq) | (Ty::Ptr { space, elem }, Ne)
            if matches!(tb, Ty::Ptr { .. }) =>
        {
            let Ty::Ptr {
                space: s2,
                elem: e2,
            } = tb
            else {
                unreachable!()
            };
            let stat = space == s2 && elem == e2;
            let want = op == Eq;
            m2!(move |x, y| ((stat && x == y) == want) as u32)
        }

        // Anything else (ill-typed mixes the validator rejects): delegate to
        // the reference implementation so traps match the tree walker.
        _ => try_map2(regs, w, full, mask, d, a, b, |x, y| {
            bin_value(op, value_of(ta, x), value_of(tb, y), strict).map(|v| v.to_bits())
        }),
    }
}

/// Typed fast-path lane loops for [`Op::Un`], with the same fallback scheme
/// as [`bin_lanes`].
#[allow(clippy::too_many_arguments)]
fn un_lanes(
    regs: &mut [u32],
    w: usize,
    full: u32,
    mask: u32,
    op: UnOp,
    ty: PrimTy,
    d: usize,
    s: usize,
) -> Result<(), TrapReason> {
    match (op, ty) {
        (UnOp::Neg, PrimTy::F32) => {
            map1(regs, w, full, mask, d, s, |x| {
                (-f32::from_bits(x)).to_bits()
            });
            Ok(())
        }
        (UnOp::Neg, PrimTy::I32) => {
            map1(regs, w, full, mask, d, s, |x| {
                (x as i32).wrapping_neg() as u32
            });
            Ok(())
        }
        (UnOp::Not, PrimTy::Bool) => {
            map1(regs, w, full, mask, d, s, |x| x ^ 1);
            Ok(())
        }
        (UnOp::BitNot, PrimTy::I32) | (UnOp::BitNot, PrimTy::U32) => {
            map1(regs, w, full, mask, d, s, |x| !x);
            Ok(())
        }
        _ => try_map1(regs, w, full, mask, d, s, |x| {
            un_value(op, Value::from_bits(ty, x)).map(|v| v.to_bits())
        }),
    }
}

/// One open structured-control-flow construct.
#[derive(Debug)]
enum Frame {
    /// An `if` whose arms are still executing.
    If {
        /// Lanes that must run the else-arm.
        e_mask: u32,
        /// First pc of the else-arm.
        else_pc: u32,
        /// First pc after the `if`.
        end_pc: u32,
        /// Lanes that reached the end of an arm (reconverge here).
        joined: u32,
        /// Whether the else-arm has been dispatched (or was empty).
        else_done: bool,
    },
    /// A loop between entry and exit.
    Loop {
        /// Lanes still iterating.
        live: u32,
        /// Mask at loop entry (restored on exit).
        entry: u32,
        /// Completed iterations (reported to the `loop_check` hook).
        iteration: u64,
        /// Lanes that took `break` this iteration.
        brk: u32,
    },
}

/// Executes one warp of compiled bytecode.
pub struct VmExec<'a> {
    compiled: &'a CompiledKernel,
    cfg: &'a DeviceConfig,
    global: &'a mut MemRegion,
    shared: &'a mut MemRegion,
    runtime: &'a mut dyn HookRuntime,
    stats: &'a mut ExecStats,
    /// Remaining cycle budget shared across the launch.
    budget: &'a mut u64,
    geom: WarpGeom,
    width: usize,
    /// All-lanes mask for this warp width (fast-path selector).
    full: u32,
    /// The flat raw register file: `regs[reg * width + lane]` holds
    /// `Value::to_bits` of that lane's value. Layout per
    /// [`hauberk_kir::lower::LoweredKernel`]: variables, literal pool,
    /// builtin pool, temporaries.
    regs: Vec<u32>,
    /// Producer tag of the value currently held by each register.
    producer: Vec<Tag>,
    pipe: Pipe,
    loop_depth: u32,
    /// Per-lane effective-address scratch (avoids a per-access alloc).
    addrs: Vec<u32>,
    /// Scratch for materialized hook-argument views (one `Vec<Value>` per
    /// argument, reused across dispatches).
    marg: Vec<Vec<Value>>,
    /// Scratch for the materialized hook-target / loop-iterator view.
    mtgt: Vec<Value>,
    /// The batch tier's region plan, when running as the batch engine
    /// (`None` = plain per-op bytecode execution).
    batch: Option<&'a BatchKernel>,
    /// Scratch for region producer-tag write-back (two-phase, alias-safe).
    wb_scratch: Vec<Tag>,
    tele: &'a Telemetry,
    launch_id: u64,
}

impl<'a> VmExec<'a> {
    /// Build a warp executor over `compiled`. `args` are the kernel parameter
    /// values, broadcast to all lanes.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        compiled: &'a CompiledKernel,
        cfg: &'a DeviceConfig,
        global: &'a mut MemRegion,
        shared: &'a mut MemRegion,
        runtime: &'a mut dyn HookRuntime,
        stats: &'a mut ExecStats,
        budget: &'a mut u64,
        geom: WarpGeom,
        args: &[Value],
        tele: &'a Telemetry,
        launch_id: u64,
    ) -> Self {
        let lk = &compiled.lowered;
        assert_eq!(args.len(), lk.n_params, "kernel argument count");
        let width = cfg.warp_width as usize;
        let n_regs = lk.n_regs() as usize;
        let mut regs = vec![0u32; n_regs * width];
        for (i, _decl) in lk.vars.iter().enumerate() {
            if i < lk.n_params {
                let bits = args[i].to_bits();
                regs[i * width..(i + 1) * width].fill(bits);
            }
            // Non-parameter variables: `Value::zero_of(ty).to_bits()` is 0
            // for every type, which the file already holds.
        }
        let cb = lk.const_base() as usize;
        for (i, c) in lk.consts.iter().enumerate() {
            regs[(cb + i) * width..(cb + i + 1) * width].fill(c.to_bits());
        }
        let bb = lk.builtin_base() as usize;
        for (i, b) in lk.builtins.iter().enumerate() {
            for (l, v) in builtin_lanes(*b, &geom, cfg.warp_width).iter().enumerate() {
                regs[(bb + i) * width + l] = v.to_bits();
            }
        }
        VmExec {
            compiled,
            cfg,
            global,
            shared,
            runtime,
            stats,
            budget,
            geom,
            width,
            full: if width >= 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            },
            producer: vec![0; n_regs],
            regs,
            pipe: Pipe::new(),
            loop_depth: 0,
            addrs: vec![0; width],
            marg: Vec::new(),
            mtgt: Vec::new(),
            batch: None,
            wb_scratch: Vec::new(),
            tele,
            launch_id,
        }
    }

    /// Attach a batch-tier region plan: full-mask region fast paths (and the
    /// batch-only memory/loop-check shortcuts) activate, turning this
    /// executor into the batch engine. The plan must have been built from
    /// the same `CompiledKernel` and cost model.
    pub fn with_batch(mut self, batch: &'a BatchKernel) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Run the warp to completion.
    pub fn run(&mut self) -> Result<(), ExecErr> {
        let mask = warp_initial_mask(&self.geom, self.cfg.warp_width);
        if mask == 0 {
            return Ok(());
        }
        self.stats.warps += 1;
        self.exec(mask)
    }

    fn charge(&mut self, class: OpClass, dep_tags: [Tag; 2]) -> Result<Tag, ExecErr> {
        charge_op(
            &mut self.pipe,
            self.stats,
            self.budget,
            self.loop_depth,
            &self.cfg.cost,
            class,
            dep_tags,
        )
    }

    fn add_cycles(&mut self, c: u64) -> Result<(), ExecErr> {
        charge_cycles(self.stats, self.budget, self.loop_depth, c)
    }

    fn charge_mem(&mut self, mask: u32, deps: [Tag; 2]) -> Result<(), ExecErr> {
        // Batch tier: lane addresses are almost always non-decreasing
        // (coalesced access), in which case the distinct-segment count falls
        // out of one pass with no sort. Charges are identical to
        // `charge_mem_op` (same count, same order of stat updates).
        if self.batch.is_some() {
            if let Some(nseg) =
                sorted_segment_count(&self.addrs, mask, self.width, self.cfg.cost.segment_bytes)
            {
                self.stats.mem_segments += nseg;
                self.charge(OpClass::Mem, deps)?;
                return self.add_cycles((nseg - 1) * self.cfg.cost.mem_segment_extra);
            }
        }
        charge_mem_op(
            &mut self.pipe,
            self.stats,
            self.budget,
            self.loop_depth,
            &self.cfg.cost,
            &self.addrs,
            mask,
            self.width,
            deps,
        )
    }

    /// Compute per-lane effective addresses into the scratch buffer (exactly
    /// `PtrVal::offset_elems(as_index(idx))` on raw words).
    fn effective_addrs(&mut self, ptr: Reg, idx: Reg, elem: PrimTy, idx_ty: PrimTy, mask: u32) {
        let w = self.width;
        let (pb, ib) = (ptr as usize * w, idx as usize * w);
        let esz = elem.size_bytes() as i64;
        for l in lanes(mask, w) {
            let p = self.regs[pb + l];
            let i = index_of(idx_ty, self.regs[ib + l]);
            self.addrs[l] = (p as i64).wrapping_add(i.wrapping_mul(esz)) as u32;
        }
    }

    /// Materialize a full-width typed view of register `r` into `self.mtgt`.
    fn materialize(&mut self, r: Reg, ty: Ty) {
        let w = self.width;
        let base = r as usize * w;
        self.mtgt.clear();
        self.mtgt.extend(
            self.regs[base..base + w]
                .iter()
                .map(|&raw| value_of(ty, raw)),
        );
    }

    /// Write the (possibly runtime-mutated) view in `self.mtgt` back to
    /// register `r` as raw words.
    fn writeback(&mut self, r: Reg) {
        let w = self.width;
        let base = r as usize * w;
        for (l, v) in self.mtgt.iter().take(w).enumerate() {
            self.regs[base + l] = v.to_bits();
        }
    }

    /// The scheduler-fault window at a loop-condition check (mirrors
    /// `WarpExec::loop_check_hook`).
    fn loop_check(
        &mut self,
        loop_id: u32,
        active: u32,
        iteration: u64,
        iter: Reg,
        cond_mask: &mut u32,
    ) {
        let geom = self.geom;
        let warp_width = self.cfg.warp_width;
        let first_thread = geom.first_thread(warp_width);
        let cycles = self.stats.work_cycles;
        self.tele.emit_hot_with(|| Event::HookDispatch {
            launch_id: self.launch_id,
            kind: "loop_check",
            site: loop_id as u64,
            block: geom.block_lin(),
            warp: geom.warp_id,
            cycles,
        });
        let has_iter = iter != NO_REG;
        // Batch tier: a passive runtime neither reads nor mutates the
        // iterator or the decision mask, so materializing a typed view is
        // pure waste. The producer-tag invalidation below still happens
        // (both engines do it unconditionally), keeping pairing identical.
        if self.batch.is_some() && self.runtime.is_passive() {
            if has_iter {
                self.producer[iter as usize] = 0;
            }
            return;
        }
        if has_iter {
            let ty = self.compiled.lowered.vars[iter as usize].ty;
            self.materialize(iter, ty);
        }
        {
            let iter_slot = has_iter.then_some(&mut self.mtgt);
            let mut ctx = LoopCheckCtx {
                block_id: geom.block_lin(),
                warp_id: geom.warp_id,
                active,
                warp_width,
                first_thread,
                cycles,
                iteration,
                iter_var: iter_slot,
                cond_mask,
            };
            self.runtime.on_loop_check(loop_id, &mut ctx);
        }
        if has_iter {
            // The runtime may have corrupted the iterator (via `xor_bits`,
            // which preserves its type); write the view back and invalidate
            // its producer tag so pairing decisions stay conservative.
            self.writeback(iter);
            self.producer[iter as usize] = 0;
        }
    }

    /// Dispatch hook `hook` (mirrors `WarpExec::exec_hook`; the argument
    /// registers were evaluated — and their inactive lanes zeroed — by the
    /// preceding instructions).
    fn dispatch_hook(&mut self, hook: u32, base: Reg, n: u32, mask: u32) -> Result<(), ExecErr> {
        let compiled = self.compiled;
        let h = &compiled.lowered.hooks[hook as usize];
        self.add_cycles(compiled.hook_costs[hook as usize])?;
        self.stats.hooks += 1;

        let geom = self.geom;
        let warp_width = self.cfg.warp_width;
        let first_thread = geom.first_thread(warp_width);
        let cycles = self.stats.work_cycles;
        self.tele.emit_hot_with(|| Event::HookDispatch {
            launch_id: self.launch_id,
            kind: compiled.hook_names[hook as usize],
            site: h.site as u64,
            block: geom.block_lin(),
            warp: geom.warp_id,
            cycles,
        });
        // Batch tier: a passive runtime ignores the hook entirely — skip
        // materializing argument/target views. Charges, stats, telemetry
        // (above) and the target producer invalidation (the runtime "may
        // have" corrupted it as far as pairing is concerned) still happen,
        // and `register_corruption` is `None` by the passivity contract.
        if self.batch.is_some() && self.runtime.is_passive() {
            if let Some(v) = h.target {
                self.producer[v as usize] = 0;
            }
            return Ok(());
        }
        let lk = &compiled.lowered;
        let n_vars = lk.n_vars() as usize;
        let w = self.width;
        // Materialize typed argument views. Active lanes reconstruct the
        // static type; inactive lanes are `Value::I32(0)` exactly like the
        // tree walker's `zero_inactive`.
        let arg_tys = &lk.hook_arg_tys[hook as usize];
        while self.marg.len() < n as usize {
            self.marg.push(vec![Value::I32(0); w]);
        }
        for (j, &ty) in arg_tys.iter().enumerate() {
            let rb = (base as usize + j) * w;
            let slot = &mut self.marg[j];
            for (l, s) in slot.iter_mut().enumerate().take(w) {
                *s = if mask & (1 << l) != 0 {
                    value_of(ty, self.regs[rb + l])
                } else {
                    Value::I32(0)
                };
            }
        }
        // Materialize the target variable (full width, stale lanes included,
        // like the tree walker which hands over the raw register).
        if let Some(v) = h.target {
            let ty = lk.vars[v as usize].ty;
            self.materialize(v, ty);
        }
        {
            let target_slot = h.target.map(|_| &mut self.mtgt);
            let mut ctx = HookCtx {
                block_id: geom.block_lin(),
                warp_id: geom.warp_id,
                active: mask,
                warp_width,
                first_thread,
                cycles,
                args: &self.marg[..n as usize],
                target: target_slot,
            };
            self.runtime.on_hook(h, &mut ctx);
        }
        if let Some(v) = h.target {
            self.writeback(v);
        }
        // Register-file faults: the runtime may corrupt any live variable at
        // this point (the value sits in a register between uses). Mirrors
        // `Value::xor_bits`: a raw XOR, masked to bit 0 for `Bool`.
        if let Some(rc) = self.runtime.register_corruption(h, first_thread, mask) {
            if rc.lane < warp_width && mask & (1 << rc.lane) != 0 && (rc.var as usize) < n_vars {
                let i = rc.var as usize * w + rc.lane as usize;
                let mut nv = self.regs[i] ^ rc.mask;
                if lk.vars[rc.var as usize].ty == Ty::BOOL {
                    nv &= 1;
                }
                self.regs[i] = nv;
                self.producer[rc.var as usize] = 0;
            }
        }
        // The hook may have corrupted its target variable; drop its producer
        // tag so later pairing decisions stay conservative.
        if let Some(v) = h.target {
            self.producer[v as usize] = 0;
        }
        Ok(())
    }

    /// Execute one batch region as a block: look up the charge outcome for
    /// the current pipeline state, apply it, run the lane-blocked data
    /// plane, and replay the producer-tag write-back program. Returns the pc
    /// to resume at, or `None` when the charge might exceed the remaining
    /// budget (the caller falls back to per-op dispatch, which reproduces
    /// the exact hang semantics).
    fn run_region(&mut self, bk: &'a BatchKernel, ri: u32) -> Option<usize> {
        let r = &bk.regions[ri as usize];
        let entry = if r.n_charges == 0 {
            ChargeEntry::default()
        } else {
            // The only dynamic input: whether the first charging op consumes
            // the previous op's result (entry registers written in the
            // region shadow nothing — `first_dep_entries` are region inputs).
            let dep0 = self.pipe.last_tag != 0
                && r.first_dep_entries
                    .iter()
                    .any(|&e| self.producer[e as usize] == self.pipe.last_tag);
            r.table[table_idx(dep0, self.pipe.last_class, self.pipe.last_paired)]
        };
        if *self.budget < entry.cycles {
            return None;
        }
        // Cycle plane: exactly the sum of what per-op `charge_op` calls
        // would have charged (each per-op budget check passes because the
        // running budget only shrinks and the total fits).
        self.stats.work_cycles += entry.cycles;
        if self.loop_depth > 0 {
            self.stats.loop_cycles += entry.cycles;
        }
        *self.budget -= entry.cycles;
        self.stats.paired_ops += entry.paired;
        for i in 0..5 {
            self.stats.class_counts[i] += r.class_deltas[i];
        }
        let tag0 = self.pipe.next_tag;
        if r.n_charges > 0 {
            self.pipe.next_tag += r.n_charges;
            self.pipe.last_tag = self.pipe.next_tag - 1;
            self.pipe.last_class = Some(r.exit_class);
            self.pipe.last_paired = entry.exit_paired;
        }
        // Data plane.
        let w = self.width;
        run_micro_ops(&mut self.regs, w, w, &r.micro);
        // Tag plane: two-phase write-back so an `Entry(e)` source reads e's
        // tag from *before* the region even if e itself is written back.
        self.wb_scratch.clear();
        for &(_, src) in &r.writeback {
            self.wb_scratch.push(match src {
                TagSrc::Zero => 0,
                TagSrc::Entry(e) => self.producer[e as usize],
                TagSrc::Charge(c) => tag0 + c as Tag,
            });
        }
        for (i, &(reg, _)) in r.writeback.iter().enumerate() {
            self.producer[reg as usize] = self.wb_scratch[i];
        }
        Some(r.end as usize)
    }

    /// The dispatch loop.
    fn exec(&mut self, entry_mask: u32) -> Result<(), ExecErr> {
        // Copy the &'a reference out so instruction borrows are independent
        // of the &mut self borrow.
        let code: &'a [Op] = &self.compiled.lowered.code;
        let strict = self.cfg.strict_memory;
        let width = self.width;
        let full = self.full;
        let mut pc: usize = 0;
        let mut mask = entry_mask;
        let mut frames: Vec<Frame> = Vec::with_capacity(8);
        let batch = self.batch;
        loop {
            // Batch tier: at full mask, a region starting here executes as
            // one block (precomputed charges, lane-blocked data plane, tag
            // write-back) — unless its charge might not fit the remaining
            // budget, in which case per-op dispatch below reproduces the
            // exact partial charges of the hang.
            if mask == full {
                if let Some(bk) = batch {
                    let ri = bk.region_at[pc];
                    if ri != NO_REGION {
                        if let Some(next) = self.run_region(bk, ri) {
                            pc = next;
                            continue;
                        }
                    }
                }
            }
            match &code[pc] {
                Op::Lit { dst, v } => {
                    let d = *dst as usize;
                    let bits = v.to_bits();
                    map1(&mut self.regs, width, full, mask, d, d, |_| bits);
                    self.producer[d] = 0;
                    pc += 1;
                }
                Op::Copy { dst, src } | Op::Bits { dst, src } => {
                    // `to_bits` is the identity on raw words, so `bits_of`
                    // is a register copy here.
                    let (d, s) = (*dst as usize, *src as usize);
                    if d != s {
                        map1(&mut self.regs, width, full, mask, d, s, |x| x);
                    }
                    self.producer[d] = self.producer[s];
                    pc += 1;
                }
                Op::Un { op, dst, src, ty } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    let class = match op {
                        UnOp::Neg if *ty == PrimTy::F32 => OpClass::FAlu,
                        _ => OpClass::IAlu,
                    };
                    let tag = self.charge(class, [self.producer[s], 0])?;
                    un_lanes(&mut self.regs, width, full, mask, *op, *ty, d, s)?;
                    self.producer[d] = tag;
                    pc += 1;
                }
                Op::Bin {
                    op,
                    dst,
                    a,
                    b,
                    ta,
                    tb,
                } => {
                    let (d, ra, rb) = (*dst as usize, *a as usize, *b as usize);
                    let class = bin_class(*op, ta.as_prim());
                    let tag = self.charge(class, [self.producer[ra], self.producer[rb]])?;
                    bin_lanes(
                        &mut self.regs,
                        width,
                        full,
                        mask,
                        *op,
                        *ta,
                        *tb,
                        d,
                        ra,
                        rb,
                        strict,
                    )?;
                    self.producer[d] = tag;
                    pc += 1;
                }
                Op::Call1 { f, dst, a, ty } => {
                    let (d, ra) = (*dst as usize, *a as usize);
                    let class = call_class(*f, *ty);
                    let tag = self.charge(class, [self.producer[ra], 0])?;
                    let (f, ty) = (*f, *ty);
                    try_map1(&mut self.regs, width, full, mask, d, ra, |x| {
                        math_value(f, &[Value::from_bits(ty, x)]).map(|v| v.to_bits())
                    })?;
                    self.producer[d] = tag;
                    pc += 1;
                }
                Op::Call2 { f, dst, a, b, ty } => {
                    let (d, ra, rb) = (*dst as usize, *a as usize, *b as usize);
                    let class = call_class(*f, *ty);
                    let tag = self.charge(class, [self.producer[ra], self.producer[rb]])?;
                    let (f, ty) = (*f, *ty);
                    try_map2(&mut self.regs, width, full, mask, d, ra, rb, |x, y| {
                        math_value(f, &[Value::from_bits(ty, x), Value::from_bits(ty, y)])
                            .map(|v| v.to_bits())
                    })?;
                    self.producer[d] = tag;
                    pc += 1;
                }
                Op::Cast { to, from, dst, src } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    let class = if *from == PrimTy::F32 || *to == PrimTy::F32 {
                        OpClass::FAlu
                    } else {
                        OpClass::IAlu
                    };
                    let tag = self.charge(class, [self.producer[s], 0])?;
                    let (to, from) = (*to, *from);
                    try_map1(&mut self.regs, width, full, mask, d, s, |x| {
                        cast_value(to, Value::from_bits(from, x)).map(|v| v.to_bits())
                    })?;
                    self.producer[d] = tag;
                    pc += 1;
                }
                Op::Load {
                    dst,
                    ptr,
                    idx,
                    space,
                    elem,
                    idx_ty,
                } => {
                    let d = *dst as usize;
                    let deps = [self.producer[*ptr as usize], self.producer[*idx as usize]];
                    // `from_bits∘to_bits` is the identity for every element
                    // type except Bool, which masks to bit 0.
                    let vmask = if *elem == PrimTy::Bool { 1 } else { !0u32 };
                    // Batch tier, full mask: a warp-uniform pointer + index
                    // (a broadcast load) touches exactly one address — skip
                    // per-lane address math and the segment scan. Charges
                    // match `charge_mem` on a one-segment address set, and
                    // unallocated-read garbage is a pure function of the
                    // address, so the broadcast is bit-exact.
                    let mut broadcast = false;
                    if batch.is_some() && mask == full {
                        let (pb, ib) = (*ptr as usize * width, *idx as usize * width);
                        let (p0, i0) = (self.regs[pb], self.regs[ib]);
                        // Branchless OR-reduce over both rows: an early-exit
                        // `all()` compiles to a serial compare chain, while
                        // this single fused accumulation vectorizes.
                        let prow = &self.regs[pb..pb + width];
                        let irow = &self.regs[ib..ib + width];
                        let diff = prow
                            .iter()
                            .zip(irow)
                            .fold(0u32, |acc, (&p, &i)| acc | (p ^ p0) | (i ^ i0));
                        if diff == 0 {
                            let addr = (p0 as i64).wrapping_add(
                                index_of(*idx_ty, i0).wrapping_mul(elem.size_bytes() as i64),
                            ) as u32;
                            self.stats.mem_segments += 1;
                            self.charge(OpClass::Mem, deps)?;
                            let region: &MemRegion = match space {
                                MemSpace::Global => self.global,
                                MemSpace::Shared => self.shared,
                            };
                            let word = region.read_word(addr)? & vmask;
                            let db = d * width;
                            self.regs[db..db + width].fill(word);
                            broadcast = true;
                        }
                    }
                    if !broadcast {
                        self.effective_addrs(*ptr, *idx, *elem, *idx_ty, mask);
                        self.charge_mem(mask, deps)?;
                        let region: &mut MemRegion = match space {
                            MemSpace::Global => self.global,
                            MemSpace::Shared => self.shared,
                        };
                        let db = d * width;
                        for l in lanes(mask, width) {
                            self.regs[db + l] = region.read_word(self.addrs[l])? & vmask;
                        }
                    }
                    self.producer[d] = self.pipe.last_tag;
                    pc += 1;
                }
                Op::Store {
                    ptr,
                    idx,
                    val,
                    space,
                    elem,
                    idx_ty,
                } => {
                    let rv = *val as usize;
                    self.effective_addrs(*ptr, *idx, *elem, *idx_ty, mask);
                    let deps = [self.producer[*ptr as usize], self.producer[*idx as usize]];
                    self.charge_mem(mask, deps)?;
                    let region: &mut MemRegion = match space {
                        MemSpace::Global => self.global,
                        MemSpace::Shared => self.shared,
                    };
                    let vb = rv * width;
                    for l in lanes(mask, width) {
                        region.write_word(self.addrs[l], self.regs[vb + l])?;
                    }
                    pc += 1;
                }
                Op::AtomicAdd {
                    ptr,
                    idx,
                    val,
                    space,
                    elem,
                    idx_ty,
                } => {
                    let rv = *val as usize;
                    self.effective_addrs(*ptr, *idx, *elem, *idx_ty, mask);
                    let deps = [self.producer[*ptr as usize], self.producer[*idx as usize]];
                    // Atomics serialize: base + extra per lane.
                    self.charge_mem(mask, deps)?;
                    let lane_count = mask.count_ones() as u64;
                    self.add_cycles(
                        lane_count.saturating_sub(1) * self.cfg.cost.mem_segment_extra,
                    )?;
                    let region: &mut MemRegion = match space {
                        MemSpace::Global => self.global,
                        MemSpace::Shared => self.shared,
                    };
                    let (elem, vb) = (*elem, rv * width);
                    for l in lanes(mask, width) {
                        let addr = self.addrs[l];
                        let old = Value::from_bits(elem, region.read_word(addr)?);
                        let add = Value::from_bits(elem, self.regs[vb + l]);
                        let new = bin_value(BinOp::Add, old, add, strict)?;
                        region.write_word(addr, new.to_bits())?;
                    }
                    pc += 1;
                }
                Op::Sync => {
                    self.stats.syncs += 1;
                    self.add_cycles(self.cfg.cost.sync)?;
                    pc += 1;
                }
                Op::ZeroInactive { base, n } => {
                    for r in *base..*base + *n {
                        let rb = r as usize * width;
                        for l in 0..width {
                            if mask & (1 << l) == 0 {
                                self.regs[rb + l] = 0;
                            }
                        }
                    }
                    pc += 1;
                }
                Op::Hook { hook, base, n } => {
                    self.dispatch_hook(*hook, *base, *n, mask)?;
                    pc += 1;
                }
                Op::IfSplit {
                    cond,
                    else_pc,
                    end_pc,
                } => {
                    let c = *cond as usize;
                    self.charge(OpClass::Ctl, [self.producer[c], 0])?;
                    let cb = c * width;
                    // Conditions are statically Bool (0/1 invariant); same
                    // whole-row fold as LoopTest.
                    let mut t_mask = 0u32;
                    for (l, &v) in self.regs[cb..cb + width].iter().enumerate() {
                        t_mask |= (v & 1) << l;
                    }
                    t_mask &= mask;
                    let e_mask = mask & !t_mask;
                    frames.push(Frame::If {
                        e_mask,
                        else_pc: *else_pc,
                        end_pc: *end_pc,
                        joined: 0,
                        else_done: t_mask == 0,
                    });
                    if t_mask != 0 {
                        mask = t_mask;
                        pc += 1;
                    } else {
                        mask = e_mask;
                        pc = *else_pc as usize;
                    }
                }
                Op::EndArm { join_pc } => {
                    let Some(Frame::If {
                        e_mask,
                        else_pc,
                        end_pc,
                        joined,
                        else_done,
                    }) = frames.last_mut()
                    else {
                        unreachable!("EndArm without an if-frame");
                    };
                    *joined |= mask;
                    if !*else_done {
                        *else_done = true;
                        if *e_mask != 0 {
                            mask = *e_mask;
                            pc = *else_pc as usize;
                            continue;
                        }
                    }
                    let (joined, end_pc) = (*joined, *end_pc);
                    frames.pop();
                    if joined == 0 {
                        mask = 0;
                        pc = *join_pc as usize;
                    } else {
                        mask = joined;
                        pc = end_pc as usize;
                    }
                }
                Op::LoopEnter => {
                    frames.push(Frame::Loop {
                        live: mask,
                        entry: mask,
                        iteration: 0,
                        brk: 0,
                    });
                    self.loop_depth += 1;
                    pc += 1;
                }
                Op::LoopHead => {
                    let Some(Frame::Loop { live, .. }) = frames.last() else {
                        unreachable!("LoopHead without a loop-frame");
                    };
                    mask = *live;
                    pc += 1;
                }
                Op::LoopTest {
                    cond,
                    loop_id,
                    iter,
                    exit_pc,
                } => {
                    let c = *cond as usize;
                    self.charge(OpClass::Ctl, [self.producer[c], 0])?;
                    let cb = c * width;
                    // Whole-row fold (then mask): reads of inactive lanes are
                    // harmless (registers always readable, stale bits masked
                    // off) and the unconditional loop vectorizes where the
                    // per-set-bit walk cannot.
                    let mut cond_mask = 0u32;
                    for (l, &v) in self.regs[cb..cb + width].iter().enumerate() {
                        cond_mask |= (v & 1) << l;
                    }
                    cond_mask &= mask;
                    let iteration = match frames.last() {
                        Some(Frame::Loop { iteration, .. }) => *iteration,
                        _ => unreachable!("LoopTest without a loop-frame"),
                    };
                    // Scheduler-fault window: the runtime may corrupt the
                    // iterator or the decision mask here.
                    self.loop_check(*loop_id, mask, iteration, *iter, &mut cond_mask);
                    let Some(Frame::Loop { live, entry, .. }) = frames.last_mut() else {
                        unreachable!();
                    };
                    *live &= cond_mask;
                    if *live == 0 {
                        mask = *entry;
                        frames.pop();
                        self.loop_depth -= 1;
                        pc = *exit_pc as usize;
                    } else {
                        mask = *live;
                        pc += 1;
                    }
                }
                Op::LoopNext {
                    head_pc,
                    exit_pc,
                    has_step,
                } => {
                    let Some(Frame::Loop {
                        live,
                        entry,
                        iteration,
                        brk,
                    }) = frames.last_mut()
                    else {
                        unreachable!("LoopNext without a loop-frame");
                    };
                    // Lanes that broke leave the loop; continue lanes rejoin.
                    *live &= !*brk;
                    *brk = 0;
                    *iteration += 1;
                    if *live == 0 {
                        mask = *entry;
                        frames.pop();
                        self.loop_depth -= 1;
                        pc = *exit_pc as usize;
                    } else if *has_step {
                        mask = *live;
                        pc += 1;
                    } else {
                        pc = *head_pc as usize;
                    }
                }
                Op::Jump { pc: t } => pc = *t as usize,
                Op::Break { join_pc } => {
                    if let Some(Frame::Loop { brk, .. }) = frames
                        .iter_mut()
                        .rev()
                        .find(|f| matches!(f, Frame::Loop { .. }))
                    {
                        *brk |= mask;
                    }
                    mask = 0;
                    pc = *join_pc as usize;
                }
                Op::Continue { join_pc } => {
                    // Continue lanes stay in the loop's live set and simply
                    // skip to the bottom of the body.
                    mask = 0;
                    pc = *join_pc as usize;
                }
                Op::Halt => break,
            }
        }
        debug_assert!(frames.is_empty(), "unbalanced control frames at halt");
        Ok(())
    }
}

/// Charge class of a math intrinsic (depends on the first argument's static
/// type, which always equals the tree walker's lane type).
pub(crate) fn call_class(f: MathFn, ty: PrimTy) -> OpClass {
    match f {
        MathFn::Abs | MathFn::Min | MathFn::Max => {
            if ty == PrimTy::F32 {
                OpClass::FAlu
            } else {
                OpClass::IAlu
            }
        }
        _ => OpClass::Sfu,
    }
}
