#![warn(missing_docs)]

//! # hauberk-sim — deterministic SIMT GPU simulator
//!
//! The execution substrate for the Hauberk reproduction: a warp-lockstep
//! interpreter for [`hauberk_kir`] kernels with
//!
//! * a **SIMT execution model** — 32-lane warps with an active mask,
//!   structured reconvergence at `if`/`for`/`while`, divergent arms serialized
//!   (both sides charged), per-block shared memory, grid/block launch
//!   geometry;
//! * a **cycle cost model** — per-op-class issue costs (integer ALU, FP unit,
//!   special-function unit, memory, control), *dual-issue pairing* of
//!   consecutive independent operations of different classes (the mechanism
//!   behind the paper's performance observations: duplicated same-class
//!   computation does not pair, cross-class checksum/counter instructions
//!   do), memory-coalescing segment costs, and loop vs. non-loop cycle
//!   attribution (paper Fig. 4);
//! * a **fault surface** — instrumentation hooks dispatched to a pluggable
//!   [`hooks::HookRuntime`] (the four Hauberk library variants implement
//!   this trait), loop-header callbacks for scheduler-fault emulation,
//!   direct memory-word corruption for the graphics experiments, and
//!   crash/hang outcome detection;
//! * a **CPU mode** — the same interpreter with one lane, one SM, and
//!   *strict* page-granularity memory checking, reproducing the paper's
//!   explanation of why CPU programs crash where GPU programs silently
//!   corrupt (§II.A observation 1).
//!
//! ## Memory-protection model
//!
//! In GPU mode (the default), out-of-bounds global/shared accesses **wrap
//! around** the allocated region (silent corruption — the paper: "GPUs do not
//! have a page-granularity memory access permission checking"), while
//! *misaligned* accesses trap (CUDA's `cudaErrorMisalignedAddress`). In CPU
//! (strict) mode, any access beyond the allocation bump point traps, and so
//! does integer division by zero.
//!
//! ## Block/warp scheduling
//!
//! Blocks are executed sequentially in block-id order (deterministically) and
//! assigned round-robin to the configured number of SMs for the *time* model:
//! simulated kernel time is the maximum over SMs of the sum of their blocks'
//! cycles. Warps within a block execute to completion in order;
//! `__syncthreads()` is exact within a warp (lockstep) and the bundled
//! kernels do not rely on inter-warp shared-memory hand-off.

pub mod backend;
pub mod bytecode;
pub mod config;
pub mod device;
pub mod fault;
pub mod hooks;
pub mod interp;
pub mod memory;
pub mod outcome;
pub mod snapshot;
pub mod stats;
pub mod vm;
pub mod vm_batch;

pub use backend::{BatchBackend, BytecodeBackend, ExecBackend, Prepared, TreeWalkBackend, WarpCtx};
pub use bytecode::{compile_cached, disassemble, CompiledKernel};
pub use config::{default_engine, set_default_engine, CostModel, DeviceConfig, ExecEngine};
pub use device::{Device, Launch};
pub use fault::{ArmedFault, FaultSite, MemoryBurst};
pub use hooks::{HookCtx, HookRuntime, LoopCheckCtx, NullRuntime, RegCorruption};
pub use outcome::{LaunchOutcome, TrapReason};
pub use snapshot::{CaptureRun, Snapshot, SnapshotError, Spliced};
pub use stats::{ExecStats, OpClass};
pub use vm_batch::{compile_batch, compile_batch_cached, BatchCompiled, BatchKernel};
