//! Bit-exact device snapshots at block boundaries.
//!
//! Fault-injection campaigns re-execute the same fault-free prefix of a
//! kernel thousands of times: every injection targets one thread, the thread
//! lives in one block, and blocks execute deterministically in block-id
//! order — so everything before the target block is byte-for-byte identical
//! across the whole stratum. A [`Snapshot`] captures the launch's complete
//! mutable state at a block boundary (global memory with the lazy-extent
//! trick preserved, cumulative [`ExecStats`], per-SM cycle tallies, the
//! remaining hang budget) so an injection run can *restore* it and start
//! executing at the target block instead of from thread zero.
//!
//! Three invariants make this sound:
//!
//! 1. **Blocks are the unit of scheduling.** The device runs blocks
//!    sequentially in linear id order and shared memory is created fresh per
//!    block, so "before block *b*" is a quiescent point: no shared memory is
//!    live, no warp is mid-flight, and the only carried state is exactly
//!    what [`Snapshot`] stores.
//! 2. **Engines agree bit-for-bit.** The three [`crate::ExecBackend`] tiers
//!    are observationally equivalent, so a snapshot is *portable in time*
//!    on one engine but deliberately **not across engines** — per-launch
//!    compilation artifacts differ, and mixing tiers inside one campaign
//!    would undermine the campaign journal's engine pinning. Restoring onto
//!    a different tier is a typed [`SnapshotError::EngineMismatch`],
//!    mirroring the journal's cross-engine refusal.
//! 3. **Hook runtimes are per-run.** The snapshot stores *device* state
//!    only. Each resumed run brings its own [`crate::HookRuntime`]; because
//!    occurrence counting is per `(site, thread)` and a thread executes only
//!    inside its own block, a fresh fault arm at the boundary observes
//!    exactly the counts a full run would have accumulated for the target
//!    thread: zero.
//!
//! Beyond prefix skipping, [`crate::device::Device::resume_spliced`] adds
//! FastFlip-style *reconvergence splicing*: after the target block, the
//! resumed run's state is fingerprinted at a fence boundary and compared
//! against the fault-free reference. A match proves the remaining blocks
//! would replay the reference exactly, so the run stops there and the caller
//! reuses the reference's finals — turning "skip the prefix" into "execute
//! only the corrupted window" for masked faults.

use crate::config::ExecEngine;
use crate::memory::MemRegion;
use crate::stats::ExecStats;

/// Full device state at a block boundary: everything
/// [`crate::device::Device::resume_launch`] needs to continue the launch
/// bit-exactly from [`Snapshot::next_block`].
///
/// Equality is observational equality of the captured launch: two snapshots
/// compare equal iff resuming either produces identical runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Engine tier that produced the snapshot (resume refuses others).
    pub(crate) engine: ExecEngine,
    /// The linear block id the resumed launch executes first.
    pub(crate) next_block: u32,
    /// Global memory, lazily-backed extent and all.
    pub(crate) mem: MemRegion,
    /// Cumulative execution statistics at the boundary.
    pub(crate) stats: ExecStats,
    /// Per-SM cycle tallies (the kernel-time max is taken at finalize).
    pub(crate) sm_cycles: Vec<u64>,
    /// Remaining hang budget.
    pub(crate) budget: u64,
}

impl Snapshot {
    /// Engine tier the snapshot was captured on.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Linear block id the resumed launch executes first.
    pub fn next_block(&self) -> u32 {
        self.next_block
    }

    /// Work cycles already simulated at the boundary — what a resume skips.
    pub fn prefix_cycles(&self) -> u64 {
        self.stats.work_cycles
    }
}

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was captured on a different engine tier than the device
    /// is configured for (the snapshot analogue of the campaign journal's
    /// cross-engine resume refusal).
    EngineMismatch {
        /// Tier the snapshot was captured on.
        snapshot: ExecEngine,
        /// Tier the restoring device runs.
        device: ExecEngine,
    },
    /// The snapshot's resume point lies beyond the launch grid — it belongs
    /// to a different launch geometry.
    BlockOutOfRange {
        /// The snapshot's resume block.
        next_block: u32,
        /// Blocks in the restoring launch.
        total_blocks: u32,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::EngineMismatch { snapshot, device } => write!(
                f,
                "snapshot was captured on engine {}, device runs {}",
                snapshot.name(),
                device.name()
            ),
            SnapshotError::BlockOutOfRange {
                next_block,
                total_blocks,
            } => write!(
                f,
                "snapshot resumes at block {next_block} but the launch has {total_blocks} block(s)"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Result of a reference capture run
/// ([`crate::device::Device::capture_launch`]): the outcome of the full
/// fault-free execution plus the requested snapshots and fence fingerprints.
#[derive(Debug)]
pub struct CaptureRun {
    /// Outcome of the full reference execution.
    pub outcome: crate::outcome::LaunchOutcome,
    /// `(boundary, snapshot)` for every requested boundary the run reached.
    pub snapshots: Vec<(u32, Snapshot)>,
    /// `(boundary, fingerprint)` for every requested fence the run reached
    /// whose runtime offered a [`crate::HookRuntime::state_fingerprint`].
    pub fences: Vec<(u32, u64)>,
}

/// How a spliced resume ([`crate::device::Device::resume_spliced`]) ended.
#[derive(Debug)]
pub enum Spliced {
    /// The run's state fingerprint matched the reference at the fence: the
    /// remaining blocks would replay the reference bit-for-bit, so they were
    /// not executed. The caller owns the reference finals.
    Reconverged {
        /// Work cycles actually simulated between the snapshot and the
        /// fence (the only cycles this injection cost).
        executed_cycles: u64,
    },
    /// No splice — divergent at the fence, trapped/hung before it, or the
    /// fence sat at/after the last block — and the run executed to its own
    /// completion.
    Ran(crate::outcome::LaunchOutcome),
}

/// FNV-1a, the same hash the campaign journal uses for plan fingerprints.
#[derive(Clone, Copy)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}
