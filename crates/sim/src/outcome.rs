//! Kernel launch outcomes: the failure taxonomy's "crash" and "hang" arms.

use crate::stats::ExecStats;
use hauberk_kir::MemSpace;
use std::fmt;

/// Why a kernel trapped (crashed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapReason {
    /// Access beyond the allocated region while strict memory checking is
    /// enabled (CPU mode's page protection; never raised in GPU mode, where
    /// accesses wrap instead).
    OutOfBounds {
        /// Memory space of the faulting access.
        space: MemSpace,
        /// Faulting byte address.
        addr: u32,
    },
    /// Misaligned access (trapped in both modes, like CUDA's
    /// `cudaErrorMisalignedAddress`).
    Misaligned {
        /// Memory space of the faulting access.
        space: MemSpace,
        /// Faulting byte address.
        addr: u32,
    },
    /// Integer division/remainder by zero under strict (CPU) semantics.
    /// GPU mode returns 0, like CUDA hardware.
    IntDivByZero,
    /// A corrupted instruction could not be executed (code-fault emulation
    /// in the CPU-programs study).
    IllegalInstruction,
    /// The kernel required more shared memory than the device provides
    /// (a launch failure; this is how R-Scatter fails on TPACF).
    SharedMemOverflow {
        /// Bytes requested.
        requested: u32,
        /// Bytes available per block.
        available: u32,
    },
}

impl fmt::Display for TrapReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapReason::OutOfBounds { space, addr } => {
                write!(f, "out-of-bounds access at {space}:{addr:#x}")
            }
            TrapReason::Misaligned { space, addr } => {
                write!(f, "misaligned access at {space}:{addr:#x}")
            }
            TrapReason::IntDivByZero => f.write_str("integer division by zero"),
            TrapReason::IllegalInstruction => f.write_str("illegal instruction"),
            TrapReason::SharedMemOverflow {
                requested,
                available,
            } => write!(
                f,
                "shared memory overflow: requested {requested} B, available {available} B"
            ),
        }
    }
}

/// Result of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchOutcome {
    /// The kernel ran to completion.
    Completed(ExecStats),
    /// The kernel crashed; the GPU runtime detects this by default
    /// ("GPU runtime can detect all GPU kernel crashes", §IV.A).
    Crash {
        /// Why.
        reason: TrapReason,
        /// Statistics accumulated up to the crash.
        stats: ExecStats,
    },
    /// The kernel exceeded its cycle budget — the simulator-level analogue
    /// of the guardian's hang watchdog.
    Hang {
        /// Statistics accumulated up to the cutoff.
        stats: ExecStats,
    },
}

impl LaunchOutcome {
    /// Whether the launch completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, LaunchOutcome::Completed(_))
    }

    /// The stats, whatever the outcome.
    pub fn stats(&self) -> &ExecStats {
        match self {
            LaunchOutcome::Completed(s) => s,
            LaunchOutcome::Crash { stats, .. } | LaunchOutcome::Hang { stats } => stats,
        }
    }

    /// The stats if the launch completed.
    pub fn completed_stats(&self) -> Option<&ExecStats> {
        match self {
            LaunchOutcome::Completed(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let s = ExecStats {
            work_cycles: 5,
            ..Default::default()
        };
        let c = LaunchOutcome::Completed(s.clone());
        assert!(c.is_completed());
        assert_eq!(c.stats().work_cycles, 5);
        let k = LaunchOutcome::Crash {
            reason: TrapReason::IntDivByZero,
            stats: s.clone(),
        };
        assert!(!k.is_completed());
        assert!(k.completed_stats().is_none());
        assert_eq!(k.stats().work_cycles, 5);
    }

    #[test]
    fn trap_display_is_informative() {
        let t = TrapReason::Misaligned {
            space: MemSpace::Global,
            addr: 0x13,
        };
        assert!(t.to_string().contains("misaligned"));
        assert!(t.to_string().contains("0x13"));
    }
}
