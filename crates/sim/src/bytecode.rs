//! Compiled kernels and the process-wide build cache.
//!
//! A [`CompiledKernel`] bundles the bytecode from `hauberk-kir::lower` with
//! the tables the VM wants preresolved per instruction stream instead of per
//! dispatch: hook costs (which depend on the device's [`CostModel`]) and
//! stable hook names for telemetry.
//!
//! [`compile_cached`] is the campaign-scale entry point: SWIFI campaigns
//! launch the *same* instrumented kernel thousands of times (once per
//! injection, across rayon workers), so the translator output is compiled
//! once and shared via `Arc`. The cache key is the **printed kernel text**
//! plus the cost model's debug rendering — string equality, deliberately not
//! a hash, so a collision can never silently execute the wrong program.

use crate::config::CostModel;
use crate::interp::{hook_cost, hook_kind_name};
use hauberk_kir::lower::{lower_kernel, LoweredKernel};
use hauberk_kir::printer::print_kernel;
use hauberk_kir::KernelDef;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Bytecode plus preresolved per-hook tables.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    /// The lowered instruction stream and register layout.
    pub lowered: LoweredKernel,
    /// Dispatch cost of each hook (indexed like [`LoweredKernel::hooks`]).
    pub hook_costs: Vec<u64>,
    /// Stable telemetry label of each hook.
    pub hook_names: Vec<&'static str>,
}

/// Compile `kernel` for a device with cost model `cost` (uncached).
pub fn compile(kernel: &KernelDef, cost: &CostModel) -> CompiledKernel {
    let lowered = lower_kernel(kernel);
    let hook_costs = lowered
        .hooks
        .iter()
        .map(|h| hook_cost(cost, &h.kind))
        .collect();
    let hook_names = lowered
        .hooks
        .iter()
        .map(|h| hook_kind_name(&h.kind))
        .collect();
    CompiledKernel {
        lowered,
        hook_costs,
        hook_names,
    }
}

/// Cap on cached entries; property tests churn through thousands of generated
/// kernels, and clearing wholesale is simpler (and rare enough) compared to
/// an eviction policy.
const CACHE_CAP: usize = 256;

fn cache() -> &'static Mutex<HashMap<String, Arc<CompiledKernel>>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<CompiledKernel>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Compile `kernel` through the process-wide build cache.
///
/// Keyed by kernel text + cost model, so the same instrumented build is
/// compiled once per campaign and shared across all rayon workers.
pub fn compile_cached(kernel: &KernelDef, cost: &CostModel) -> Arc<CompiledKernel> {
    let key = format!("{:?}\u{0}{}", cost, print_kernel(kernel));
    let mut map = hauberk_telemetry::lock_recover(cache());
    if let Some(c) = map.get(&key) {
        return Arc::clone(c);
    }
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    let c = Arc::new(compile(kernel, cost));
    map.insert(key, Arc::clone(&c));
    c
}

/// Disassemble `kernel` as the bytecode engine would execute it (the
/// minimal-repro artifact the differential tests print on divergence).
pub fn disassemble(kernel: &KernelDef) -> String {
    lower_kernel(kernel).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::builder::KernelBuilder;
    use hauberk_kir::{Expr, PrimTy, Ty};

    fn tiny() -> KernelDef {
        let mut b = KernelBuilder::new("tiny");
        let out = b.param("out", Ty::global_ptr(PrimTy::F32));
        b.store(Expr::var(out), Expr::i32(0), Expr::f32(1.0));
        b.finish()
    }

    #[test]
    fn cache_shares_compilations() {
        let k = tiny();
        let cost = CostModel::default();
        let a = compile_cached(&k, &cost);
        let b = compile_cached(&k, &cost);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cache_distinguishes_cost_models() {
        let k = tiny();
        let a = compile_cached(&k, &CostModel::default());
        let b = compile_cached(
            &k,
            &CostModel {
                mem_base: 99,
                ..CostModel::default()
            },
        );
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn disassembly_mentions_the_store() {
        let d = disassemble(&tiny());
        assert!(d.contains("store"), "{d}");
    }
}
