//! The batch tier: lane-blocked region execution for the bytecode VM.
//!
//! The per-op VM in [`crate::vm`] still pays one dispatch, one cycle charge,
//! and one producer-tag update *per instruction*. On full-mask straight-line
//! code — the overwhelmingly common case for the compute kernels the paper
//! measures — all of that bookkeeping is statically determined by the
//! instruction stream. This module precomputes it:
//!
//! * [`compile_batch`] lowers a kernel, asks `hauberk_kir::batch` for the
//!   region plan (straight-line runs of ops with an infallible lane-blocked
//!   implementation), and builds one `RegionExec` per region: a micro-op
//!   program for the data plane plus a 24-entry **charge table** for the
//!   cycle plane;
//! * the charge table is indexed by the only dynamic inputs the shared
//!   [`charge_op`](crate::interp) accounting has at region entry — whether
//!   the first charging op depends on the previous op (2) × the previous
//!   op's class (6, counting "none") × whether it co-issued (2) — and stores
//!   the summed cycle charge, the number of dual-issue pairs, and the exit
//!   pairing flag;
//! * micro-ops execute whole registers as rows of the flat `u32` file in
//!   fixed-size chunks (`u32x8` — copy a chunk into locals, apply the scalar
//!   kernel per lane, write the chunk back), which the compiler turns into
//!   SIMD; chunk-in/chunk-out also makes `dst == src` aliasing safe.
//!
//! Everything observable is **bit-exact** with per-op execution: identical
//! `ExecStats` (including `paired_ops` and per-class counts), identical
//! producer tags afterwards (regions replay a write-back program of
//! [`TagSrc`] entries), identical trap and hang behavior (a region runs only
//! if its whole charge fits the remaining budget and contains no fallible
//! op; otherwise the VM falls back to per-op dispatch, which reproduces the
//! partial charges an interrupted region would have made). The three-way
//! differential suite enforces this against both other engines.
//!
//! Ops with *fallible* lanes (integer div/rem, math intrinsics on
//! non-`f32`, ill-typed combinations) never join a region — they are region
//! breakers executed by the per-op path, and the region machinery resumes at
//! the next op.

use crate::bytecode::{compile_cached, CompiledKernel};
use crate::config::CostModel;
use crate::interp::bin_class;
use crate::stats::OpClass;
use crate::vm::call_class;
use hauberk_kir::batch::{is_charging, plan_batches, TagSrc};
use hauberk_kir::lower::{LoweredKernel, Op};
use hauberk_kir::printer::print_kernel;
use hauberk_kir::{BinOp, KernelDef, MathFn, PrimTy, Ty, UnOp};
use hauberk_telemetry::lock_recover;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Sentinel for "no region starts at this pc" (mirrors
/// `hauberk_kir::batch::NO_REGION`).
pub(crate) const NO_REGION: u32 = u32::MAX;

/// Unary micro-op kinds. Each computes, on a raw lane word, exactly what the
/// per-op VM's lane loop (or its `un_value`/`math_value`/`cast_value`
/// fallback) computes for the corresponding (op, type) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnK {
    /// `-x` on f32 bits.
    NegF,
    /// Wrapping `-x` on i32.
    NegI,
    /// Boolean not (`x ^ 1`; Bool lanes hold 0/1).
    NotB,
    /// Bitwise not (i32/u32 share the raw form).
    BitNot,
    /// `f32::abs`.
    AbsF,
    /// `i32::wrapping_abs`.
    AbsI,
    /// `f32::sqrt`.
    SqrtF,
    /// `1.0 / x.sqrt()`.
    RsqrtF,
    /// `f32::sin`.
    SinF,
    /// `f32::cos`.
    CosF,
    /// `f32::exp`.
    ExpF,
    /// `f32::ln`.
    LogF,
    /// `f32::floor`.
    FloorF,
    /// f32 → i32 saturating cast (`x as i32`).
    F2I,
    /// f32 → u32 saturating cast.
    F2U,
    /// f32 → bool (`x != 0.0`; distinguishes `-0.0` from raw-bit tests).
    F2B,
    /// i32 → f32.
    I2F,
    /// u32 → f32.
    U2F,
    /// bool → f32 (`(x & 1) as f32`).
    B2F,
    /// int → bool (`(x != 0) as u32`).
    Nz,
    /// bool → int (`x & 1`, the `from_bits` masking).
    MaskB,
    /// Raw identity (same-bits casts, `bits_of`).
    Ident,
}

/// Binary micro-op kinds (same contract as [`UnK`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub(crate) enum BinK {
    AddF,
    SubF,
    MulF,
    DivF,
    RemF,
    LtF,
    LeF,
    GtF,
    GeF,
    AddI,
    SubI,
    MulI,
    ShlI,
    ShrI,
    LtI,
    LeI,
    GtI,
    GeI,
    AddU,
    SubU,
    MulU,
    ShlU,
    ShrU,
    LtU,
    LeU,
    GtU,
    GeU,
    /// Bitwise and (i32/u32/bool share the raw form).
    AndBits,
    /// Bitwise or.
    OrBits,
    /// Bitwise xor.
    XorBits,
    /// Raw equality (`f32` equality is bitwise in `bin_value`; ints/bools
    /// compare raw words).
    EqBits,
    /// Raw inequality.
    NeBits,
    MinF,
    MaxF,
    MinI,
    MaxI,
    MinU,
    MaxU,
}

/// One lane-blocked instruction of a region's data plane.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MicroOp {
    /// Broadcast a constant word to every lane of `d`.
    Lit { d: u32, bits: u32 },
    /// Row copy `d <- s`.
    Copy { d: u32, s: u32 },
    /// `d[l] = k(s[l])`.
    Un { k: UnK, d: u32, s: u32 },
    /// `d[l] = k(a[l], b[l])`.
    Bin { k: BinK, d: u32, a: u32, b: u32 },
    /// Pointer arithmetic: `d[l] = a[l] + index(b[l]) * esz` (negated for
    /// `Sub`), exactly `PtrVal::offset_elems` on raw words.
    PtrAdd {
        d: u32,
        a: u32,
        b: u32,
        esz: i64,
        neg: bool,
        it: PrimTy,
    },
}

/// Map a lowered op to its lane-blocked micro-op, or `None` when the op has
/// no *infallible* lane-blocked form (which makes it a region breaker). This
/// is the single source of truth for batchability: the planner predicate is
/// `micro_of(op).is_some()`.
pub(crate) fn micro_of(op: &Op) -> Option<MicroOp> {
    use BinOp::*;
    use PrimTy::*;
    Some(match op {
        Op::Lit { dst, v } => MicroOp::Lit {
            d: *dst,
            bits: v.to_bits(),
        },
        Op::Copy { dst, src } | Op::Bits { dst, src } => MicroOp::Copy { d: *dst, s: *src },
        Op::Un { op, dst, src, ty } => {
            let k = match (op, ty) {
                (UnOp::Neg, F32) => UnK::NegF,
                (UnOp::Neg, I32) => UnK::NegI,
                (UnOp::Not, Bool) => UnK::NotB,
                (UnOp::BitNot, I32) | (UnOp::BitNot, U32) => UnK::BitNot,
                (UnOp::BitsOf, _) => UnK::Ident,
                // Anything else traps in `un_value`: breaker.
                _ => return None,
            };
            MicroOp::Un {
                k,
                d: *dst,
                s: *src,
            }
        }
        Op::Bin {
            op,
            dst,
            a,
            b,
            ta,
            tb,
        } => {
            let (d, a, b) = (*dst, *a, *b);
            let k = match (ta, op) {
                (Ty::Prim(F32), Add) => BinK::AddF,
                (Ty::Prim(F32), Sub) => BinK::SubF,
                (Ty::Prim(F32), Mul) => BinK::MulF,
                // FP division/remainder never trap (§II.A: infinities, NaNs).
                (Ty::Prim(F32), Div) => BinK::DivF,
                (Ty::Prim(F32), Rem) => BinK::RemF,
                (Ty::Prim(F32), Lt) => BinK::LtF,
                (Ty::Prim(F32), Le) => BinK::LeF,
                (Ty::Prim(F32), Gt) => BinK::GtF,
                (Ty::Prim(F32), Ge) => BinK::GeF,
                (Ty::Prim(F32), Eq) => BinK::EqBits,
                (Ty::Prim(F32), Ne) => BinK::NeBits,

                (Ty::Prim(I32), Add) => BinK::AddI,
                (Ty::Prim(I32), Sub) => BinK::SubI,
                (Ty::Prim(I32), Mul) => BinK::MulI,
                // Integer div/rem can trap (strict mode): breaker.
                (Ty::Prim(I32), Div) | (Ty::Prim(I32), Rem) => return None,
                (Ty::Prim(I32), And) => BinK::AndBits,
                (Ty::Prim(I32), Or) => BinK::OrBits,
                (Ty::Prim(I32), Xor) => BinK::XorBits,
                (Ty::Prim(I32), Shl) => BinK::ShlI,
                (Ty::Prim(I32), Shr) => BinK::ShrI,
                (Ty::Prim(I32), Lt) => BinK::LtI,
                (Ty::Prim(I32), Le) => BinK::LeI,
                (Ty::Prim(I32), Gt) => BinK::GtI,
                (Ty::Prim(I32), Ge) => BinK::GeI,
                (Ty::Prim(I32), Eq) => BinK::EqBits,
                (Ty::Prim(I32), Ne) => BinK::NeBits,

                (Ty::Prim(U32), Add) => BinK::AddU,
                (Ty::Prim(U32), Sub) => BinK::SubU,
                (Ty::Prim(U32), Mul) => BinK::MulU,
                (Ty::Prim(U32), Div) | (Ty::Prim(U32), Rem) => return None,
                (Ty::Prim(U32), And) => BinK::AndBits,
                (Ty::Prim(U32), Or) => BinK::OrBits,
                (Ty::Prim(U32), Xor) => BinK::XorBits,
                (Ty::Prim(U32), Shl) => BinK::ShlU,
                (Ty::Prim(U32), Shr) => BinK::ShrU,
                (Ty::Prim(U32), Lt) => BinK::LtU,
                (Ty::Prim(U32), Le) => BinK::LeU,
                (Ty::Prim(U32), Gt) => BinK::GtU,
                (Ty::Prim(U32), Ge) => BinK::GeU,
                (Ty::Prim(U32), Eq) => BinK::EqBits,
                (Ty::Prim(U32), Ne) => BinK::NeBits,

                (Ty::Prim(Bool), LAnd) | (Ty::Prim(Bool), And) => BinK::AndBits,
                (Ty::Prim(Bool), LOr) | (Ty::Prim(Bool), Or) => BinK::OrBits,
                (Ty::Prim(Bool), Xor) => BinK::XorBits,
                (Ty::Prim(Bool), Eq) => BinK::EqBits,
                (Ty::Prim(Bool), Ne) => BinK::NeBits,

                (Ty::Ptr { elem, .. }, Add) | (Ty::Ptr { elem, .. }, Sub) if matches!(tb, Ty::Prim(p) if p.is_integer()) =>
                {
                    let Ty::Prim(it) = tb else { unreachable!() };
                    return Some(MicroOp::PtrAdd {
                        d,
                        a,
                        b,
                        esz: elem.size_bytes() as i64,
                        neg: *op == Sub,
                        it: *it,
                    });
                }
                (Ty::Ptr { space, elem }, Eq) | (Ty::Ptr { space, elem }, Ne)
                    if matches!(tb, Ty::Ptr { .. }) =>
                {
                    let Ty::Ptr {
                        space: s2,
                        elem: e2,
                    } = tb
                    else {
                        unreachable!()
                    };
                    if *space == *s2 && *elem == *e2 {
                        if *op == Eq {
                            BinK::EqBits
                        } else {
                            BinK::NeBits
                        }
                    } else {
                        // Statically distinct pointers: `p == q` is a
                        // constant (`(stat && x == y) == want` with
                        // `stat = false`).
                        return Some(MicroOp::Lit {
                            d,
                            bits: (*op == Ne) as u32,
                        });
                    }
                }
                // Ill-typed mixes fall to `bin_value`, which can trap.
                _ => return None,
            };
            MicroOp::Bin { k, d, a, b }
        }
        Op::Call1 { f, dst, a, ty } => {
            let k = match (f, ty) {
                (MathFn::Abs, F32) => UnK::AbsF,
                (MathFn::Abs, I32) => UnK::AbsI,
                (MathFn::Sqrt, F32) => UnK::SqrtF,
                (MathFn::Rsqrt, F32) => UnK::RsqrtF,
                (MathFn::Sin, F32) => UnK::SinF,
                (MathFn::Cos, F32) => UnK::CosF,
                (MathFn::Exp, F32) => UnK::ExpF,
                (MathFn::Log, F32) => UnK::LogF,
                (MathFn::Floor, F32) => UnK::FloorF,
                // `math_value` on any other type traps: breaker.
                _ => return None,
            };
            MicroOp::Un { k, d: *dst, s: *a }
        }
        Op::Call2 { f, dst, a, b, ty } => {
            let k = match (f, ty) {
                (MathFn::Min, F32) => BinK::MinF,
                (MathFn::Max, F32) => BinK::MaxF,
                (MathFn::Min, I32) => BinK::MinI,
                (MathFn::Max, I32) => BinK::MaxI,
                (MathFn::Min, U32) => BinK::MinU,
                (MathFn::Max, U32) => BinK::MaxU,
                _ => return None,
            };
            MicroOp::Bin {
                k,
                d: *dst,
                a: *a,
                b: *b,
            }
        }
        Op::Cast { to, from, dst, src } => {
            let k = match (from, to) {
                (F32, F32) => UnK::Ident,
                (F32, I32) => UnK::F2I,
                (F32, U32) => UnK::F2U,
                (F32, Bool) => UnK::F2B,
                (I32, F32) => UnK::I2F,
                (I32, I32) | (I32, U32) | (U32, I32) | (U32, U32) => UnK::Ident,
                (I32, Bool) | (U32, Bool) => UnK::Nz,
                (U32, F32) => UnK::U2F,
                (Bool, F32) => UnK::B2F,
                // `from_bits` masks Bool sources to bit 0.
                (Bool, I32) | (Bool, U32) | (Bool, Bool) => UnK::MaskB,
            };
            MicroOp::Un {
                k,
                d: *dst,
                s: *src,
            }
        }
        // Memory, hooks, sync, control: never batched.
        _ => return None,
    })
}

/// Charge class of a charging op (mirrors the per-op VM's dispatch arms).
fn charge_class(op: &Op) -> OpClass {
    match op {
        Op::Un { op, ty, .. } => match op {
            UnOp::Neg if *ty == PrimTy::F32 => OpClass::FAlu,
            _ => OpClass::IAlu,
        },
        Op::Bin { op, ta, .. } => bin_class(*op, ta.as_prim()),
        Op::Call1 { f, ty, .. } | Op::Call2 { f, ty, .. } => call_class(*f, *ty),
        Op::Cast { to, from, .. } => {
            if *from == PrimTy::F32 || *to == PrimTy::F32 {
                OpClass::FAlu
            } else {
                OpClass::IAlu
            }
        }
        other => unreachable!("charge class of non-charging op {other:?}"),
    }
}

/// One precomputed charge-table entry: the cycle/pairing outcome of running a
/// region's whole charge sequence from one entry pipeline state.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ChargeEntry {
    /// Total cycles charged (sum of unpaired ops' class costs).
    pub(crate) cycles: u64,
    /// Number of ops that co-issued (each adds to `stats.paired_ops`).
    pub(crate) paired: u64,
    /// `pipe.last_paired` after the region.
    pub(crate) exit_paired: bool,
}

/// Index into a region's charge table: the three dynamic inputs at entry.
#[inline(always)]
pub(crate) fn table_idx(dep0: bool, entry_class: Option<OpClass>, entry_paired: bool) -> usize {
    let c6 = match entry_class {
        None => 0,
        Some(c) => 1 + c.idx(),
    };
    (dep0 as usize) * 12 + c6 * 2 + entry_paired as usize
}

/// Simulate the shared `charge_op` pairing automaton over the region's
/// charging ops for every possible entry state.
fn build_table(classes: &[OpClass], dep_static: &[bool], cost: &CostModel) -> [ChargeEntry; 24] {
    let entry_classes = [
        None,
        Some(OpClass::IAlu),
        Some(OpClass::FAlu),
        Some(OpClass::Sfu),
        Some(OpClass::Mem),
        Some(OpClass::Ctl),
    ];
    let mut table = [ChargeEntry::default(); 24];
    for dep0 in [false, true] {
        for entry_class in entry_classes {
            for entry_paired in [false, true] {
                let mut cycles = 0u64;
                let mut paired = 0u64;
                let mut last_class = entry_class;
                let mut last_paired = entry_paired;
                for (c, &class) in classes.iter().enumerate() {
                    let dependent = if c == 0 { dep0 } else { dep_static[c] };
                    let pairable = cost.dual_issue
                        && !dependent
                        && !last_paired
                        && last_class.is_some()
                        && last_class != Some(class)
                        && !matches!(class, OpClass::Mem | OpClass::Ctl)
                        && !matches!(last_class, Some(OpClass::Mem) | Some(OpClass::Ctl));
                    if pairable {
                        paired += 1;
                    } else {
                        cycles += cost.class_cost(class);
                    }
                    last_paired = pairable;
                    last_class = Some(class);
                }
                table[table_idx(dep0, entry_class, entry_paired)] = ChargeEntry {
                    cycles,
                    paired,
                    exit_paired: last_paired,
                };
            }
        }
    }
    table
}

/// One executable region: data plane (micro-ops) + cycle plane (charge table
/// and static stat deltas) + tag plane (write-back program).
#[derive(Debug, Clone)]
pub(crate) struct RegionExec {
    /// One past the last op (the pc to resume per-op dispatch at).
    pub(crate) end: u32,
    /// The lane-blocked data plane.
    pub(crate) micro: Vec<MicroOp>,
    /// Number of charging ops (tag-counter advance).
    pub(crate) n_charges: u64,
    /// Per-class op-count deltas (`stats.class_counts`).
    pub(crate) class_deltas: [u64; 5],
    /// Class of the last charging op (`pipe.last_class` after the region;
    /// meaningless when `n_charges == 0`).
    pub(crate) exit_class: OpClass,
    /// Entry registers whose producer tags feed the first charging op.
    pub(crate) first_dep_entries: Vec<u32>,
    /// Producer-tag write-back program.
    pub(crate) writeback: Vec<(u32, TagSrc)>,
    /// The 24-entry charge table.
    pub(crate) table: [ChargeEntry; 24],
}

/// The batch plan compiled against a specific cost model, ready to execute.
#[derive(Debug, Clone)]
pub struct BatchKernel {
    /// Executable regions.
    pub(crate) regions: Vec<RegionExec>,
    /// `region_at[pc]`: region starting at `pc`, or [`NO_REGION`].
    pub(crate) region_at: Vec<u32>,
}

impl BatchKernel {
    /// Number of planned regions (diagnostics).
    pub fn n_regions(&self) -> usize {
        self.regions.len()
    }
}

/// Plan and compile the batch tier for an already-lowered kernel.
pub(crate) fn build_batch(lowered: &LoweredKernel, cost: &CostModel) -> BatchKernel {
    let plan = plan_batches(lowered, &|op| micro_of(op).is_some());
    let regions = plan
        .regions
        .iter()
        .map(|r| {
            let mut micro = Vec::with_capacity((r.end - r.start) as usize);
            let mut classes = Vec::new();
            let mut class_deltas = [0u64; 5];
            for op in &lowered.code[r.start as usize..r.end as usize] {
                micro.push(micro_of(op).expect("planned op is batchable"));
                if is_charging(op) {
                    let class = charge_class(op);
                    class_deltas[class.idx()] += 1;
                    classes.push(class);
                }
            }
            debug_assert_eq!(classes.len(), r.n_charges as usize);
            let table = build_table(&classes, &r.dep_static, cost);
            RegionExec {
                end: r.end,
                micro,
                n_charges: r.n_charges as u64,
                class_deltas,
                exit_class: classes.last().copied().unwrap_or(OpClass::IAlu),
                first_dep_entries: r.first_dep_entries.clone(),
                writeback: r.writeback.clone(),
                table,
            }
        })
        .collect();
    BatchKernel {
        regions,
        region_at: plan.region_at,
    }
}

/// A bytecode compilation plus its batch plan. The bytecode half is shared
/// with (and identical to) what the plain bytecode engine executes — the
/// batch tier only adds the region fast path on top.
#[derive(Debug, Clone)]
pub struct BatchCompiled {
    /// The underlying per-op compilation.
    pub compiled: Arc<CompiledKernel>,
    /// The region plan + charge tables.
    pub batch: BatchKernel,
}

/// Compile `kernel` for the batch engine (uncached).
pub fn compile_batch(kernel: &KernelDef, cost: &CostModel) -> BatchCompiled {
    let compiled = compile_cached(kernel, cost);
    let batch = build_batch(&compiled.lowered, cost);
    BatchCompiled { compiled, batch }
}

/// Cap on cached batch compilations (mirrors the bytecode build cache).
const CACHE_CAP: usize = 256;

fn cache() -> &'static Mutex<HashMap<String, Arc<BatchCompiled>>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<BatchCompiled>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Compile `kernel` for the batch engine through the process-wide cache
/// (keyed like [`compile_cached`]: kernel text + cost model).
pub fn compile_batch_cached(kernel: &KernelDef, cost: &CostModel) -> Arc<BatchCompiled> {
    let key = format!("{:?}\u{0}{}", cost, print_kernel(kernel));
    let mut map = lock_recover(cache());
    if let Some(c) = map.get(&key) {
        return Arc::clone(c);
    }
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    let c = Arc::new(compile_batch(kernel, cost));
    map.insert(key, Arc::clone(&c));
    c
}

// -- data plane --------------------------------------------------------------

/// Lane-block width: registers execute in chunks of 8 `u32` words (`u32x8`
/// once the autovectorizer is done with it). Warp widths that are not a
/// multiple of 8 (the 1-lane CPU device) use the scalar tail loop.
const CHUNK: usize = 8;

/// `d[l] = f(s[l])` over lanes `[0, n)` of rows strided by `w`, chunked.
/// Chunks are copied into locals before the destination row is written, so
/// `d == s` aliasing is safe. `n < w` is the uniform fast path (lane 0 only).
#[inline(always)]
fn row1(regs: &mut [u32], w: usize, n: usize, d: u32, s: u32, f: impl Fn(u32) -> u32) {
    let (db, sb) = (d as usize * w, s as usize * w);
    assert!(n <= w && db + n <= regs.len() && sb + n <= regs.len());
    if n.is_multiple_of(CHUNK) {
        let mut x = [0u32; CHUNK];
        let mut o = [0u32; CHUNK];
        let mut c = 0;
        while c < n {
            x.copy_from_slice(&regs[sb + c..sb + c + CHUNK]);
            for l in 0..CHUNK {
                o[l] = f(x[l]);
            }
            regs[db + c..db + c + CHUNK].copy_from_slice(&o);
            c += CHUNK;
        }
    } else {
        for l in 0..n {
            regs[db + l] = f(regs[sb + l]);
        }
    }
}

/// `d[l] = f(a[l], b[l])` over lanes `[0, n)`, chunked (alias-safe like
/// [`row1`]).
#[inline(always)]
fn row2(regs: &mut [u32], w: usize, n: usize, d: u32, a: u32, b: u32, f: impl Fn(u32, u32) -> u32) {
    let (db, ab, bb) = (d as usize * w, a as usize * w, b as usize * w);
    assert!(n <= w && db + n <= regs.len() && ab + n <= regs.len() && bb + n <= regs.len());
    if n.is_multiple_of(CHUNK) {
        let mut x = [0u32; CHUNK];
        let mut y = [0u32; CHUNK];
        let mut o = [0u32; CHUNK];
        let mut c = 0;
        while c < n {
            x.copy_from_slice(&regs[ab + c..ab + c + CHUNK]);
            y.copy_from_slice(&regs[bb + c..bb + c + CHUNK]);
            for l in 0..CHUNK {
                o[l] = f(x[l], y[l]);
            }
            regs[db + c..db + c + CHUNK].copy_from_slice(&o);
            c += CHUNK;
        }
    } else {
        for l in 0..n {
            regs[db + l] = f(regs[ab + l], regs[bb + l]);
        }
    }
}

/// f32 view of [`row2`].
#[inline(always)]
fn row2f(
    regs: &mut [u32],
    w: usize,
    n: usize,
    d: u32,
    a: u32,
    b: u32,
    f: impl Fn(f32, f32) -> f32,
) {
    row2(regs, w, n, d, a, b, |x, y| {
        f(f32::from_bits(x), f32::from_bits(y)).to_bits()
    });
}

/// f32-comparison view of [`row2`].
#[inline(always)]
fn row2fc(
    regs: &mut [u32],
    w: usize,
    n: usize,
    d: u32,
    a: u32,
    b: u32,
    f: impl Fn(f32, f32) -> bool,
) {
    row2(regs, w, n, d, a, b, |x, y| {
        f(f32::from_bits(x), f32::from_bits(y)) as u32
    });
}

/// i32 view of [`row2`].
#[inline(always)]
fn row2i(
    regs: &mut [u32],
    w: usize,
    n: usize,
    d: u32,
    a: u32,
    b: u32,
    f: impl Fn(i32, i32) -> i32,
) {
    row2(regs, w, n, d, a, b, |x, y| f(x as i32, y as i32) as u32);
}

/// i32-comparison view of [`row2`].
#[inline(always)]
fn row2ic(
    regs: &mut [u32],
    w: usize,
    n: usize,
    d: u32,
    a: u32,
    b: u32,
    f: impl Fn(i32, i32) -> bool,
) {
    row2(regs, w, n, d, a, b, |x, y| f(x as i32, y as i32) as u32);
}

/// Execute a region's data plane over lanes `[0, n)` of the full-mask
/// register file (rows strided by `w`). `n == w` is the batched path;
/// `n == 1` is the uniform-region path (the caller broadcasts afterwards).
pub(crate) fn run_micro_ops(regs: &mut [u32], w: usize, n: usize, ops: &[MicroOp]) {
    use BinK as B;
    use UnK as U;
    for op in ops {
        match *op {
            MicroOp::Lit { d, bits } => {
                let db = d as usize * w;
                regs[db..db + n].fill(bits);
            }
            MicroOp::Copy { d, s } => {
                if d != s {
                    row1(regs, w, n, d, s, |x| x);
                }
            }
            MicroOp::Un { k, d, s } => match k {
                U::NegF => row1(regs, w, n, d, s, |x| (-f32::from_bits(x)).to_bits()),
                U::NegI => row1(regs, w, n, d, s, |x| (x as i32).wrapping_neg() as u32),
                U::NotB => row1(regs, w, n, d, s, |x| x ^ 1),
                U::BitNot => row1(regs, w, n, d, s, |x| !x),
                U::AbsF => row1(regs, w, n, d, s, |x| f32::from_bits(x).abs().to_bits()),
                U::AbsI => row1(regs, w, n, d, s, |x| (x as i32).wrapping_abs() as u32),
                U::SqrtF => row1(regs, w, n, d, s, |x| f32::from_bits(x).sqrt().to_bits()),
                U::RsqrtF => row1(regs, w, n, d, s, |x| {
                    (1.0 / f32::from_bits(x).sqrt()).to_bits()
                }),
                U::SinF => row1(regs, w, n, d, s, |x| f32::from_bits(x).sin().to_bits()),
                U::CosF => row1(regs, w, n, d, s, |x| f32::from_bits(x).cos().to_bits()),
                U::ExpF => row1(regs, w, n, d, s, |x| f32::from_bits(x).exp().to_bits()),
                U::LogF => row1(regs, w, n, d, s, |x| f32::from_bits(x).ln().to_bits()),
                U::FloorF => row1(regs, w, n, d, s, |x| f32::from_bits(x).floor().to_bits()),
                U::F2I => row1(regs, w, n, d, s, |x| f32::from_bits(x) as i32 as u32),
                U::F2U => row1(regs, w, n, d, s, |x| f32::from_bits(x) as u32),
                U::F2B => row1(regs, w, n, d, s, |x| (f32::from_bits(x) != 0.0) as u32),
                U::I2F => row1(regs, w, n, d, s, |x| (x as i32 as f32).to_bits()),
                U::U2F => row1(regs, w, n, d, s, |x| (x as f32).to_bits()),
                U::B2F => row1(regs, w, n, d, s, |x| ((x & 1) as f32).to_bits()),
                U::Nz => row1(regs, w, n, d, s, |x| (x != 0) as u32),
                U::MaskB => row1(regs, w, n, d, s, |x| x & 1),
                U::Ident => {
                    if d != s {
                        row1(regs, w, n, d, s, |x| x);
                    }
                }
            },
            MicroOp::Bin { k, d, a, b } => match k {
                B::AddF => row2f(regs, w, n, d, a, b, |x, y| x + y),
                B::SubF => row2f(regs, w, n, d, a, b, |x, y| x - y),
                B::MulF => row2f(regs, w, n, d, a, b, |x, y| x * y),
                B::DivF => row2f(regs, w, n, d, a, b, |x, y| x / y),
                B::RemF => row2f(regs, w, n, d, a, b, |x, y| x % y),
                B::LtF => row2fc(regs, w, n, d, a, b, |x, y| x < y),
                B::LeF => row2fc(regs, w, n, d, a, b, |x, y| x <= y),
                B::GtF => row2fc(regs, w, n, d, a, b, |x, y| x > y),
                B::GeF => row2fc(regs, w, n, d, a, b, |x, y| x >= y),
                B::AddI => row2i(regs, w, n, d, a, b, |x, y| x.wrapping_add(y)),
                B::SubI => row2i(regs, w, n, d, a, b, |x, y| x.wrapping_sub(y)),
                B::MulI => row2i(regs, w, n, d, a, b, |x, y| x.wrapping_mul(y)),
                B::ShlI => row2i(regs, w, n, d, a, b, |x, y| x.wrapping_shl(y as u32 & 31)),
                B::ShrI => row2i(regs, w, n, d, a, b, |x, y| x.wrapping_shr(y as u32 & 31)),
                B::LtI => row2ic(regs, w, n, d, a, b, |x, y| x < y),
                B::LeI => row2ic(regs, w, n, d, a, b, |x, y| x <= y),
                B::GtI => row2ic(regs, w, n, d, a, b, |x, y| x > y),
                B::GeI => row2ic(regs, w, n, d, a, b, |x, y| x >= y),
                B::AddU => row2(regs, w, n, d, a, b, |x, y| x.wrapping_add(y)),
                B::SubU => row2(regs, w, n, d, a, b, |x, y| x.wrapping_sub(y)),
                B::MulU => row2(regs, w, n, d, a, b, |x, y| x.wrapping_mul(y)),
                B::ShlU => row2(regs, w, n, d, a, b, |x, y| x.wrapping_shl(y & 31)),
                B::ShrU => row2(regs, w, n, d, a, b, |x, y| x.wrapping_shr(y & 31)),
                B::LtU => row2(regs, w, n, d, a, b, |x, y| (x < y) as u32),
                B::LeU => row2(regs, w, n, d, a, b, |x, y| (x <= y) as u32),
                B::GtU => row2(regs, w, n, d, a, b, |x, y| (x > y) as u32),
                B::GeU => row2(regs, w, n, d, a, b, |x, y| (x >= y) as u32),
                B::AndBits => row2(regs, w, n, d, a, b, |x, y| x & y),
                B::OrBits => row2(regs, w, n, d, a, b, |x, y| x | y),
                B::XorBits => row2(regs, w, n, d, a, b, |x, y| x ^ y),
                B::EqBits => row2(regs, w, n, d, a, b, |x, y| (x == y) as u32),
                B::NeBits => row2(regs, w, n, d, a, b, |x, y| (x != y) as u32),
                B::MinF => row2f(regs, w, n, d, a, b, |x, y| x.min(y)),
                B::MaxF => row2f(regs, w, n, d, a, b, |x, y| x.max(y)),
                B::MinI => row2i(regs, w, n, d, a, b, |x, y| x.min(y)),
                B::MaxI => row2i(regs, w, n, d, a, b, |x, y| x.max(y)),
                B::MinU => row2(regs, w, n, d, a, b, |x, y| x.min(y)),
                B::MaxU => row2(regs, w, n, d, a, b, |x, y| x.max(y)),
            },
            MicroOp::PtrAdd {
                d,
                a,
                b,
                esz,
                neg,
                it,
            } => row2(regs, w, n, d, a, b, |x, y| {
                let mut i = match it {
                    PrimTy::I32 => y as i32 as i64,
                    PrimTy::U32 => y as i64,
                    PrimTy::Bool => (y & 1) as i64,
                    PrimTy::F32 => 0,
                };
                if neg {
                    i = -i;
                }
                (x as i64).wrapping_add(i.wrapping_mul(esz)) as u32
            }),
        }
    }
}

/// Count distinct memory segments touched by `addrs[lanes(mask)]` **if** the
/// addresses are already non-decreasing in lane order (the overwhelmingly
/// common coalesced pattern); `None` means unsorted, caller must take the
/// sorting path. Returns the same count `charge_mem_op` computes.
#[inline]
pub(crate) fn sorted_segment_count(
    addrs: &[u32],
    mask: u32,
    width: usize,
    segment_bytes: u32,
) -> Option<u64> {
    let mut nseg = 0u64;
    let mut prev: Option<u32> = None;
    let mut m = mask;
    while m != 0 {
        let l = m.trailing_zeros() as usize;
        if l >= width {
            break;
        }
        m &= m - 1;
        let s = addrs[l] / segment_bytes;
        match prev {
            Some(p) if s < p => return None,
            Some(p) if s == p => {}
            _ => {
                nseg += 1;
                prev = Some(s);
            }
        }
    }
    Some(nseg.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::builder::KernelBuilder;
    use hauberk_kir::{Expr, PrimTy as P, Ty};

    #[test]
    fn charge_table_pairs_cross_class_independent_ops() {
        let cost = CostModel::default();
        // IAlu then FAlu, independent: the second op pairs (cost 0).
        let t = build_table(&[OpClass::IAlu, OpClass::FAlu], &[false, false], &cost);
        let e = t[table_idx(false, None, false)];
        assert_eq!(e.cycles, cost.ialu);
        assert_eq!(e.paired, 1);
        assert!(e.exit_paired);
        // Same ops but dependent: both charge.
        let t = build_table(&[OpClass::IAlu, OpClass::FAlu], &[false, true], &cost);
        let e = t[table_idx(false, None, false)];
        assert_eq!(e.cycles, cost.ialu + cost.falu);
        assert_eq!(e.paired, 0);
    }

    #[test]
    fn charge_table_honors_entry_state() {
        let cost = CostModel::default();
        let t = build_table(&[OpClass::FAlu], &[false], &cost);
        // Entering after an independent IAlu op that did not pair: pairs.
        let e = t[table_idx(false, Some(OpClass::IAlu), false)];
        assert_eq!((e.cycles, e.paired), (0, 1));
        // Entering dependent on the previous op: charges.
        let e = t[table_idx(true, Some(OpClass::IAlu), false)];
        assert_eq!((e.cycles, e.paired), (cost.falu, 0));
        // Previous op already co-issued: pairing is at most two-wide.
        let e = t[table_idx(false, Some(OpClass::IAlu), true)];
        assert_eq!((e.cycles, e.paired), (cost.falu, 0));
        // Entering after a Ctl op: control blocks co-issue.
        let e = t[table_idx(false, Some(OpClass::Ctl), false)];
        assert_eq!((e.cycles, e.paired), (cost.falu, 0));
    }

    #[test]
    fn spin_kernel_compiles_to_regions() {
        let mut b = KernelBuilder::new("spin");
        let out = b.param("out", Ty::global_ptr(P::F32));
        let n = b.param("n", Ty::I32);
        let acc = b.let_("acc", Ty::F32, Expr::f32(0.0));
        let i = b.local("i", Ty::I32);
        b.for_range(i, Expr::var(n), |b| {
            b.assign(
                acc,
                Expr::add(Expr::mul(Expr::var(acc), Expr::f32(1.0001)), Expr::f32(0.5)),
            );
        });
        b.store(Expr::var(out), Expr::i32(0), Expr::var(acc));
        let k = b.finish();
        let bc = compile_batch(&k, &CostModel::default());
        assert!(bc.batch.n_regions() > 0);
        // The loop body's FP chain forms a region with ≥2 charges.
        assert!(
            bc.batch.regions.iter().any(|r| r.n_charges >= 2),
            "no multi-charge region"
        );
    }

    #[test]
    fn batch_cache_shares_compilations() {
        let mut b = KernelBuilder::new("cache-probe");
        let out = b.param("out", Ty::global_ptr(P::F32));
        b.store(Expr::var(out), Expr::i32(0), Expr::f32(4.0));
        let k = b.finish();
        let cost = CostModel::default();
        let a = compile_batch_cached(&k, &cost);
        let b2 = compile_batch_cached(&k, &cost);
        assert!(Arc::ptr_eq(&a, &b2));
    }

    #[test]
    fn sorted_segment_count_matches_coalescing() {
        // 4 lanes, contiguous f32s: one 128-byte segment.
        let addrs = [0u32, 4, 8, 12];
        assert_eq!(sorted_segment_count(&addrs, 0b1111, 4, 128), Some(1));
        // Strided across two segments.
        let addrs = [0u32, 64, 128, 192];
        assert_eq!(sorted_segment_count(&addrs, 0b1111, 4, 128), Some(2));
        // Unsorted: defer to the sorting path.
        let addrs = [128u32, 0, 4, 8];
        assert_eq!(sorted_segment_count(&addrs, 0b1111, 4, 128), None);
        // Masked lanes are ignored.
        let addrs = [0u32, 9999, 4, 8];
        assert_eq!(sorted_segment_count(&addrs, 0b1101, 4, 128), Some(1));
    }
}
