//! The simulated device: global memory, launch orchestration, SM time model.

use crate::backend::{ExecBackend, Prepared, WarpCtx};
use crate::config::DeviceConfig;
use crate::fault::MemoryBurst;
use crate::hooks::HookRuntime;
use crate::interp::{ExecErr, WarpGeom};
use crate::memory::MemRegion;
use crate::outcome::{LaunchOutcome, TrapReason};
use crate::snapshot::{CaptureRun, Fnv1a, Snapshot, SnapshotError, Spliced};
use crate::stats::ExecStats;
use hauberk_kir::validate::validate_kernel;
use hauberk_kir::{KernelDef, MemSpace, PrimTy, PtrVal, Value};
use hauberk_telemetry::span::SpanGuard;
use hauberk_telemetry::{next_launch_id, Event, Telemetry};
use std::time::Instant;

/// Launch geometry and budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Launch {
    /// Grid dimensions in blocks.
    pub grid: (u32, u32),
    /// Block dimensions in threads (the bundled kernels use ≤ 32 threads per
    /// block in x — one warp — so `__syncthreads` is exact; larger blocks
    /// execute warps sequentially).
    pub block: (u32, u32),
    /// Total work-cycle budget; exceeding it yields
    /// [`LaunchOutcome::Hang`]. Use [`Launch::DEFAULT_BUDGET`] for
    /// effectively unbounded runs.
    pub cycle_budget: u64,
}

impl Launch {
    /// A budget that no sane kernel reaches (but a corrupted infinite loop
    /// eventually does, in bounded wall-clock time).
    pub const DEFAULT_BUDGET: u64 = 2_000_000_000;

    /// 1-D launch helper.
    pub fn grid1d(blocks: u32, threads_per_block: u32) -> Launch {
        Launch {
            grid: (blocks, 1),
            block: (threads_per_block, 1),
            cycle_budget: Self::DEFAULT_BUDGET,
        }
    }

    /// Set the hang budget.
    pub fn with_budget(mut self, budget: u64) -> Launch {
        self.cycle_budget = budget;
        self
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid.0 as u64 * self.grid.1 as u64 * self.block.0 as u64 * self.block.1 as u64
    }

    /// Total blocks in the grid (blocks execute in linear id order, so this
    /// is also the count of snapshot boundaries + 1).
    pub fn total_blocks(&self) -> u32 {
        self.grid.0 * self.grid.1
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.0 * self.block.1
    }
}

/// A simulated GPU (or, with [`DeviceConfig::cpu`], a protected CPU).
pub struct Device {
    /// Device configuration.
    pub config: DeviceConfig,
    /// Global memory.
    pub mem: MemRegion,
    /// Telemetry pipeline; [`Telemetry::disabled`] by default, so every
    /// emit site reduces to one branch.
    pub telemetry: Telemetry,
}

impl Device {
    /// Create a device.
    pub fn new(config: DeviceConfig) -> Self {
        let mem = MemRegion::new(
            MemSpace::Global,
            config.global_mem_bytes,
            config.strict_memory,
        );
        Device {
            config,
            mem,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry pipeline (builder style).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Default GT200-like GPU.
    pub fn gpu() -> Self {
        Device::new(DeviceConfig::gpu())
    }

    /// Small GPU for tests.
    pub fn small_gpu() -> Self {
        Device::new(DeviceConfig::small_gpu())
    }

    /// CPU-mode device (strict memory, single lane).
    pub fn cpu() -> Self {
        Device::new(DeviceConfig::cpu())
    }

    /// Allocate `n` elements of `elem` in global memory.
    ///
    /// # Panics
    /// Panics if global memory is exhausted (host-side allocation failure,
    /// not a simulated fault).
    pub fn alloc(&mut self, elem: PrimTy, n: u32) -> PtrVal {
        self.mem
            .alloc(elem, n)
            .expect("device global memory exhausted")
    }

    /// Apply a memory-corruption burst (graphics fault experiments).
    pub fn inject_memory_burst(&mut self, burst: &MemoryBurst) {
        debug_assert_eq!(burst.space, MemSpace::Global);
        self.mem.corrupt_words(burst.addr, burst.words, burst.mask);
    }

    /// Launch `kernel` with parameter values `args`.
    ///
    /// Checks shared-memory fit (the launch-time analogue of the R-Scatter
    /// compile failure) and argument arity/types, then executes every block
    /// deterministically and aggregates the SM time model.
    pub fn launch(
        &mut self,
        kernel: &KernelDef,
        args: &[Value],
        launch: &Launch,
        runtime: &mut dyn HookRuntime,
    ) -> LaunchOutcome {
        let tele = self.telemetry.clone();
        let launch_id = if tele.enabled() { next_launch_id() } else { 0 };
        tele.emit_with(|| Event::KernelLaunch {
            launch_id,
            kernel: kernel.name.clone(),
            blocks: launch.grid.0 as u64 * launch.grid.1 as u64,
            threads: launch.total_threads(),
        });
        // The launch span nests under whatever the caller has open (a
        // campaign work unit, typically) and records engine-tier timing:
        // which backend ran, prepare vs. warp-execution nanoseconds.
        let mut span = tele.span("launch");
        span.attr_with("kernel", || kernel.name.clone());
        span.attr("engine", self.config.engine.name());
        span.attr_with("launch_id", || launch_id.to_string());
        let out = self.launch_inner(kernel, args, launch, runtime, &tele, launch_id, &mut span);
        span.attr(
            "outcome",
            match &out {
                LaunchOutcome::Completed(_) => "completed",
                LaunchOutcome::Crash { .. } => "crash",
                LaunchOutcome::Hang { .. } => "hang",
            },
        );
        drop(span);
        tele.emit_with(|| Event::KernelExit {
            launch_id,
            kernel: kernel.name.clone(),
            outcome: match &out {
                LaunchOutcome::Completed(_) => "completed",
                LaunchOutcome::Crash { .. } => "crash",
                LaunchOutcome::Hang { .. } => "hang",
            },
            snapshot: out.stats().into(),
        });
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_inner(
        &mut self,
        kernel: &KernelDef,
        args: &[Value],
        launch: &Launch,
        runtime: &mut dyn HookRuntime,
        tele: &Telemetry,
        launch_id: u64,
        span: &mut SpanGuard,
    ) -> LaunchOutcome {
        if let Err(out) = self.validate_launch(kernel, args) {
            return out;
        }

        // Engine selection is a backend lookup; preparation (compilation
        // through the build caches) runs once per launch — campaigns
        // relaunch the same instrumented kernel thousands of times, so the
        // caches make this a lookup.
        let backend = self.config.engine.backend();
        let timed = span.active();
        let t_prepare = timed.then(Instant::now);
        let prepared = backend.prepare(kernel, &self.config);
        if let Some(t) = t_prepare {
            span.attr_with("prepare_ns", || (t.elapsed().as_nanos() as u64).to_string());
        }

        let mut st = LaunchState::fresh(&self.config, launch);
        let mut exec_ns: u64 = 0;
        let out = match self.run_block_range(
            RunCtx {
                kernel,
                args,
                launch,
                runtime,
                tele,
                launch_id,
                backend,
                prepared: &prepared,
            },
            &mut st,
            0,
            launch.total_blocks(),
            timed.then_some(&mut exec_ns),
        ) {
            Some(early) => early,
            None => st.complete(),
        };
        if timed {
            span.attr_with("exec_ns", || exec_ns.to_string());
            span.attr_with("warps", || out.stats().warps.to_string());
        }
        out
    }

    /// Argument/shared-memory validation shared by every launch entry point.
    /// `Err` carries the crash outcome to return.
    fn validate_launch(&self, kernel: &KernelDef, args: &[Value]) -> Result<(), LaunchOutcome> {
        assert_eq!(args.len(), kernel.n_params, "kernel argument count");
        for (i, a) in args.iter().enumerate() {
            assert_eq!(
                a.ty(),
                kernel.vars[i].ty,
                "argument {i} type mismatch for kernel `{}`",
                kernel.name
            );
        }
        debug_assert!(validate_kernel(kernel).is_ok(), "launching invalid kernel");
        if kernel.shared_mem_bytes > self.config.shared_mem_per_block {
            return Err(LaunchOutcome::Crash {
                reason: TrapReason::SharedMemOverflow {
                    requested: kernel.shared_mem_bytes,
                    available: self.config.shared_mem_per_block,
                },
                stats: ExecStats::default(),
            });
        }
        Ok(())
    }

    /// Execute blocks `[from, to)` in linear id order against launch state
    /// `st`. Returns `Some(outcome)` on an early exit (trap or hang, state
    /// finalized), `None` when the whole range ran to completion. Linear id
    /// `b` maps to grid position `(b % grid.0, b / grid.0)` — the same
    /// row-major order the nested grid loops always used, which is what
    /// makes "before block `b`" a well-defined resume point.
    fn run_block_range(
        &mut self,
        ctx: RunCtx<'_>,
        st: &mut LaunchState,
        from: u32,
        to: u32,
        mut exec_ns: Option<&mut u64>,
    ) -> Option<LaunchOutcome> {
        let kernel = ctx.kernel;
        let launch = ctx.launch;
        let warps_per_block = launch.threads_per_block().div_ceil(self.config.warp_width);
        for block_lin in from..to {
            let (bx, by) = (block_lin % launch.grid.0, block_lin / launch.grid.0);
            let mut shared = MemRegion::new(
                MemSpace::Shared,
                self.config.shared_mem_per_block,
                self.config.strict_memory,
            );
            if kernel.shared_mem_bytes > 0 {
                // Materialize the block's static shared allocation so
                // addresses 0..shared_mem_bytes are valid.
                shared
                    .alloc(PrimTy::F32, kernel.shared_mem_bytes / 4)
                    .expect("checked against device limit above");
            }
            let before = st.stats.work_cycles;
            for warp_id in 0..warps_per_block {
                let geom = WarpGeom {
                    grid: launch.grid,
                    block_dim: launch.block,
                    block_idx: (bx, by),
                    warp_id,
                };
                let t_warp = exec_ns.is_some().then(Instant::now);
                let run_result = ctx.backend.run_warp(
                    ctx.prepared,
                    kernel,
                    WarpCtx {
                        cfg: &self.config,
                        global: &mut self.mem,
                        shared: &mut shared,
                        runtime: ctx.runtime,
                        stats: &mut st.stats,
                        budget: &mut st.budget,
                        geom,
                        args: ctx.args,
                        tele: ctx.tele,
                        launch_id: ctx.launch_id,
                    },
                );
                if let (Some(ns), Some(t)) = (exec_ns.as_deref_mut(), t_warp) {
                    *ns += t.elapsed().as_nanos() as u64;
                }
                match run_result {
                    Ok(()) => {}
                    Err(ExecErr::Trap(reason)) => {
                        finalize(&mut st.stats, &st.sm_cycles);
                        return Some(LaunchOutcome::Crash {
                            reason,
                            stats: st.stats.clone(),
                        });
                    }
                    Err(ExecErr::Hang) => {
                        finalize(&mut st.stats, &st.sm_cycles);
                        return Some(LaunchOutcome::Hang {
                            stats: st.stats.clone(),
                        });
                    }
                }
            }
            st.stats.blocks += 1;
            let block_cycles = st.stats.work_cycles - before;
            st.sm_cycles[(block_lin % self.config.num_sms) as usize] += block_cycles;
        }
        None
    }

    /// Run `kernel` to completion like [`Device::launch`], capturing a
    /// [`Snapshot`] before each block in `boundaries` and a state
    /// fingerprint before each block in `fences` (boundary `b` = "block `b`
    /// has not executed yet"; boundary `total_blocks` is the post-run
    /// state). This is the checkpoint reference pass: one full fault-free
    /// execution whose snapshots every injection in the campaign restores.
    ///
    /// Boundaries the run never reaches (trap or hang first) are absent from
    /// the result, as are fences whose `runtime` declines
    /// [`HookRuntime::state_fingerprint`].
    pub fn capture_launch(
        &mut self,
        kernel: &KernelDef,
        args: &[Value],
        launch: &Launch,
        runtime: &mut dyn HookRuntime,
        boundaries: &[u32],
        fences: &[u32],
    ) -> CaptureRun {
        if let Err(out) = self.validate_launch(kernel, args) {
            return CaptureRun {
                outcome: out,
                snapshots: Vec::new(),
                fences: Vec::new(),
            };
        }
        let backend = self.config.engine.backend();
        let prepared = backend.prepare(kernel, &self.config);
        let tele = self.telemetry.clone();
        let total = launch.total_blocks();

        // Merge both boundary sets into one sorted stop list.
        let mut stops: Vec<u32> = boundaries
            .iter()
            .chain(fences.iter())
            .map(|b| (*b).min(total))
            .collect();
        stops.sort_unstable();
        stops.dedup();

        let mut st = LaunchState::fresh(&self.config, launch);
        let mut run = CaptureRun {
            outcome: LaunchOutcome::Completed(ExecStats::default()),
            snapshots: Vec::new(),
            fences: Vec::new(),
        };
        let mut cursor = 0u32;
        for stop in stops.into_iter().chain(std::iter::once(total)) {
            if let Some(early) = self.run_block_range(
                RunCtx {
                    kernel,
                    args,
                    launch,
                    runtime: &mut *runtime,
                    tele: &tele,
                    launch_id: 0,
                    backend,
                    prepared: &prepared,
                },
                &mut st,
                cursor,
                stop,
                None,
            ) {
                run.outcome = early;
                return run;
            }
            cursor = stop;
            if boundaries.contains(&stop) {
                run.snapshots.push((stop, self.snapshot_at(&st, stop)));
            }
            if fences.contains(&stop) {
                if let Some(fp) = self.state_fingerprint(&st, &*runtime) {
                    run.fences.push((stop, fp));
                }
            }
            if stop == total {
                break;
            }
        }
        run.outcome = st.complete();
        run
    }

    /// Restore `snap` and run the remaining blocks to completion — the
    /// resumed launch is bit-identical (outcome, stats, memory, hook
    /// deliveries) to a full launch whose first `snap.next_block()` blocks
    /// were fault-free, because that is exactly what the snapshot recorded.
    pub fn resume_launch(
        &mut self,
        kernel: &KernelDef,
        args: &[Value],
        launch: &Launch,
        runtime: &mut dyn HookRuntime,
        snap: &Snapshot,
    ) -> Result<LaunchOutcome, SnapshotError> {
        self.resume_spliced(kernel, args, launch, runtime, snap, u32::MAX, 0)
            .map(|s| match s {
                Spliced::Ran(out) => out,
                Spliced::Reconverged { .. } => {
                    unreachable!("no fence below total_blocks never reconverges")
                }
            })
    }

    /// Restore `snap`, run blocks up to the `fence` boundary, and compare
    /// the state fingerprint against `expected_fp` (from the reference
    /// capture pass). On a match the remaining blocks provably replay the
    /// fault-free reference, so execution stops and the caller splices the
    /// reference finals ([`Spliced::Reconverged`]); otherwise the run
    /// continues to its own completion ([`Spliced::Ran`]).
    ///
    /// A `fence` at or beyond the last block degrades to a plain resume.
    #[allow(clippy::too_many_arguments)]
    pub fn resume_spliced(
        &mut self,
        kernel: &KernelDef,
        args: &[Value],
        launch: &Launch,
        runtime: &mut dyn HookRuntime,
        snap: &Snapshot,
        fence: u32,
        expected_fp: u64,
    ) -> Result<Spliced, SnapshotError> {
        if snap.engine != self.config.engine {
            return Err(SnapshotError::EngineMismatch {
                snapshot: snap.engine,
                device: self.config.engine,
            });
        }
        let total = launch.total_blocks();
        if snap.next_block > total {
            return Err(SnapshotError::BlockOutOfRange {
                next_block: snap.next_block,
                total_blocks: total,
            });
        }
        if let Err(out) = self.validate_launch(kernel, args) {
            return Ok(Spliced::Ran(out));
        }
        let backend = self.config.engine.backend();
        let prepared = backend.prepare(kernel, &self.config);
        let tele = self.telemetry.clone();

        self.mem = snap.mem.clone();
        let mut st = LaunchState {
            stats: snap.stats.clone(),
            sm_cycles: snap.sm_cycles.clone(),
            budget: snap.budget,
        };
        macro_rules! ctx {
            () => {
                RunCtx {
                    kernel,
                    args,
                    launch,
                    runtime: &mut *runtime,
                    tele: &tele,
                    launch_id: 0,
                    backend,
                    prepared: &prepared,
                }
            };
        }

        let splice_at = (fence < total).then_some(fence.max(snap.next_block));
        if let Some(f) = splice_at {
            if let Some(early) = self.run_block_range(ctx!(), &mut st, snap.next_block, f, None) {
                return Ok(Spliced::Ran(early));
            }
            if self.state_fingerprint(&st, &*runtime) == Some(expected_fp) {
                return Ok(Spliced::Reconverged {
                    executed_cycles: st.stats.work_cycles - snap.stats.work_cycles,
                });
            }
            if let Some(early) = self.run_block_range(ctx!(), &mut st, f, total, None) {
                return Ok(Spliced::Ran(early));
            }
        } else if let Some(early) =
            self.run_block_range(ctx!(), &mut st, snap.next_block, total, None)
        {
            return Ok(Spliced::Ran(early));
        }
        Ok(Spliced::Ran(st.complete()))
    }

    /// Snapshot the current launch state at boundary `next_block`.
    fn snapshot_at(&self, st: &LaunchState, next_block: u32) -> Snapshot {
        Snapshot {
            engine: self.config.engine,
            next_block,
            mem: self.mem.clone(),
            stats: st.stats.clone(),
            sm_cycles: st.sm_cycles.clone(),
            budget: st.budget,
        }
    }

    /// Fingerprint everything that can influence the rest of the launch:
    /// global memory (backed extent + brk — unbacked reads are a pure
    /// function of the address), cumulative stats, per-SM tallies, the
    /// remaining budget, and the runtime's own suffix-observable state.
    /// `None` when the runtime opts out of fingerprinting.
    fn state_fingerprint(&self, st: &LaunchState, runtime: &dyn HookRuntime) -> Option<u64> {
        let rt = runtime.state_fingerprint()?;
        let mut h = Fnv1a::new();
        for w in self.mem.backed_words() {
            h.write(&w.to_le_bytes());
        }
        h.write_u64(self.mem.allocated() as u64);
        h.write_u64(st.stats.work_cycles);
        h.write_u64(st.stats.loop_cycles);
        for c in st.stats.class_counts {
            h.write_u64(c);
        }
        h.write_u64(st.stats.paired_ops);
        h.write_u64(st.stats.mem_segments);
        h.write_u64(st.stats.blocks);
        h.write_u64(st.stats.warps);
        h.write_u64(st.stats.syncs);
        h.write_u64(st.stats.hooks);
        for c in &st.sm_cycles {
            h.write_u64(*c);
        }
        h.write_u64(st.budget);
        h.write_u64(rt);
        Some(h.finish())
    }
}

/// Everything immutable a block-range execution needs (per-call view; the
/// runtime is the one mutable guest).
struct RunCtx<'a> {
    kernel: &'a KernelDef,
    args: &'a [Value],
    launch: &'a Launch,
    runtime: &'a mut dyn HookRuntime,
    tele: &'a Telemetry,
    launch_id: u64,
    backend: &'a dyn ExecBackend,
    prepared: &'a Prepared,
}

/// The launch-wide mutable state threaded through the block loop — exactly
/// what a [`Snapshot`] captures alongside global memory.
struct LaunchState {
    stats: ExecStats,
    sm_cycles: Vec<u64>,
    budget: u64,
}

impl LaunchState {
    fn fresh(config: &DeviceConfig, launch: &Launch) -> LaunchState {
        LaunchState {
            stats: ExecStats::default(),
            sm_cycles: vec![0u64; config.num_sms as usize],
            budget: launch.cycle_budget,
        }
    }

    /// Finalize after all blocks completed.
    fn complete(mut self) -> LaunchOutcome {
        finalize(&mut self.stats, &self.sm_cycles);
        LaunchOutcome::Completed(self.stats)
    }
}

fn finalize(stats: &mut ExecStats, sm_cycles: &[u64]) {
    stats.kernel_cycles = sm_cycles.iter().copied().max().unwrap_or(0).max(
        // Crashed/hung before any block finished: fall back to work cycles.
        if sm_cycles.iter().all(|c| *c == 0) {
            stats.work_cycles
        } else {
            0
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NullRuntime;
    use hauberk_kir::parser::parse_kernel;

    fn saxpy_kernel() -> KernelDef {
        parse_kernel(
            r#"kernel saxpy(y: *global f32, x: *global f32, a: f32, n: i32) {
                let i: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
                if (i < n) {
                    let v: f32 = a * load(x, i) + load(y, i);
                    store(y, i, v);
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn saxpy_computes_correctly() {
        let mut dev = Device::small_gpu();
        let n = 100u32;
        let y = dev.alloc(PrimTy::F32, n);
        let x = dev.alloc(PrimTy::F32, n);
        let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let ys: Vec<f32> = (0..n).map(|i| (i as f32) * 0.5).collect();
        dev.mem.copy_in_f32(x, &xs);
        dev.mem.copy_in_f32(y, &ys);
        let k = saxpy_kernel();
        let launch = Launch::grid1d(n.div_ceil(32), 32);
        let out = dev.launch(
            &k,
            &[
                Value::Ptr(y),
                Value::Ptr(x),
                Value::F32(2.0),
                Value::I32(n as i32),
            ],
            &launch,
            &mut NullRuntime,
        );
        assert!(out.is_completed(), "{out:?}");
        let r = dev.mem.copy_out_f32(y, n);
        for (i, v) in r.iter().enumerate().take(n as usize) {
            assert_eq!(*v, 2.0 * i as f32 + (i as f32) * 0.5);
        }
        let s = out.stats();
        assert_eq!(s.blocks, 4);
        assert!(s.kernel_cycles > 0 && s.kernel_cycles <= s.work_cycles);
    }

    #[test]
    fn loop_kernel_attributes_loop_cycles() {
        let k = parse_kernel(
            r#"kernel acc(out: *global f32, x: *global f32, n: i32) {
                let i: i32 = thread_idx_x();
                let s: f32 = 0.0;
                for (j = 0; j < n; j = j + 1) {
                    s = s + load(x, j) * load(x, j);
                }
                store(out, i, s);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::F32, 32);
        let x = dev.alloc(PrimTy::F32, 64);
        dev.mem.copy_in_f32(x, &vec![1.0; 64]);
        let launch = Launch::grid1d(1, 32);
        let r = dev.launch(
            &k,
            &[Value::Ptr(out), Value::Ptr(x), Value::I32(64)],
            &launch,
            &mut NullRuntime,
        );
        let s = r.completed_stats().unwrap();
        assert!(
            s.loop_fraction() > 0.9,
            "loop-dominant kernel: {}",
            s.loop_fraction()
        );
        assert_eq!(dev.mem.copy_out_f32(out, 1)[0], 64.0);
    }

    #[test]
    fn divergence_executes_both_arms() {
        let k = parse_kernel(
            r#"kernel d(out: *global i32) {
                let i: i32 = thread_idx_x();
                let v: i32 = 0;
                if (i % 2 == 0) {
                    v = 10;
                } else {
                    v = 20;
                }
                store(out, i, v);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::I32, 32);
        let r = dev.launch(
            &k,
            &[Value::Ptr(out)],
            &Launch::grid1d(1, 32),
            &mut NullRuntime,
        );
        assert!(r.is_completed());
        let v = dev.mem.copy_out_i32(out, 4);
        assert_eq!(v, vec![10, 20, 10, 20]);
    }

    #[test]
    fn while_and_break_reconverge() {
        let k = parse_kernel(
            r#"kernel w(out: *global i32, n: i32) {
                let i: i32 = thread_idx_x();
                let c: i32 = 0;
                while (true) {
                    c = c + 1;
                    if (c > i) {
                        break;
                    }
                }
                store(out, i, c);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::I32, 32);
        let r = dev.launch(
            &k,
            &[Value::Ptr(out), Value::I32(0)],
            &Launch::grid1d(1, 8),
            &mut NullRuntime,
        );
        assert!(r.is_completed(), "{r:?}");
        let v = dev.mem.copy_out_i32(out, 8);
        assert_eq!(v, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn infinite_loop_hangs_at_budget() {
        let k = parse_kernel(
            r#"kernel h(out: *global i32) {
                let x: i32 = 0;
                while (true) {
                    x = x + 1;
                }
                store(out, 0, x);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::I32, 4);
        let r = dev.launch(
            &k,
            &[Value::Ptr(out)],
            &Launch {
                grid: (1, 1),
                block: (1, 1),
                cycle_budget: 10_000,
            },
            &mut NullRuntime,
        );
        assert!(matches!(r, LaunchOutcome::Hang { .. }), "{r:?}");
    }

    #[test]
    fn shared_mem_overflow_fails_launch() {
        let k = parse_kernel(
            r#"kernel s(out: *global i32) shared 999999 {
                store(out, 0, 1);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::I32, 4);
        let r = dev.launch(
            &k,
            &[Value::Ptr(out)],
            &Launch::grid1d(1, 1),
            &mut NullRuntime,
        );
        assert!(matches!(
            r,
            LaunchOutcome::Crash {
                reason: TrapReason::SharedMemOverflow { .. },
                ..
            }
        ));
    }

    #[test]
    fn shared_memory_is_per_block_usable() {
        let k = parse_kernel(
            r#"kernel sh(out: *global f32) shared 256 {
                let s: *shared f32 = shared_f32();
                let i: i32 = thread_idx_x();
                store(s, i, cast<f32>(i) * 2.0);
                sync();
                store(out, block_idx_x() * block_dim_x() + i, load(s, i));
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::F32, 64);
        let r = dev.launch(
            &k,
            &[Value::Ptr(out)],
            &Launch::grid1d(2, 32),
            &mut NullRuntime,
        );
        assert!(r.is_completed(), "{r:?}");
        let v = dev.mem.copy_out_f32(out, 64);
        assert_eq!(v[5], 10.0);
        assert_eq!(v[37], 10.0);
    }

    #[test]
    fn cpu_mode_traps_on_oob() {
        let k = parse_kernel(
            r#"kernel c(p: *global i32) {
                store(p, 1000000, 1);
            }"#,
        )
        .unwrap();
        let mut dev = Device::cpu();
        let p = dev.alloc(PrimTy::I32, 16);
        let r = dev.launch(
            &k,
            &[Value::Ptr(p)],
            &Launch::grid1d(1, 1),
            &mut NullRuntime,
        );
        assert!(matches!(
            r,
            LaunchOutcome::Crash {
                reason: TrapReason::OutOfBounds { .. },
                ..
            }
        ));
    }

    #[test]
    fn gpu_mode_wraps_on_oob_silently() {
        let k = parse_kernel(
            r#"kernel g(p: *global i32) {
                store(p, 1000000, 77);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let p = dev.alloc(PrimTy::I32, 16);
        let r = dev.launch(
            &k,
            &[Value::Ptr(p)],
            &Launch::grid1d(1, 1),
            &mut NullRuntime,
        );
        assert!(r.is_completed(), "no page protection on GPU: {r:?}");
    }

    #[test]
    fn determinism_same_launch_same_stats() {
        let k = saxpy_kernel();
        let run = || {
            let mut dev = Device::small_gpu();
            let y = dev.alloc(PrimTy::F32, 64);
            let x = dev.alloc(PrimTy::F32, 64);
            dev.mem.copy_in_f32(x, &vec![1.5; 64]);
            dev.mem.copy_in_f32(y, &vec![2.5; 64]);
            let r = dev.launch(
                &k,
                &[
                    Value::Ptr(y),
                    Value::Ptr(x),
                    Value::F32(3.0),
                    Value::I32(64),
                ],
                &Launch::grid1d(2, 32),
                &mut NullRuntime,
            );
            (r.stats().clone(), dev.mem.copy_out_f32(y, 64))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn register_live_fault_corrupts_between_uses() {
        use crate::fault::{ArmedFault, FaultArm, FaultSite};
        use crate::hooks::RegCorruption;
        use hauberk_kir::builder::KernelBuilder;
        use hauberk_kir::stmt::{Hook, HookKind, Stmt};
        use hauberk_kir::{Expr, HwComponent, Ty};

        // a = 5; @fi(site 0, target a); b = 7; @fi(site 1, target b);
        // store(out,0,a); store(out,1,b);
        let mut b = KernelBuilder::new("reg");
        let out = b.param("out", Ty::global_ptr(PrimTy::I32));
        let a = b.let_("a", Ty::I32, hauberk_kir::Expr::i32(5));
        b.stmt(Stmt::Hook(Hook {
            kind: HookKind::FiPoint {
                hw: HwComponent::IAlu,
            },
            site: 0,
            args: vec![],
            target: Some(a),
        }));
        let bv = b.let_("b", Ty::I32, hauberk_kir::Expr::i32(7));
        b.stmt(Stmt::Hook(Hook {
            kind: HookKind::FiPoint {
                hw: HwComponent::IAlu,
            },
            site: 1,
            args: vec![],
            target: Some(bv),
        }));
        b.store(Expr::var(out), Expr::i32(0), Expr::var(a));
        b.store(Expr::var(out), Expr::i32(1), Expr::var(bv));
        let k = b.finish();

        /// Minimal FI runtime delivering register-live corruptions.
        struct RegFi {
            arm: FaultArm,
        }
        impl HookRuntime for RegFi {
            fn on_hook(&mut self, hook: &hauberk_kir::Hook, ctx: &mut crate::hooks::HookCtx<'_>) {
                self.arm.at_hook(hook.site, ctx);
            }
            fn register_corruption(
                &mut self,
                hook: &hauberk_kir::Hook,
                first_thread: u32,
                active: u32,
            ) -> Option<RegCorruption> {
                self.arm.poll_register(hook.site, first_thread, active, 32)
            }
        }

        // Corrupt `a` (already defined, sitting in a register) at site 1 —
        // i.e. AFTER b's definition, BETWEEN a's def and its use.
        let mut rt = RegFi {
            arm: FaultArm::new(Some(ArmedFault {
                site: FaultSite::RegisterLive { site: 1, var: a },
                thread: 0,
                occurrence: 1,
                mask: 0b10, // 5 ^ 2 = 7
            })),
        };
        let mut dev = Device::small_gpu();
        let outp = dev.alloc(PrimTy::I32, 4);
        let r = dev.launch(&k, &[Value::Ptr(outp)], &Launch::grid1d(1, 1), &mut rt);
        assert!(r.is_completed(), "{r:?}");
        assert!(rt.arm.delivered());
        let v = dev.mem.copy_out_i32(outp, 2);
        assert_eq!(v[0], 7, "a was corrupted after b's definition (5^2)");
        assert_eq!(v[1], 7, "b untouched");
    }

    #[test]
    fn atomic_add_accumulates_across_threads() {
        let k = parse_kernel(
            r#"kernel a(c: *global i32) {
                atomic_add(c, 0, 1);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let c = dev.alloc(PrimTy::I32, 4);
        let r = dev.launch(
            &k,
            &[Value::Ptr(c)],
            &Launch::grid1d(4, 32),
            &mut NullRuntime,
        );
        assert!(r.is_completed());
        assert_eq!(dev.mem.copy_out_i32(c, 1)[0], 128);
    }
}
