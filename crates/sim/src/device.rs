//! The simulated device: global memory, launch orchestration, SM time model.

use crate::backend::WarpCtx;
use crate::config::DeviceConfig;
use crate::fault::MemoryBurst;
use crate::hooks::HookRuntime;
use crate::interp::{ExecErr, WarpGeom};
use crate::memory::MemRegion;
use crate::outcome::{LaunchOutcome, TrapReason};
use crate::stats::ExecStats;
use hauberk_kir::validate::validate_kernel;
use hauberk_kir::{KernelDef, MemSpace, PrimTy, PtrVal, Value};
use hauberk_telemetry::span::SpanGuard;
use hauberk_telemetry::{next_launch_id, Event, Telemetry};
use std::time::Instant;

/// Launch geometry and budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Launch {
    /// Grid dimensions in blocks.
    pub grid: (u32, u32),
    /// Block dimensions in threads (the bundled kernels use ≤ 32 threads per
    /// block in x — one warp — so `__syncthreads` is exact; larger blocks
    /// execute warps sequentially).
    pub block: (u32, u32),
    /// Total work-cycle budget; exceeding it yields
    /// [`LaunchOutcome::Hang`]. Use [`Launch::DEFAULT_BUDGET`] for
    /// effectively unbounded runs.
    pub cycle_budget: u64,
}

impl Launch {
    /// A budget that no sane kernel reaches (but a corrupted infinite loop
    /// eventually does, in bounded wall-clock time).
    pub const DEFAULT_BUDGET: u64 = 2_000_000_000;

    /// 1-D launch helper.
    pub fn grid1d(blocks: u32, threads_per_block: u32) -> Launch {
        Launch {
            grid: (blocks, 1),
            block: (threads_per_block, 1),
            cycle_budget: Self::DEFAULT_BUDGET,
        }
    }

    /// Set the hang budget.
    pub fn with_budget(mut self, budget: u64) -> Launch {
        self.cycle_budget = budget;
        self
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid.0 as u64 * self.grid.1 as u64 * self.block.0 as u64 * self.block.1 as u64
    }
}

/// A simulated GPU (or, with [`DeviceConfig::cpu`], a protected CPU).
pub struct Device {
    /// Device configuration.
    pub config: DeviceConfig,
    /// Global memory.
    pub mem: MemRegion,
    /// Telemetry pipeline; [`Telemetry::disabled`] by default, so every
    /// emit site reduces to one branch.
    pub telemetry: Telemetry,
}

impl Device {
    /// Create a device.
    pub fn new(config: DeviceConfig) -> Self {
        let mem = MemRegion::new(
            MemSpace::Global,
            config.global_mem_bytes,
            config.strict_memory,
        );
        Device {
            config,
            mem,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry pipeline (builder style).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Default GT200-like GPU.
    pub fn gpu() -> Self {
        Device::new(DeviceConfig::gpu())
    }

    /// Small GPU for tests.
    pub fn small_gpu() -> Self {
        Device::new(DeviceConfig::small_gpu())
    }

    /// CPU-mode device (strict memory, single lane).
    pub fn cpu() -> Self {
        Device::new(DeviceConfig::cpu())
    }

    /// Allocate `n` elements of `elem` in global memory.
    ///
    /// # Panics
    /// Panics if global memory is exhausted (host-side allocation failure,
    /// not a simulated fault).
    pub fn alloc(&mut self, elem: PrimTy, n: u32) -> PtrVal {
        self.mem
            .alloc(elem, n)
            .expect("device global memory exhausted")
    }

    /// Apply a memory-corruption burst (graphics fault experiments).
    pub fn inject_memory_burst(&mut self, burst: &MemoryBurst) {
        debug_assert_eq!(burst.space, MemSpace::Global);
        self.mem.corrupt_words(burst.addr, burst.words, burst.mask);
    }

    /// Launch `kernel` with parameter values `args`.
    ///
    /// Checks shared-memory fit (the launch-time analogue of the R-Scatter
    /// compile failure) and argument arity/types, then executes every block
    /// deterministically and aggregates the SM time model.
    pub fn launch(
        &mut self,
        kernel: &KernelDef,
        args: &[Value],
        launch: &Launch,
        runtime: &mut dyn HookRuntime,
    ) -> LaunchOutcome {
        let tele = self.telemetry.clone();
        let launch_id = if tele.enabled() { next_launch_id() } else { 0 };
        tele.emit_with(|| Event::KernelLaunch {
            launch_id,
            kernel: kernel.name.clone(),
            blocks: launch.grid.0 as u64 * launch.grid.1 as u64,
            threads: launch.total_threads(),
        });
        // The launch span nests under whatever the caller has open (a
        // campaign work unit, typically) and records engine-tier timing:
        // which backend ran, prepare vs. warp-execution nanoseconds.
        let mut span = tele.span("launch");
        span.attr_with("kernel", || kernel.name.clone());
        span.attr("engine", self.config.engine.name());
        span.attr_with("launch_id", || launch_id.to_string());
        let out = self.launch_inner(kernel, args, launch, runtime, &tele, launch_id, &mut span);
        span.attr(
            "outcome",
            match &out {
                LaunchOutcome::Completed(_) => "completed",
                LaunchOutcome::Crash { .. } => "crash",
                LaunchOutcome::Hang { .. } => "hang",
            },
        );
        drop(span);
        tele.emit_with(|| Event::KernelExit {
            launch_id,
            kernel: kernel.name.clone(),
            outcome: match &out {
                LaunchOutcome::Completed(_) => "completed",
                LaunchOutcome::Crash { .. } => "crash",
                LaunchOutcome::Hang { .. } => "hang",
            },
            snapshot: out.stats().into(),
        });
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_inner(
        &mut self,
        kernel: &KernelDef,
        args: &[Value],
        launch: &Launch,
        runtime: &mut dyn HookRuntime,
        tele: &Telemetry,
        launch_id: u64,
        span: &mut SpanGuard,
    ) -> LaunchOutcome {
        assert_eq!(args.len(), kernel.n_params, "kernel argument count");
        for (i, a) in args.iter().enumerate() {
            assert_eq!(
                a.ty(),
                kernel.vars[i].ty,
                "argument {i} type mismatch for kernel `{}`",
                kernel.name
            );
        }
        debug_assert!(validate_kernel(kernel).is_ok(), "launching invalid kernel");

        let mut stats = ExecStats::default();
        if kernel.shared_mem_bytes > self.config.shared_mem_per_block {
            return LaunchOutcome::Crash {
                reason: TrapReason::SharedMemOverflow {
                    requested: kernel.shared_mem_bytes,
                    available: self.config.shared_mem_per_block,
                },
                stats,
            };
        }

        // Engine selection is a backend lookup; preparation (compilation
        // through the build caches) runs once per launch — campaigns
        // relaunch the same instrumented kernel thousands of times, so the
        // caches make this a lookup.
        let backend = self.config.engine.backend();
        let timed = span.active();
        let t_prepare = timed.then(Instant::now);
        let prepared = backend.prepare(kernel, &self.config);
        if let Some(t) = t_prepare {
            span.attr_with("prepare_ns", || (t.elapsed().as_nanos() as u64).to_string());
        }

        let tpb = launch.block.0 * launch.block.1;
        let warps_per_block = tpb.div_ceil(self.config.warp_width);
        let mut sm_cycles = vec![0u64; self.config.num_sms as usize];
        let mut budget = launch.cycle_budget;
        let mut exec_ns: u64 = 0;

        let out = 'run: {
            for by in 0..launch.grid.1 {
                for bx in 0..launch.grid.0 {
                    let block_lin = by * launch.grid.0 + bx;
                    let mut shared = MemRegion::new(
                        MemSpace::Shared,
                        self.config.shared_mem_per_block,
                        self.config.strict_memory,
                    );
                    if kernel.shared_mem_bytes > 0 {
                        // Materialize the block's static shared allocation so
                        // addresses 0..shared_mem_bytes are valid.
                        shared
                            .alloc(PrimTy::F32, kernel.shared_mem_bytes / 4)
                            .expect("checked against device limit above");
                    }
                    let before = stats.work_cycles;
                    for warp_id in 0..warps_per_block {
                        let geom = WarpGeom {
                            grid: launch.grid,
                            block_dim: launch.block,
                            block_idx: (bx, by),
                            warp_id,
                        };
                        let t_warp = timed.then(Instant::now);
                        let run_result = backend.run_warp(
                            &prepared,
                            kernel,
                            WarpCtx {
                                cfg: &self.config,
                                global: &mut self.mem,
                                shared: &mut shared,
                                runtime,
                                stats: &mut stats,
                                budget: &mut budget,
                                geom,
                                args,
                                tele,
                                launch_id,
                            },
                        );
                        if let Some(t) = t_warp {
                            exec_ns += t.elapsed().as_nanos() as u64;
                        }
                        match run_result {
                            Ok(()) => {}
                            Err(ExecErr::Trap(reason)) => {
                                finalize(&mut stats, &sm_cycles);
                                break 'run LaunchOutcome::Crash { reason, stats };
                            }
                            Err(ExecErr::Hang) => {
                                finalize(&mut stats, &sm_cycles);
                                break 'run LaunchOutcome::Hang { stats };
                            }
                        }
                    }
                    stats.blocks += 1;
                    let block_cycles = stats.work_cycles - before;
                    sm_cycles[(block_lin % self.config.num_sms) as usize] += block_cycles;
                }
            }
            finalize(&mut stats, &sm_cycles);
            LaunchOutcome::Completed(stats)
        };
        if timed {
            span.attr_with("exec_ns", || exec_ns.to_string());
            span.attr_with("warps", || out.stats().warps.to_string());
        }
        out
    }
}

fn finalize(stats: &mut ExecStats, sm_cycles: &[u64]) {
    stats.kernel_cycles = sm_cycles.iter().copied().max().unwrap_or(0).max(
        // Crashed/hung before any block finished: fall back to work cycles.
        if sm_cycles.iter().all(|c| *c == 0) {
            stats.work_cycles
        } else {
            0
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NullRuntime;
    use hauberk_kir::parser::parse_kernel;

    fn saxpy_kernel() -> KernelDef {
        parse_kernel(
            r#"kernel saxpy(y: *global f32, x: *global f32, a: f32, n: i32) {
                let i: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
                if (i < n) {
                    let v: f32 = a * load(x, i) + load(y, i);
                    store(y, i, v);
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn saxpy_computes_correctly() {
        let mut dev = Device::small_gpu();
        let n = 100u32;
        let y = dev.alloc(PrimTy::F32, n);
        let x = dev.alloc(PrimTy::F32, n);
        let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let ys: Vec<f32> = (0..n).map(|i| (i as f32) * 0.5).collect();
        dev.mem.copy_in_f32(x, &xs);
        dev.mem.copy_in_f32(y, &ys);
        let k = saxpy_kernel();
        let launch = Launch::grid1d(n.div_ceil(32), 32);
        let out = dev.launch(
            &k,
            &[
                Value::Ptr(y),
                Value::Ptr(x),
                Value::F32(2.0),
                Value::I32(n as i32),
            ],
            &launch,
            &mut NullRuntime,
        );
        assert!(out.is_completed(), "{out:?}");
        let r = dev.mem.copy_out_f32(y, n);
        for (i, v) in r.iter().enumerate().take(n as usize) {
            assert_eq!(*v, 2.0 * i as f32 + (i as f32) * 0.5);
        }
        let s = out.stats();
        assert_eq!(s.blocks, 4);
        assert!(s.kernel_cycles > 0 && s.kernel_cycles <= s.work_cycles);
    }

    #[test]
    fn loop_kernel_attributes_loop_cycles() {
        let k = parse_kernel(
            r#"kernel acc(out: *global f32, x: *global f32, n: i32) {
                let i: i32 = thread_idx_x();
                let s: f32 = 0.0;
                for (j = 0; j < n; j = j + 1) {
                    s = s + load(x, j) * load(x, j);
                }
                store(out, i, s);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::F32, 32);
        let x = dev.alloc(PrimTy::F32, 64);
        dev.mem.copy_in_f32(x, &vec![1.0; 64]);
        let launch = Launch::grid1d(1, 32);
        let r = dev.launch(
            &k,
            &[Value::Ptr(out), Value::Ptr(x), Value::I32(64)],
            &launch,
            &mut NullRuntime,
        );
        let s = r.completed_stats().unwrap();
        assert!(
            s.loop_fraction() > 0.9,
            "loop-dominant kernel: {}",
            s.loop_fraction()
        );
        assert_eq!(dev.mem.copy_out_f32(out, 1)[0], 64.0);
    }

    #[test]
    fn divergence_executes_both_arms() {
        let k = parse_kernel(
            r#"kernel d(out: *global i32) {
                let i: i32 = thread_idx_x();
                let v: i32 = 0;
                if (i % 2 == 0) {
                    v = 10;
                } else {
                    v = 20;
                }
                store(out, i, v);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::I32, 32);
        let r = dev.launch(
            &k,
            &[Value::Ptr(out)],
            &Launch::grid1d(1, 32),
            &mut NullRuntime,
        );
        assert!(r.is_completed());
        let v = dev.mem.copy_out_i32(out, 4);
        assert_eq!(v, vec![10, 20, 10, 20]);
    }

    #[test]
    fn while_and_break_reconverge() {
        let k = parse_kernel(
            r#"kernel w(out: *global i32, n: i32) {
                let i: i32 = thread_idx_x();
                let c: i32 = 0;
                while (true) {
                    c = c + 1;
                    if (c > i) {
                        break;
                    }
                }
                store(out, i, c);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::I32, 32);
        let r = dev.launch(
            &k,
            &[Value::Ptr(out), Value::I32(0)],
            &Launch::grid1d(1, 8),
            &mut NullRuntime,
        );
        assert!(r.is_completed(), "{r:?}");
        let v = dev.mem.copy_out_i32(out, 8);
        assert_eq!(v, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn infinite_loop_hangs_at_budget() {
        let k = parse_kernel(
            r#"kernel h(out: *global i32) {
                let x: i32 = 0;
                while (true) {
                    x = x + 1;
                }
                store(out, 0, x);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::I32, 4);
        let r = dev.launch(
            &k,
            &[Value::Ptr(out)],
            &Launch {
                grid: (1, 1),
                block: (1, 1),
                cycle_budget: 10_000,
            },
            &mut NullRuntime,
        );
        assert!(matches!(r, LaunchOutcome::Hang { .. }), "{r:?}");
    }

    #[test]
    fn shared_mem_overflow_fails_launch() {
        let k = parse_kernel(
            r#"kernel s(out: *global i32) shared 999999 {
                store(out, 0, 1);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::I32, 4);
        let r = dev.launch(
            &k,
            &[Value::Ptr(out)],
            &Launch::grid1d(1, 1),
            &mut NullRuntime,
        );
        assert!(matches!(
            r,
            LaunchOutcome::Crash {
                reason: TrapReason::SharedMemOverflow { .. },
                ..
            }
        ));
    }

    #[test]
    fn shared_memory_is_per_block_usable() {
        let k = parse_kernel(
            r#"kernel sh(out: *global f32) shared 256 {
                let s: *shared f32 = shared_f32();
                let i: i32 = thread_idx_x();
                store(s, i, cast<f32>(i) * 2.0);
                sync();
                store(out, block_idx_x() * block_dim_x() + i, load(s, i));
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::F32, 64);
        let r = dev.launch(
            &k,
            &[Value::Ptr(out)],
            &Launch::grid1d(2, 32),
            &mut NullRuntime,
        );
        assert!(r.is_completed(), "{r:?}");
        let v = dev.mem.copy_out_f32(out, 64);
        assert_eq!(v[5], 10.0);
        assert_eq!(v[37], 10.0);
    }

    #[test]
    fn cpu_mode_traps_on_oob() {
        let k = parse_kernel(
            r#"kernel c(p: *global i32) {
                store(p, 1000000, 1);
            }"#,
        )
        .unwrap();
        let mut dev = Device::cpu();
        let p = dev.alloc(PrimTy::I32, 16);
        let r = dev.launch(
            &k,
            &[Value::Ptr(p)],
            &Launch::grid1d(1, 1),
            &mut NullRuntime,
        );
        assert!(matches!(
            r,
            LaunchOutcome::Crash {
                reason: TrapReason::OutOfBounds { .. },
                ..
            }
        ));
    }

    #[test]
    fn gpu_mode_wraps_on_oob_silently() {
        let k = parse_kernel(
            r#"kernel g(p: *global i32) {
                store(p, 1000000, 77);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let p = dev.alloc(PrimTy::I32, 16);
        let r = dev.launch(
            &k,
            &[Value::Ptr(p)],
            &Launch::grid1d(1, 1),
            &mut NullRuntime,
        );
        assert!(r.is_completed(), "no page protection on GPU: {r:?}");
    }

    #[test]
    fn determinism_same_launch_same_stats() {
        let k = saxpy_kernel();
        let run = || {
            let mut dev = Device::small_gpu();
            let y = dev.alloc(PrimTy::F32, 64);
            let x = dev.alloc(PrimTy::F32, 64);
            dev.mem.copy_in_f32(x, &vec![1.5; 64]);
            dev.mem.copy_in_f32(y, &vec![2.5; 64]);
            let r = dev.launch(
                &k,
                &[
                    Value::Ptr(y),
                    Value::Ptr(x),
                    Value::F32(3.0),
                    Value::I32(64),
                ],
                &Launch::grid1d(2, 32),
                &mut NullRuntime,
            );
            (r.stats().clone(), dev.mem.copy_out_f32(y, 64))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn register_live_fault_corrupts_between_uses() {
        use crate::fault::{ArmedFault, FaultArm, FaultSite};
        use crate::hooks::RegCorruption;
        use hauberk_kir::builder::KernelBuilder;
        use hauberk_kir::stmt::{Hook, HookKind, Stmt};
        use hauberk_kir::{Expr, HwComponent, Ty};

        // a = 5; @fi(site 0, target a); b = 7; @fi(site 1, target b);
        // store(out,0,a); store(out,1,b);
        let mut b = KernelBuilder::new("reg");
        let out = b.param("out", Ty::global_ptr(PrimTy::I32));
        let a = b.let_("a", Ty::I32, hauberk_kir::Expr::i32(5));
        b.stmt(Stmt::Hook(Hook {
            kind: HookKind::FiPoint {
                hw: HwComponent::IAlu,
            },
            site: 0,
            args: vec![],
            target: Some(a),
        }));
        let bv = b.let_("b", Ty::I32, hauberk_kir::Expr::i32(7));
        b.stmt(Stmt::Hook(Hook {
            kind: HookKind::FiPoint {
                hw: HwComponent::IAlu,
            },
            site: 1,
            args: vec![],
            target: Some(bv),
        }));
        b.store(Expr::var(out), Expr::i32(0), Expr::var(a));
        b.store(Expr::var(out), Expr::i32(1), Expr::var(bv));
        let k = b.finish();

        /// Minimal FI runtime delivering register-live corruptions.
        struct RegFi {
            arm: FaultArm,
        }
        impl HookRuntime for RegFi {
            fn on_hook(&mut self, hook: &hauberk_kir::Hook, ctx: &mut crate::hooks::HookCtx<'_>) {
                self.arm.at_hook(hook.site, ctx);
            }
            fn register_corruption(
                &mut self,
                hook: &hauberk_kir::Hook,
                first_thread: u32,
                active: u32,
            ) -> Option<RegCorruption> {
                self.arm.poll_register(hook.site, first_thread, active, 32)
            }
        }

        // Corrupt `a` (already defined, sitting in a register) at site 1 —
        // i.e. AFTER b's definition, BETWEEN a's def and its use.
        let mut rt = RegFi {
            arm: FaultArm::new(Some(ArmedFault {
                site: FaultSite::RegisterLive { site: 1, var: a },
                thread: 0,
                occurrence: 1,
                mask: 0b10, // 5 ^ 2 = 7
            })),
        };
        let mut dev = Device::small_gpu();
        let outp = dev.alloc(PrimTy::I32, 4);
        let r = dev.launch(&k, &[Value::Ptr(outp)], &Launch::grid1d(1, 1), &mut rt);
        assert!(r.is_completed(), "{r:?}");
        assert!(rt.arm.delivered());
        let v = dev.mem.copy_out_i32(outp, 2);
        assert_eq!(v[0], 7, "a was corrupted after b's definition (5^2)");
        assert_eq!(v[1], 7, "b untouched");
    }

    #[test]
    fn atomic_add_accumulates_across_threads() {
        let k = parse_kernel(
            r#"kernel a(c: *global i32) {
                atomic_add(c, 0, 1);
            }"#,
        )
        .unwrap();
        let mut dev = Device::small_gpu();
        let c = dev.alloc(PrimTy::I32, 4);
        let r = dev.launch(
            &k,
            &[Value::Ptr(c)],
            &Launch::grid1d(4, 32),
            &mut NullRuntime,
        );
        assert!(r.is_completed());
        assert_eq!(dev.mem.copy_out_i32(c, 1)[0], 128);
    }
}
