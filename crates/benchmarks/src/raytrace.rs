//! Ray-trace — the second graphics program (a sphere ray-caster).
//!
//! Each thread casts one primary ray through its pixel, intersects a small
//! scene of spheres, and shades by depth + Lambert term. A transient fault
//! perturbs at most a pixel; like ocean-flow, no single-bit fault is a
//! *user-noticeable* corruption.

use crate::{dataset_rng, ProblemScale};
use hauberk::program::{CorrectnessSpec, HostProgram, MemBreakdown};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{KernelDef, PrimTy, Value};
use hauberk_sim::{Device, Launch};
use rand::Rng;

/// The ray-trace kernel in mini-CUDA.
pub const KERNEL_SRC: &str = r#"
kernel raytrace(frame: *global f32, spheres: *global f32, nspheres: i32, width: i32) {
    let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
    let px: i32 = tid % width;
    let py: i32 = tid / width;
    let dirx: f32 = (cast<f32>(px) - cast<f32>(width) * 0.5) * 0.05;
    let diry: f32 = (cast<f32>(py) - 16.0) * 0.05;
    let dirz: f32 = 1.0;
    let invn: f32 = rsqrt(dirx * dirx + diry * diry + 1.0);
    let dx: f32 = dirx * invn;
    let dy: f32 = diry * invn;
    let dz: f32 = dirz * invn;
    let best: f32 = 1000000.0;
    let shade: f32 = 0.05;
    for (s = 0; s < nspheres; s = s + 1) {
        let cx: f32 = load(spheres, s * 4);
        let cy: f32 = load(spheres, s * 4 + 1);
        let cz: f32 = load(spheres, s * 4 + 2);
        let rad: f32 = load(spheres, s * 4 + 3);
        let b: f32 = dx * cx + dy * cy + dz * cz;
        let c: f32 = cx * cx + cy * cy + cz * cz - rad * rad;
        let disc: f32 = b * b - c;
        if (disc > 0.0) {
            let tdist: f32 = b - sqrt(disc);
            if (tdist > 0.0) {
                if (tdist < best) {
                    best = tdist;
                    shade = min(1.0, max(0.1, 1.0 - tdist * 0.05) + rad * 0.1);
                }
            }
        }
    }
    store(frame, tid, shade);
}
"#;

/// The ray-trace graphics program.
#[derive(Debug, Clone, Copy)]
pub struct Raytrace {
    /// Frame width.
    pub width: u32,
    /// Frame height.
    pub height: u32,
    /// Scene spheres.
    pub nspheres: u32,
}

impl Raytrace {
    /// Construct at `scale`.
    pub fn new(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Quick => Raytrace {
                width: 64,
                height: 32,
                nspheres: 6,
            },
            ProblemScale::Paper => Raytrace {
                width: 256,
                height: 128,
                nspheres: 16,
            },
        }
    }

    fn pixels(&self) -> u32 {
        self.width * self.height
    }
}

impl HostProgram for Raytrace {
    fn name(&self) -> &'static str {
        "ray-trace"
    }

    fn build_kernel(&self) -> KernelDef {
        parse_kernel(KERNEL_SRC).expect("raytrace kernel parses")
    }

    fn launch(&self) -> Launch {
        Launch::grid1d(self.pixels().div_ceil(32), 32)
    }

    fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value> {
        let mut rng = dataset_rng("raytrace", dataset);
        let frame = dev.alloc(PrimTy::F32, self.pixels());
        let spheres = dev.alloc(PrimTy::F32, self.nspheres * 4);
        let mut data = Vec::with_capacity((self.nspheres * 4) as usize);
        for _ in 0..self.nspheres {
            data.push(rng.gen_range(-3.0f32..3.0)); // cx
            data.push(rng.gen_range(-2.0f32..2.0)); // cy
            data.push(rng.gen_range(4.0f32..12.0)); // cz (in front)
            data.push(rng.gen_range(0.5f32..2.0)); // radius
        }
        dev.mem.copy_in_f32(spheres, &data);
        vec![
            Value::Ptr(frame),
            Value::Ptr(spheres),
            Value::I32(self.nspheres as i32),
            Value::I32(self.width as i32),
        ]
    }

    fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
        let frame = args[0].as_ptr().expect("arg 0 is the frame");
        dev.mem
            .copy_out_f32(frame, self.pixels())
            .into_iter()
            .map(|v| v as f64)
            .collect()
    }

    fn spec(&self) -> CorrectnessSpec {
        CorrectnessSpec::GraphicsNoticeable {
            pixel_tol: 0.02,
            min_bad_pixels: 64,
        }
    }

    fn memory_breakdown(&self) -> MemBreakdown {
        MemBreakdown {
            fp_bytes: (self.pixels() + self.nspheres * 4) as u64 * 4,
            int_bytes: 2 * 4,
            ptr_bytes: 2 * 4,
        }
    }

    fn is_graphics(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::program::golden_run;

    #[test]
    fn renders_spheres_with_varied_shading() {
        let p = Raytrace::new(ProblemScale::Quick);
        let (out, _) = golden_run(&p, 0);
        assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
        let distinct = {
            let mut v: Vec<u64> = out.iter().map(|x| (x * 1e6) as u64).collect();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(distinct > 10, "scene has visible structure: {distinct}");
    }
}
