//! CPU-mode programs for the paper's Fig. 1 CPU rows.
//!
//! These run on the *strict* (page-protected) device: a single lane, out of
//! bounds traps, integer division by zero traps. Fault categories for the
//! CPU study are **stack** (local variables — ordinary FI sites), **data**
//! (memory words — [`hauberk_sim::MemoryBurst`]), and **code** (instruction
//! corruption — AST operator mutation, implemented in `hauberk-swifi`).

use crate::{dataset_rng, ProblemScale};
use hauberk::program::{CorrectnessSpec, HostProgram, MemBreakdown};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{KernelDef, PrimTy, Value};
use hauberk_sim::{Device, Launch};
use rand::Rng;

/// Which CPU program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuKind {
    /// Dense matrix multiplication (FP data, integer indexing).
    MatMul,
    /// Insertion sort (integer, index/control heavy).
    Sort,
    /// Taylor-series evaluation (FP).
    Series,
}

/// A CPU-mode benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct CpuProgram {
    /// Which program.
    pub kind: CpuKind,
    /// Problem size (matrix dimension / element count).
    pub n: u32,
}

/// Matrix multiplication source.
pub const MATMUL_SRC: &str = r#"
kernel cpu_matmul(c: *global f32, a: *global f32, b: *global f32, n: i32) {
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            let s: f32 = 0.0;
            for (k = 0; k < n; k = k + 1) {
                s = s + load(a, i * n + k) * load(b, k * n + j);
            }
            store(c, i * n + j, s);
        }
    }
}
"#;

/// Insertion sort source.
pub const SORT_SRC: &str = r#"
kernel cpu_sort(v: *global i32, n: i32) {
    for (i = 1; i < n; i = i + 1) {
        let key: i32 = load(v, i);
        let j: i32 = i - 1;
        let done: bool = false;
        while (!done) {
            if (j < 0) {
                done = true;
            } else {
                if (load(v, j) > key) {
                    store(v, j + 1, load(v, j));
                    j = j - 1;
                } else {
                    done = true;
                }
            }
        }
        store(v, j + 1, key);
    }
}
"#;

/// Taylor-series source.
pub const SERIES_SRC: &str = r#"
kernel cpu_series(out: *global f32, xs: *global f32, n: i32, terms: i32) {
    for (i = 0; i < n; i = i + 1) {
        let x: f32 = load(xs, i);
        let term: f32 = 1.0;
        let sum: f32 = 1.0;
        for (t = 1; t < terms; t = t + 1) {
            term = term * x / cast<f32>(t);
            sum = sum + term;
        }
        store(out, i, sum);
    }
}
"#;

impl CpuProgram {
    /// Construct at `scale`.
    pub fn new(kind: CpuKind, scale: ProblemScale) -> Self {
        let n = match (kind, scale) {
            (CpuKind::MatMul, ProblemScale::Quick) => 10,
            (CpuKind::MatMul, ProblemScale::Paper) => 24,
            (CpuKind::Sort, ProblemScale::Quick) => 64,
            (CpuKind::Sort, ProblemScale::Paper) => 256,
            (CpuKind::Series, ProblemScale::Quick) => 64,
            (CpuKind::Series, ProblemScale::Paper) => 512,
        };
        CpuProgram { kind, n }
    }

    /// All three programs at `scale`.
    pub fn suite(scale: ProblemScale) -> Vec<CpuProgram> {
        [CpuKind::MatMul, CpuKind::Sort, CpuKind::Series]
            .into_iter()
            .map(|k| CpuProgram::new(k, scale))
            .collect()
    }
}

impl HostProgram for CpuProgram {
    fn name(&self) -> &'static str {
        match self.kind {
            CpuKind::MatMul => "cpu-matmul",
            CpuKind::Sort => "cpu-sort",
            CpuKind::Series => "cpu-series",
        }
    }

    fn build_kernel(&self) -> KernelDef {
        let src = match self.kind {
            CpuKind::MatMul => MATMUL_SRC,
            CpuKind::Sort => SORT_SRC,
            CpuKind::Series => SERIES_SRC,
        };
        parse_kernel(src).expect("CPU kernel parses")
    }

    fn launch(&self) -> Launch {
        Launch::grid1d(1, 1)
    }

    fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value> {
        let mut rng = dataset_rng(self.name(), dataset);
        // Data-segment ballast: a real CPU process carries heap/data far
        // exceeding the working set a short kernel touches, so most "data"
        // faults of the Fig. 1 CPU study land in state that is never read
        // (not manifested). Allocate a cold region 4x the live data.
        let _ballast = dev.alloc(PrimTy::I32, self.n * self.n.max(8) / 2 * 8);
        match self.kind {
            CpuKind::MatMul => {
                let n = self.n;
                let c = dev.alloc(PrimTy::F32, n * n);
                let a = dev.alloc(PrimTy::F32, n * n);
                let b = dev.alloc(PrimTy::F32, n * n);
                let ad: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let bd: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                dev.mem.copy_in_f32(a, &ad);
                dev.mem.copy_in_f32(b, &bd);
                vec![
                    Value::Ptr(c),
                    Value::Ptr(a),
                    Value::Ptr(b),
                    Value::I32(n as i32),
                ]
            }
            CpuKind::Sort => {
                let v = dev.alloc(PrimTy::I32, self.n);
                let data: Vec<i32> = (0..self.n).map(|_| rng.gen_range(-1000..1000)).collect();
                dev.mem.copy_in_i32(v, &data);
                vec![Value::Ptr(v), Value::I32(self.n as i32)]
            }
            CpuKind::Series => {
                let out = dev.alloc(PrimTy::F32, self.n);
                let xs = dev.alloc(PrimTy::F32, self.n);
                let data: Vec<f32> = (0..self.n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
                dev.mem.copy_in_f32(xs, &data);
                vec![
                    Value::Ptr(out),
                    Value::Ptr(xs),
                    Value::I32(self.n as i32),
                    Value::I32(12),
                ]
            }
        }
    }

    fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
        let out = args[0].as_ptr().expect("arg 0 is the output");
        match self.kind {
            CpuKind::MatMul => dev
                .mem
                .copy_out_f32(out, self.n * self.n)
                .into_iter()
                .map(|v| v as f64)
                .collect(),
            CpuKind::Sort => dev
                .mem
                .copy_out_i32(out, self.n)
                .into_iter()
                .map(|v| v as f64)
                .collect(),
            CpuKind::Series => dev
                .mem
                .copy_out_f32(out, self.n)
                .into_iter()
                .map(|v| v as f64)
                .collect(),
        }
    }

    fn spec(&self) -> CorrectnessSpec {
        match self.kind {
            CpuKind::Sort => CorrectnessSpec::Exact,
            _ => CorrectnessSpec::RelAbs {
                rel: 0.01,
                abs: 1e-5,
            },
        }
    }

    fn memory_breakdown(&self) -> MemBreakdown {
        match self.kind {
            CpuKind::MatMul => MemBreakdown {
                fp_bytes: (3 * self.n * self.n) as u64 * 4,
                int_bytes: 4,
                ptr_bytes: 3 * 4,
            },
            CpuKind::Sort => MemBreakdown {
                fp_bytes: 0,
                int_bytes: self.n as u64 * 4 + 4,
                ptr_bytes: 4,
            },
            CpuKind::Series => MemBreakdown {
                fp_bytes: (2 * self.n) as u64 * 4,
                int_bytes: 8,
                ptr_bytes: 2 * 4,
            },
        }
    }

    fn is_cpu(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::program::golden_run;

    #[test]
    fn matmul_matches_host_reference() {
        let p = CpuProgram::new(CpuKind::MatMul, ProblemScale::Quick);
        let (out, _) = golden_run(&p, 0);
        // Recompute on the host.
        let mut rng = dataset_rng("cpu-matmul", 0);
        let n = p.n as usize;
        let a: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0f32;
                for k in 0..n {
                    s += a[i * n + k] * b[k * n + j];
                }
                assert!(
                    (out[i * n + j] - s as f64).abs() < 1e-5,
                    "({i},{j}): {} vs {s}",
                    out[i * n + j]
                );
            }
        }
    }

    #[test]
    fn sort_sorts() {
        let p = CpuProgram::new(CpuKind::Sort, ProblemScale::Quick);
        let (out, _) = golden_run(&p, 5);
        assert!(out.windows(2).all(|w| w[0] <= w[1]), "{out:?}");
    }

    #[test]
    fn series_approximates_exp() {
        let p = CpuProgram::new(CpuKind::Series, ProblemScale::Quick);
        let (out, _) = golden_run(&p, 0);
        let mut rng = dataset_rng("cpu-series", 0);
        for o in out.iter().take(16) {
            let x: f32 = rng.gen_range(-2.0f32..2.0);
            assert!(
                (o - (x as f64).exp()).abs() < 0.05 * (x as f64).exp().abs() + 0.05,
                "exp({x}) ~ {o}"
            );
        }
    }

    #[test]
    fn cpu_programs_run_on_strict_device() {
        for p in CpuProgram::suite(ProblemScale::Quick) {
            assert!(p.is_cpu());
            assert!(p.device_config().strict_memory);
            let (out, _) = golden_run(&p, 0);
            assert!(!out.is_empty());
        }
    }
}
