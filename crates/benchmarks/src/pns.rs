//! PNS — stochastic Petri-net simulation (the suite's integer program).
//!
//! Each thread simulates a small cyclic Petri net with an inline LCG; the
//! program reports the ensemble transition throughput per thread block (a
//! stochastic simulation's output is an aggregate statistic, not raw
//! per-trajectory noise). The protected variables
//! are integers, and the program's inputs are "parameters of a fixed
//! simulation model", so the range detectors converge after a handful of
//! training sets (§IX.C / Fig. 16) and Hauberk-L's overhead is the smallest
//! of the suite ("thanks to the fast integer arithmetic speed", §IX.A).

use crate::ProblemScale;
use hauberk::program::{CorrectnessSpec, HostProgram, MemBreakdown};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{KernelDef, PrimTy, Value};
use hauberk_sim::{Device, Launch};

/// The PNS kernel in mini-CUDA.
pub const KERNEL_SRC: &str = r#"
kernel pns(out: *global i32, steps: i32, seed0: i32, m0: i32) {
    let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
    let seed: i32 = seed0 + tid * 9973;
    let p0: i32 = m0;
    let p1: i32 = 0;
    let p2: i32 = 0;
    let fired: i32 = 0;
    for (s = 0; s < steps; s = s + 1) {
        seed = seed * 1103515245 + 12345;
        let r: i32 = (seed >> 16) & 3;
        if (r == 0) {
            if (p0 > 0) {
                p0 = p0 - 1;
                p1 = p1 + 1;
                fired = fired + 1;
            }
        }
        if (r == 1) {
            if (p1 > 0) {
                p1 = p1 - 1;
                p2 = p2 + 1;
                fired = fired + 1;
            }
        }
        if (r == 2) {
            if (p2 > 0) {
                p2 = p2 - 1;
                p0 = p0 + 1;
                fired = fired + 1;
            }
        }
    }
    store(out, tid, fired);
}
"#;

/// The PNS benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Pns {
    /// Concurrent net instances (threads).
    pub threads: u32,
    /// Simulation steps per instance (loop trip count).
    pub steps: u32,
    /// Initial marking of place 0 (the fixed model parameter).
    pub marking: i32,
}

impl Pns {
    /// Construct at `scale`.
    pub fn new(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Quick => Pns {
                threads: 256,
                steps: 200,
                marking: 8,
            },
            ProblemScale::Paper => Pns {
                threads: 1024,
                steps: 1000,
                marking: 8,
            },
        }
    }
}

impl HostProgram for Pns {
    fn name(&self) -> &'static str {
        "PNS"
    }

    fn build_kernel(&self) -> KernelDef {
        parse_kernel(KERNEL_SRC).expect("PNS kernel parses")
    }

    fn launch(&self) -> Launch {
        Launch::grid1d(self.threads.div_ceil(32), 32)
    }

    fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value> {
        let out = dev.alloc(PrimTy::I32, self.threads);
        // Different datasets = different RNG streams of the SAME model.
        let seed0 = (dataset as i32).wrapping_mul(2_654_435) + 1;
        vec![
            Value::Ptr(out),
            Value::I32(self.steps as i32),
            Value::I32(seed0),
            Value::I32(self.marking),
        ]
    }

    fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
        let out = args[0].as_ptr().expect("arg 0 is the output");
        let per_thread = dev.mem.copy_out_i32(out, self.threads);
        // The program's output is the ensemble statistic per thread block:
        // the block's total transition throughput.
        let blocks = self.threads.div_ceil(32) as usize;
        let mut agg = vec![0f64; blocks];
        for t in 0..self.threads as usize {
            agg[t / 32] += per_thread[t] as f64;
        }
        agg
    }

    fn spec(&self) -> CorrectnessSpec {
        // Max{0.01, 1%|GRi|} — §IX.B.
        CorrectnessSpec::RelAbs {
            rel: 0.01,
            abs: 0.01,
        }
    }

    fn memory_breakdown(&self) -> MemBreakdown {
        MemBreakdown {
            fp_bytes: 0,
            int_bytes: self.threads as u64 * 4 + 3 * 4,
            ptr_bytes: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::program::golden_run;

    #[test]
    fn throughput_is_positive_and_bounded() {
        let p = Pns::new(ProblemScale::Quick);
        let (out, _) = golden_run(&p, 0);
        let blocks = (p.threads / 32) as usize;
        assert_eq!(out.len(), blocks);
        for v in out.iter().take(blocks) {
            let fired = *v as i64;
            assert!(fired > 0, "the net fires");
            assert!(fired <= (p.steps as i64) * 32, "bounded by steps x lanes");
        }
    }

    #[test]
    fn different_seeds_same_model_statistics() {
        let p = Pns::new(ProblemScale::Quick);
        let avg_fired = |d: u64| {
            let (out, _) = golden_run(&p, d);
            out.iter().sum::<f64>() / p.threads as f64
        };
        let a = avg_fired(0);
        let b = avg_fired(7);
        assert!(a > 0.0);
        assert!(
            (a - b).abs() / a < 0.1,
            "fixed model => stable statistics: {a} vs {b}"
        );
    }
}
