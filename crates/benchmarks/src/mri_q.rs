//! MRI-Q — the Q-matrix computation of non-Cartesian MRI reconstruction.
//!
//! Per voxel, the kernel sums `phiMag_k · (cos, sin)(2π k·x)` over all
//! k-space samples. The two accumulators are self-accumulating; the outputs
//! naturally form the three correlation points (±magnitude and near-zero)
//! the paper measures for this program in Fig. 10.

use crate::{dataset_rng, ProblemScale};
use hauberk::program::{CorrectnessSpec, HostProgram, MemBreakdown};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{KernelDef, PrimTy, Value};
use hauberk_sim::{Device, Launch};
use rand::Rng;

/// The MRI-Q kernel in mini-CUDA.
pub const KERNEL_SRC: &str = r#"
kernel mriq(qr: *global f32, qi: *global f32, kx: *global f32, ky: *global f32, kz: *global f32, phi: *global f32, xs: *global f32, ys: *global f32, zs: *global f32, nk: i32) {
    let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
    let xv: f32 = load(xs, tid);
    let yv: f32 = load(ys, tid);
    let zv: f32 = load(zs, tid);
    let qracc: f32 = 0.0;
    let qiacc: f32 = 0.0;
    for (k = 0; k < nk; k = k + 1) {
        let arg: f32 = 6.2831853 * (load(kx, k) * xv + load(ky, k) * yv + load(kz, k) * zv);
        let mag: f32 = load(phi, k);
        qracc = qracc + mag * cos(arg);
        qiacc = qiacc + mag * sin(arg);
    }
    store(qr, tid, qracc);
    store(qi, tid, qiacc);
}
"#;

/// The MRI-Q benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct MriQ {
    /// Number of voxels (threads).
    pub voxels: u32,
    /// Number of k-space samples (loop trip count).
    pub nk: u32,
}

impl MriQ {
    /// Construct at `scale`.
    pub fn new(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Quick => MriQ {
                voxels: 512,
                nk: 96,
            },
            ProblemScale::Paper => MriQ {
                voxels: 2048,
                nk: 256,
            },
        }
    }
}

impl HostProgram for MriQ {
    fn name(&self) -> &'static str {
        "MRI-Q"
    }

    fn build_kernel(&self) -> KernelDef {
        parse_kernel(KERNEL_SRC).expect("MRI-Q kernel parses")
    }

    fn launch(&self) -> Launch {
        Launch::grid1d(self.voxels.div_ceil(32), 32)
    }

    fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value> {
        let mut rng = dataset_rng("mri-q", dataset);
        let qr = dev.alloc(PrimTy::F32, self.voxels);
        let qi = dev.alloc(PrimTy::F32, self.voxels);
        // K-space sampling is densest near DC with the strongest magnitudes
        // (low-frequency dominance, like real MR acquisitions): the
        // per-voxel sums are dominated by partially coherent terms rather
        // than cancelling random phases.
        let nlow = self.nk / 4;
        let nk = self.nk;
        let mut trajectory = |rng: &mut rand::rngs::SmallRng| -> hauberk_kir::PtrVal {
            let p = dev.alloc(PrimTy::F32, nk);
            let data: Vec<f32> = (0..nk)
                .map(|i| {
                    let span = if i < nlow { 0.005 } else { 0.5 };
                    rng.gen_range(-span..span)
                })
                .collect();
            dev.mem.copy_in_f32(p, &data);
            p
        };
        let kx = trajectory(&mut rng);
        let ky = trajectory(&mut rng);
        let kz = trajectory(&mut rng);
        let phi = {
            let p = dev.alloc(PrimTy::F32, self.nk);
            let data: Vec<f32> = (0..self.nk)
                .map(|i| {
                    let base = rng.gen_range(0.1f32..1.0);
                    if i < nlow {
                        base * 8.0
                    } else {
                        base
                    }
                })
                .collect();
            dev.mem.copy_in_f32(p, &data);
            p
        };
        let mut coords = |span: f32| -> hauberk_kir::PtrVal {
            let p = dev.alloc(PrimTy::F32, self.voxels);
            let data: Vec<f32> = (0..self.voxels)
                .map(|_| rng.gen_range(-span..span))
                .collect();
            dev.mem.copy_in_f32(p, &data);
            p
        };
        let xs = coords(1.0);
        let ys = coords(1.0);
        let zs = coords(1.0);
        vec![
            Value::Ptr(qr),
            Value::Ptr(qi),
            Value::Ptr(kx),
            Value::Ptr(ky),
            Value::Ptr(kz),
            Value::Ptr(phi),
            Value::Ptr(xs),
            Value::Ptr(ys),
            Value::Ptr(zs),
            Value::I32(self.nk as i32),
        ]
    }

    fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
        let qr = args[0].as_ptr().expect("arg 0 is Qr");
        let qi = args[1].as_ptr().expect("arg 1 is Qi");
        let mut out: Vec<f64> = dev
            .mem
            .copy_out_f32(qr, self.voxels)
            .into_iter()
            .map(|v| v as f64)
            .collect();
        out.extend(
            dev.mem
                .copy_out_f32(qi, self.voxels)
                .into_iter()
                .map(|v| v as f64),
        );
        out
    }

    fn spec(&self) -> CorrectnessSpec {
        // Max{1e-4 Max|GR|, 0.2%|GRi|} — §IX.B.
        CorrectnessSpec::MriStyle {
            global_rel: 1e-4,
            elem_rel: 0.002,
        }
    }

    fn memory_breakdown(&self) -> MemBreakdown {
        MemBreakdown {
            fp_bytes: (self.voxels * 5 + self.nk * 4) as u64 * 4,
            int_bytes: 4,
            ptr_bytes: 9 * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::program::golden_run;

    #[test]
    fn golden_run_is_finite_and_mixed_sign() {
        let p = MriQ::new(ProblemScale::Quick);
        let (out, _) = golden_run(&p, 0);
        assert_eq!(out.len(), (p.voxels * 2) as usize);
        assert!(out.iter().all(|v| v.is_finite()));
        assert!(out.iter().any(|v| *v > 0.0) && out.iter().any(|v| *v < 0.0));
    }

    #[test]
    fn loop_fraction_high() {
        let p = MriQ::new(ProblemScale::Quick);
        let kernel = p.build_kernel();
        let run = hauberk::program::run_program(
            &p,
            &kernel,
            0,
            &mut hauberk_sim::NullRuntime,
            hauberk_sim::Launch::DEFAULT_BUDGET,
        );
        let stats = run.outcome.completed_stats().unwrap();
        assert!(stats.loop_fraction() > 0.9, "{}", stats.loop_fraction());
    }
}
