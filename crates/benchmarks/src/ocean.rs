//! Ocean-flow — the graphics program of the paper's Fig. 3.
//!
//! Each thread renders one pixel of a water-height frame: a per-pixel base
//! height (the corruptible *input data stream*) plus a sum of sinusoidal
//! wave components. Fault experiments corrupt the base-field words directly
//! ([`hauberk_sim::MemoryBurst`]): one corrupted value produces the paper's
//! single spike; 10,000 produce the visible stripe.

use crate::{dataset_rng, ProblemScale};
use hauberk::program::{CorrectnessSpec, HostProgram, MemBreakdown};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{KernelDef, PrimTy, Value};
use hauberk_sim::{Device, Launch};
use rand::Rng;

/// The ocean-flow kernel in mini-CUDA.
pub const KERNEL_SRC: &str = r#"
kernel ocean(frame: *global f32, base: *global f32, waves: *global f32, nwaves: i32, width: i32, t: f32) {
    let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
    let px: i32 = tid % width;
    let py: i32 = tid / width;
    let h: f32 = load(base, tid);
    for (w = 0; w < nwaves; w = w + 1) {
        let kx: f32 = load(waves, w * 4);
        let ky: f32 = load(waves, w * 4 + 1);
        let amp: f32 = load(waves, w * 4 + 2);
        let om: f32 = load(waves, w * 4 + 3);
        h = h + amp * sin(kx * cast<f32>(px) + ky * cast<f32>(py) + om * t);
    }
    store(frame, tid, h * 0.25 + 0.5);
}
"#;

/// The ocean-flow graphics program.
#[derive(Debug, Clone, Copy)]
pub struct Ocean {
    /// Frame width.
    pub width: u32,
    /// Frame height.
    pub height: u32,
    /// Wave components.
    pub nwaves: u32,
}

impl Ocean {
    /// Construct at `scale`.
    pub fn new(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Quick => Ocean {
                width: 64,
                height: 32,
                nwaves: 8,
            },
            ProblemScale::Paper => Ocean {
                width: 256,
                height: 128,
                nwaves: 16,
            },
        }
    }

    /// Pixels per frame.
    pub fn pixels(&self) -> u32 {
        self.width * self.height
    }

    /// The device address of the base-field input stream for dataset
    /// `dataset` setups (first allocation after the frame).
    pub fn base_field_ptr(&self, args: &[Value]) -> hauberk_kir::PtrVal {
        args[1].as_ptr().expect("arg 1 is the base field")
    }
}

impl HostProgram for Ocean {
    fn name(&self) -> &'static str {
        "ocean-flow"
    }

    fn build_kernel(&self) -> KernelDef {
        parse_kernel(KERNEL_SRC).expect("ocean kernel parses")
    }

    fn launch(&self) -> Launch {
        Launch::grid1d(self.pixels().div_ceil(32), 32)
    }

    fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value> {
        let mut rng = dataset_rng("ocean", dataset);
        let frame = dev.alloc(PrimTy::F32, self.pixels());
        let base = dev.alloc(PrimTy::F32, self.pixels());
        let waves = dev.alloc(PrimTy::F32, self.nwaves * 4);
        let basedata: Vec<f32> = (0..self.pixels())
            .map(|_| rng.gen_range(-0.1f32..0.1))
            .collect();
        dev.mem.copy_in_f32(base, &basedata);
        let mut wavedata = Vec::with_capacity((self.nwaves * 4) as usize);
        for _ in 0..self.nwaves {
            wavedata.push(rng.gen_range(0.05f32..0.6)); // kx
            wavedata.push(rng.gen_range(0.05f32..0.6)); // ky
            wavedata.push(rng.gen_range(0.02f32..0.2)); // amplitude
            wavedata.push(rng.gen_range(0.5f32..2.0)); // omega
        }
        dev.mem.copy_in_f32(waves, &wavedata);
        vec![
            Value::Ptr(frame),
            Value::Ptr(base),
            Value::Ptr(waves),
            Value::I32(self.nwaves as i32),
            Value::I32(self.width as i32),
            Value::F32(1.5),
        ]
    }

    fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
        let frame = args[0].as_ptr().expect("arg 0 is the frame");
        dev.mem
            .copy_out_f32(frame, self.pixels())
            .into_iter()
            .map(|v| v as f64)
            .collect()
    }

    fn spec(&self) -> CorrectnessSpec {
        // A corruption is an SDC only when user-noticeable (§II.A).
        CorrectnessSpec::GraphicsNoticeable {
            pixel_tol: 0.02,
            min_bad_pixels: 64,
        }
    }

    fn memory_breakdown(&self) -> MemBreakdown {
        MemBreakdown {
            fp_bytes: (self.pixels() * 2 + self.nwaves * 4) as u64 * 4 + 4,
            int_bytes: 2 * 4,
            ptr_bytes: 3 * 4,
        }
    }

    fn is_graphics(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::program::golden_run;
    use hauberk_sim::{MemoryBurst, NullRuntime};

    #[test]
    fn renders_a_frame() {
        let p = Ocean::new(ProblemScale::Quick);
        let (out, _) = golden_run(&p, 0);
        assert_eq!(out.len(), p.pixels() as usize);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn single_value_corruption_is_one_spike_not_noticeable() {
        let p = Ocean::new(ProblemScale::Quick);
        let (golden, _) = golden_run(&p, 0);
        // Re-run with one corrupted input word (Fig. 3a).
        let kernel = p.build_kernel();
        let mut dev = Device::new(p.device_config());
        let args = p.setup(&mut dev, 0);
        let base = p.base_field_ptr(&args);
        dev.inject_memory_burst(&MemoryBurst::transient(base.addr + 400, 1 << 30));
        let outcome = dev.launch(&kernel, &args, &p.launch(), &mut NullRuntime);
        assert!(outcome.is_completed());
        let frame = p.read_output(&dev, &args);
        let spec = p.spec();
        let bad = spec.violations(&golden, &frame);
        assert!((1..64).contains(&bad), "one spike: {bad} bad pixels");
        assert!(!spec.is_violation(&golden, &frame), "not user-noticeable");
    }

    #[test]
    fn burst_corruption_is_a_noticeable_stripe() {
        let p = Ocean::new(ProblemScale::Quick);
        let (golden, _) = golden_run(&p, 0);
        let kernel = p.build_kernel();
        let mut dev = Device::new(p.device_config());
        let args = p.setup(&mut dev, 0);
        let base = p.base_field_ptr(&args);
        // Corrupt 500 consecutive input values (scaled-down Fig. 3b).
        dev.inject_memory_burst(&MemoryBurst {
            space: hauberk_kir::MemSpace::Global,
            addr: base.addr,
            words: 500,
            mask: 1 << 30,
        });
        let outcome = dev.launch(&kernel, &args, &p.launch(), &mut NullRuntime);
        assert!(outcome.is_completed());
        let frame = p.read_output(&dev, &args);
        assert!(
            p.spec().is_violation(&golden, &frame),
            "stripe is user-noticeable"
        );
    }
}
