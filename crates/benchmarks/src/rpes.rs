//! RPES — two-electron repulsion integrals over shell pairs.
//!
//! The defining property from the paper: RPES is the outlier whose GPU code
//! is mostly *sequential* (non-loop) — ~75% of its execution time is spent
//! outside loops (Fig. 4) — which makes Hauberk-NL's overhead exceptionally
//! high for it and lifts the suite-average Hauberk overhead from ~8.9% to
//! ~15.3% (§IX.A). The kernel therefore evaluates a long straight-line
//! Gaussian-integral prefactor chain (exp/sqrt/div-heavy) followed by a
//! short contraction loop. (The paper notes RPES was later dropped from
//! Parboil for exactly this shape.)

use crate::{dataset_rng, ProblemScale};
use hauberk::program::{CorrectnessSpec, HostProgram, MemBreakdown};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{KernelDef, PrimTy, Value};
use hauberk_sim::{Device, Launch};
use rand::Rng;

/// The RPES kernel in mini-CUDA.
pub const KERNEL_SRC: &str = r#"
kernel rpes(out: *global f32, shells: *global f32, ncontr: i32) {
    let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
    let ax: f32 = load(shells, tid * 8);
    let ay: f32 = load(shells, tid * 8 + 1);
    let az: f32 = load(shells, tid * 8 + 2);
    let aa: f32 = load(shells, tid * 8 + 3);
    let bx: f32 = load(shells, tid * 8 + 4);
    let by: f32 = load(shells, tid * 8 + 5);
    let bz: f32 = load(shells, tid * 8 + 6);
    let ab: f32 = load(shells, tid * 8 + 7);
    let zeta: f32 = aa + ab;
    let xi: f32 = aa * ab / zeta;
    let dx: f32 = ax - bx;
    let dy: f32 = ay - by;
    let dz: f32 = az - bz;
    let rab2: f32 = dx * dx + dy * dy + dz * dz;
    let kab: f32 = exp(0.0 - xi * rab2) / zeta;
    let px: f32 = (aa * ax + ab * bx) / zeta;
    let py: f32 = (aa * ay + ab * by) / zeta;
    let pz: f32 = (aa * az + ab * bz) / zeta;
    let rho: f32 = zeta * 0.5;
    let tparam: f32 = rho * (px * px + py * py + pz * pz);
    let f0a: f32 = exp(0.0 - tparam * 0.25);
    let f0b: f32 = sqrt(3.1415927 / (tparam + 0.5));
    let f0c: f32 = 1.0 / sqrt(tparam + 1.0);
    let f1a: f32 = exp(0.0 - tparam * 0.125) * f0c;
    let f1b: f32 = sqrt(tparam + 2.0) / (tparam + 1.0);
    let theta: f32 = sqrt(rho / 3.1415927);
    let omega: f32 = 34.986836 * kab * kab * theta;
    let pref1: f32 = omega * f0a * f0b;
    let pref2: f32 = omega * f1a * f1b;
    let damp: f32 = exp(0.0 - rab2 / (zeta * 4.0));
    let gnorm: f32 = sqrt(sqrt(2.0 * xi / 3.1415927));
    let base: f32 = (pref1 + pref2 * 0.5) * damp * gnorm;
    let acc: f32 = 0.0;
    for (m = 0; m < ncontr; m = m + 1) {
        acc = acc + base * exp(0.0 - cast<f32>(m) * 0.3) / (cast<f32>(m) + 1.0);
    }
    let scaled: f32 = acc * theta + base * 0.001;
    store(out, tid, scaled);
}
"#;

/// The RPES benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Rpes {
    /// Shell pairs (threads).
    pub pairs: u32,
    /// Contraction depth (loop trip count; deliberately small).
    pub ncontr: u32,
}

impl Rpes {
    /// Construct at `scale`.
    pub fn new(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Quick => Rpes {
                pairs: 512,
                ncontr: 4,
            },
            ProblemScale::Paper => Rpes {
                pairs: 2048,
                ncontr: 4,
            },
        }
    }
}

impl HostProgram for Rpes {
    fn name(&self) -> &'static str {
        "RPES"
    }

    fn build_kernel(&self) -> KernelDef {
        parse_kernel(KERNEL_SRC).expect("RPES kernel parses")
    }

    fn launch(&self) -> Launch {
        Launch::grid1d(self.pairs.div_ceil(32), 32)
    }

    fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value> {
        let mut rng = dataset_rng("rpes", dataset);
        let out = dev.alloc(PrimTy::F32, self.pairs);
        let shells = dev.alloc(PrimTy::F32, self.pairs * 8);
        let mut data = Vec::with_capacity((self.pairs * 8) as usize);
        for _ in 0..self.pairs {
            for _ in 0..2 {
                data.push(rng.gen_range(-2.0f32..2.0)); // x
                data.push(rng.gen_range(-2.0f32..2.0)); // y
                data.push(rng.gen_range(-2.0f32..2.0)); // z
                data.push(rng.gen_range(0.3f32..3.0)); // exponent
            }
        }
        dev.mem.copy_in_f32(shells, &data);
        vec![
            Value::Ptr(out),
            Value::Ptr(shells),
            Value::I32(self.ncontr as i32),
        ]
    }

    fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
        let out = args[0].as_ptr().expect("arg 0 is the output");
        dev.mem
            .copy_out_f32(out, self.pairs)
            .into_iter()
            .map(|v| v as f64)
            .collect()
    }

    fn spec(&self) -> CorrectnessSpec {
        // 2%|GRi| + 1e-9 — §IX.B.
        CorrectnessSpec::RelPlusEps {
            rel: 0.02,
            eps: 1e-9,
        }
    }

    fn memory_breakdown(&self) -> MemBreakdown {
        MemBreakdown {
            fp_bytes: (self.pairs * 9) as u64 * 4,
            int_bytes: 4,
            ptr_bytes: 2 * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::program::golden_run;

    #[test]
    fn golden_run_is_finite_nonzero() {
        let p = Rpes::new(ProblemScale::Quick);
        let (out, _) = golden_run(&p, 0);
        assert!(out.iter().all(|v| v.is_finite()));
        assert!(out.iter().any(|v| v.abs() > 0.0));
    }

    #[test]
    fn non_loop_code_dominates() {
        let p = Rpes::new(ProblemScale::Quick);
        let kernel = p.build_kernel();
        let run = hauberk::program::run_program(
            &p,
            &kernel,
            0,
            &mut hauberk_sim::NullRuntime,
            hauberk_sim::Launch::DEFAULT_BUDGET,
        );
        let stats = run.outcome.completed_stats().unwrap();
        let f = stats.loop_fraction();
        assert!(
            f < 0.5,
            "RPES must be non-loop dominated (paper: ~25% loop time), got {f}"
        );
    }
}
