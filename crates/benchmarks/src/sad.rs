//! SAD — sum of absolute differences (H.264 motion estimation).
//!
//! The suite's *exact-output* integer program: each thread computes the SADs
//! of one 4×4 macroblock against a 3×3 search window. "It does not allow
//! value errors in the output" (§IX.B), so its detected-&-masked ratio is
//! the lowest of the suite.

use crate::{dataset_rng, ProblemScale};
use hauberk::program::{CorrectnessSpec, HostProgram, MemBreakdown};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{KernelDef, PrimTy, Value};
use hauberk_sim::{Device, Launch};
use rand::Rng;

/// The SAD kernel in mini-CUDA.
pub const KERNEL_SRC: &str = r#"
kernel sad(sads: *global i32, cur: *global i32, reff: *global i32, width: i32, height: i32, mbw: i32) {
    let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
    let mbx: i32 = (tid % mbw) * 4;
    let mby: i32 = (tid / mbw) * 4;
    for (pos = 0; pos < 9; pos = pos + 1) {
        let ox: i32 = pos % 3 - 1;
        let oy: i32 = pos / 3 - 1;
        let s: i32 = 0;
        for (py = 0; py < 4; py = py + 1) {
            for (px = 0; px < 4; px = px + 1) {
                let cx: i32 = mbx + px;
                let cy: i32 = mby + py;
                let rx: i32 = min(max(cx + ox, 0), width - 1);
                let ry: i32 = min(max(cy + oy, 0), height - 1);
                let currow: *global i32 = cur + cy * width;
                let refrow: *global i32 = reff + ry * width;
                let c: i32 = load(currow, cx);
                let rr: i32 = load(refrow, rx);
                s = s + abs(c - rr);
            }
        }
        store(sads, tid * 9 + pos, s);
    }
}
"#;

/// The SAD benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Sad {
    /// Frame width in pixels (multiple of 4).
    pub width: u32,
    /// Frame height in pixels (multiple of 4).
    pub height: u32,
}

impl Sad {
    /// Construct at `scale`.
    pub fn new(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Quick => Sad {
                width: 64,
                height: 32,
            },
            ProblemScale::Paper => Sad {
                width: 128,
                height: 96,
            },
        }
    }

    fn macroblocks(&self) -> u32 {
        (self.width / 4) * (self.height / 4)
    }
}

impl HostProgram for Sad {
    fn name(&self) -> &'static str {
        "SAD"
    }

    fn build_kernel(&self) -> KernelDef {
        parse_kernel(KERNEL_SRC).expect("SAD kernel parses")
    }

    fn launch(&self) -> Launch {
        Launch::grid1d(self.macroblocks().div_ceil(32), 32)
    }

    fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value> {
        let mut rng = dataset_rng("sad", dataset);
        let npix = self.width * self.height;
        let sads = dev.alloc(PrimTy::I32, self.macroblocks() * 9);
        let cur = dev.alloc(PrimTy::I32, npix);
        let reff = dev.alloc(PrimTy::I32, npix);
        // A reference frame plus a shifted/noised current frame (video-like).
        let refdata: Vec<i32> = (0..npix).map(|_| rng.gen_range(0..256)).collect();
        let curdata: Vec<i32> = (0..npix)
            .map(|i| {
                let v = refdata[((i + 1) % npix) as usize] + rng.gen_range(-8..8);
                v.clamp(0, 255)
            })
            .collect();
        dev.mem.copy_in_i32(cur, &curdata);
        dev.mem.copy_in_i32(reff, &refdata);
        vec![
            Value::Ptr(sads),
            Value::Ptr(cur),
            Value::Ptr(reff),
            Value::I32(self.width as i32),
            Value::I32(self.height as i32),
            Value::I32((self.width / 4) as i32),
        ]
    }

    fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
        let out = args[0].as_ptr().expect("arg 0 is the SAD table");
        dev.mem
            .copy_out_i32(out, self.macroblocks() * 9)
            .into_iter()
            .map(|v| v as f64)
            .collect()
    }

    fn spec(&self) -> CorrectnessSpec {
        CorrectnessSpec::Exact
    }

    fn memory_breakdown(&self) -> MemBreakdown {
        MemBreakdown {
            fp_bytes: 0,
            int_bytes: (self.width * self.height * 2 + self.macroblocks() * 9) as u64 * 4 + 3 * 4,
            ptr_bytes: 3 * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::program::golden_run;

    #[test]
    fn sads_are_nonnegative_and_bounded() {
        let p = Sad::new(ProblemScale::Quick);
        let (out, _) = golden_run(&p, 0);
        assert_eq!(out.len(), (p.macroblocks() * 9) as usize);
        // 16 pixels * max diff 255.
        assert!(out.iter().all(|v| *v >= 0.0 && *v <= 16.0 * 255.0));
        assert!(out.iter().any(|v| *v > 0.0));
    }

    #[test]
    fn loop_fraction_high() {
        let p = Sad::new(ProblemScale::Quick);
        let kernel = p.build_kernel();
        let run = hauberk::program::run_program(
            &p,
            &kernel,
            0,
            &mut hauberk_sim::NullRuntime,
            hauberk_sim::Launch::DEFAULT_BUDGET,
        );
        let stats = run.outcome.completed_stats().unwrap();
        assert!(stats.loop_fraction() > 0.9, "{}", stats.loop_fraction());
    }
}
