#![warn(missing_docs)]

//! # hauberk-benchmarks — the evaluation workloads
//!
//! KIR re-implementations of the benchmark programs the paper evaluates:
//!
//! | Program  | Domain                                   | Data     | Notes |
//! |----------|------------------------------------------|----------|-------|
//! | CP       | coulombic potential (Fig. 9's kernel)    | FP       | self-accumulating energies, loop-dominant |
//! | MRI-FHD  | MRI reconstruction (FHd)                 | FP       | vector inputs → imprecise range detectors (Fig. 16) |
//! | MRI-Q    | MRI reconstruction (Q)                   | FP       | the Fig. 10 value-distribution subject |
//! | PNS      | stochastic Petri-net simulation          | integer  | the one integer program; tight ranges |
//! | RPES     | two-electron repulsion integrals         | FP       | ~75% *non-loop* execution time |
//! | SAD      | sum of absolute differences (H.264)      | integer  | exact output-correctness requirement |
//! | TPACF    | two-point angular correlation function   | FP/int   | >½ shared memory; write-and-verify retry loop |
//! | ocean    | ocean-flow rendering (graphics)          | FP       | Fig. 3's corrupted-frame subject |
//! | ray      | sphere ray-tracer (graphics)             | FP       | second graphics program |
//! | cpu-*    | CPU-mode programs (matmul, sort, series) | mixed    | Fig. 1's CPU rows |
//!
//! Every program implements [`hauberk::HostProgram`]: a baseline kernel in
//! mini-CUDA source (visible via `KERNEL_SRC` constants), a seeded dataset
//! generator (each `dataset` value is a distinct input set; 52 are used for
//! the false-positive study), launch geometry, output read-back, the paper's
//! output-correctness spec, and the Fig. 2 memory breakdown.

pub mod cp;
pub mod cpu;
pub mod mri_fhd;
pub mod mri_q;
pub mod ocean;
pub mod pns;
pub mod raytrace;
pub mod rpes;
pub mod sad;
pub mod suite;
pub mod tpacf;

pub use suite::{all_programs, cpu_suite, graphics_suite, hpc_suite, program_by_name};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Deterministic RNG for program `name`, dataset `dataset`.
pub(crate) fn dataset_rng(name: &str, dataset: u64) -> SmallRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    SmallRng::seed_from_u64(h ^ dataset.wrapping_mul(0x9e3779b97f4a7c15))
}

/// Problem scale: `Quick` keeps fault-injection campaigns fast (default for
/// tests and figures); `Paper` approaches the paper's workload sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProblemScale {
    /// Small inputs for fast campaigns.
    #[default]
    Quick,
    /// Larger inputs.
    Paper,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_rng_is_deterministic_and_program_specific() {
        use rand::Rng;
        let a: u64 = dataset_rng("cp", 0).gen();
        let b: u64 = dataset_rng("cp", 0).gen();
        let c: u64 = dataset_rng("cp", 1).gen();
        let d: u64 = dataset_rng("sad", 0).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
