//! MRI-FHD — the FHd computation of non-Cartesian MRI reconstruction.
//!
//! Same loop structure as MRI-Q, but the accumulated terms multiply *two*
//! input vectors (the rho data and the trigonometric factors), so the
//! averaged accumulator magnitude varies strongly **between datasets** — the
//! reason the paper's range detectors stay imprecise for MRI-FHD (≈30%
//! false positives at `alpha = 1` even after 50 training sets, Fig. 16)
//! until the recovery engine widens the ranges (`alpha = 100` → ~0 after 7
//! sets). The dataset generator reproduces this with a log-normal
//! per-dataset intensity factor on the rho vectors.

use crate::{dataset_rng, ProblemScale};
use hauberk::program::{CorrectnessSpec, HostProgram, MemBreakdown};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{KernelDef, PrimTy, Value};
use hauberk_sim::{Device, Launch};
use rand::Rng;

/// The MRI-FHD kernel in mini-CUDA.
pub const KERNEL_SRC: &str = r#"
kernel mrifhd(rfhd: *global f32, ifhd: *global f32, kx: *global f32, ky: *global f32, kz: *global f32, rrho: *global f32, irho: *global f32, xs: *global f32, ys: *global f32, zs: *global f32, nk: i32) {
    let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
    let xv: f32 = load(xs, tid);
    let yv: f32 = load(ys, tid);
    let zv: f32 = load(zs, tid);
    let racc: f32 = 0.0;
    let iacc: f32 = 0.0;
    for (k = 0; k < nk; k = k + 1) {
        let arg: f32 = 6.2831853 * (load(kx, k) * xv + load(ky, k) * yv + load(kz, k) * zv);
        let cs: f32 = cos(arg);
        let sn: f32 = sin(arg);
        let rr: f32 = load(rrho, k);
        let ir: f32 = load(irho, k);
        racc = racc + rr * cs - ir * sn;
        iacc = iacc + ir * cs + rr * sn;
    }
    store(rfhd, tid, racc);
    store(ifhd, tid, iacc);
}
"#;

/// The MRI-FHD benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct MriFhd {
    /// Number of voxels (threads).
    pub voxels: u32,
    /// Number of k-space samples.
    pub nk: u32,
    /// Log-normal sigma of the per-dataset intensity factor (drives the
    /// Fig. 16 false-positive behaviour).
    pub intensity_sigma: f64,
}

impl MriFhd {
    /// Construct at `scale`.
    pub fn new(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Quick => MriFhd {
                voxels: 512,
                nk: 96,
                intensity_sigma: 1.6,
            },
            ProblemScale::Paper => MriFhd {
                voxels: 2048,
                nk: 256,
                intensity_sigma: 1.6,
            },
        }
    }
}

/// Approximate standard normal from an RNG (Irwin–Hall of 12 uniforms).
fn std_normal(rng: &mut impl Rng) -> f64 {
    let s: f64 = (0..12).map(|_| rng.gen_range(0.0f64..1.0)).sum();
    s - 6.0
}

impl HostProgram for MriFhd {
    fn name(&self) -> &'static str {
        "MRI-FHD"
    }

    fn build_kernel(&self) -> KernelDef {
        parse_kernel(KERNEL_SRC).expect("MRI-FHD kernel parses")
    }

    fn launch(&self) -> Launch {
        Launch::grid1d(self.voxels.div_ceil(32), 32)
    }

    fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value> {
        let mut rng = dataset_rng("mri-fhd", dataset);
        // Per-dataset intensity: the output computation "involves
        // multiplication of the different vectors; thus, range-based
        // detectors are not that precise" (§IX.C).
        let intensity = (self.intensity_sigma * std_normal(&mut rng)).exp() as f32;

        let rfhd = dev.alloc(PrimTy::F32, self.voxels);
        let ifhd = dev.alloc(PrimTy::F32, self.voxels);
        // Low-frequency-dominated k-space, like MRI-Q: the first quarter of
        // the samples sit near DC and carry most of the rho energy.
        let nlow = self.nk / 4;
        let mut vec_low_high = |n: u32, low_span: f32, span: f32, boost: f32, scale: f32| {
            let p = dev.alloc(PrimTy::F32, n);
            let data: Vec<f32> = (0..n)
                .map(|i| {
                    if i < nlow {
                        rng.gen_range(-low_span..low_span) * boost * scale
                    } else {
                        rng.gen_range(-span..span) * scale
                    }
                })
                .collect();
            dev.mem.copy_in_f32(p, &data);
            p
        };
        let kx = vec_low_high(self.nk, 0.005, 0.5, 1.0, 1.0);
        let ky = vec_low_high(self.nk, 0.005, 0.5, 1.0, 1.0);
        let kz = vec_low_high(self.nk, 0.005, 0.5, 1.0, 1.0);
        // Rho: positive-dominated low-frequency content scaled by the
        // per-dataset intensity.
        let mut rho = |positive_bias: f32| {
            let p = dev.alloc(PrimTy::F32, self.nk);
            let data: Vec<f32> = (0..self.nk)
                .map(|i| {
                    let v = rng.gen_range(-1.0f32..1.0) + positive_bias;
                    if i < nlow {
                        v * 8.0 * intensity
                    } else {
                        v * intensity
                    }
                })
                .collect();
            dev.mem.copy_in_f32(p, &data);
            p
        };
        let rrho = rho(0.8);
        let irho = rho(0.3);
        let mut coords = |n: u32| {
            let p = dev.alloc(PrimTy::F32, n);
            let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            dev.mem.copy_in_f32(p, &data);
            p
        };
        let xs = coords(self.voxels);
        let ys = coords(self.voxels);
        let zs = coords(self.voxels);
        vec![
            Value::Ptr(rfhd),
            Value::Ptr(ifhd),
            Value::Ptr(kx),
            Value::Ptr(ky),
            Value::Ptr(kz),
            Value::Ptr(rrho),
            Value::Ptr(irho),
            Value::Ptr(xs),
            Value::Ptr(ys),
            Value::Ptr(zs),
            Value::I32(self.nk as i32),
        ]
    }

    fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
        let rf = args[0].as_ptr().expect("arg 0 is rFHD");
        let ifp = args[1].as_ptr().expect("arg 1 is iFHD");
        let mut out: Vec<f64> = dev
            .mem
            .copy_out_f32(rf, self.voxels)
            .into_iter()
            .map(|v| v as f64)
            .collect();
        out.extend(
            dev.mem
                .copy_out_f32(ifp, self.voxels)
                .into_iter()
                .map(|v| v as f64),
        );
        out
    }

    fn spec(&self) -> CorrectnessSpec {
        CorrectnessSpec::MriStyle {
            global_rel: 1e-4,
            elem_rel: 0.002,
        }
    }

    fn memory_breakdown(&self) -> MemBreakdown {
        MemBreakdown {
            fp_bytes: (self.voxels * 5 + self.nk * 5) as u64 * 4,
            int_bytes: 4,
            ptr_bytes: 10 * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::program::golden_run;

    #[test]
    fn golden_run_completes() {
        let p = MriFhd::new(ProblemScale::Quick);
        let (out, _) = golden_run(&p, 0);
        assert_eq!(out.len(), (p.voxels * 2) as usize);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dataset_intensity_varies_output_magnitude() {
        let p = MriFhd::new(ProblemScale::Quick);
        let mag = |d: u64| {
            let (out, _) = golden_run(&p, d);
            out.iter().fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let mags: Vec<f64> = (0..12).map(mag).collect();
        let max = mags.iter().cloned().fold(f64::MIN, f64::max);
        let min = mags.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min > 10.0,
            "dataset magnitudes must vary strongly (got ratio {:.2})",
            max / min
        );
    }
}
