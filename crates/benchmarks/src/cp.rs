//! CP — coulombic potential (the kernel of the paper's Fig. 9).
//!
//! Each thread evaluates the electrostatic potential at two neighbouring
//! grid points (`energyx1`, `energyx2` — the ×2 x-unrolling of the original
//! Parboil kernel) by summing `q / sqrt(dx² + dy² + z²)` over all atoms.
//! Both energies are *self-accumulating*, so Hauberk-L protects CP without
//! adding any accumulator code inside the loop (§IX.A: CP's Hauberk-L
//! overhead is small for exactly this reason).

use crate::{dataset_rng, ProblemScale};
use hauberk::program::{CorrectnessSpec, HostProgram, MemBreakdown};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{KernelDef, PrimTy, Value};
use hauberk_sim::{Device, Launch};
use rand::Rng;

/// The CP kernel in mini-CUDA.
pub const KERNEL_SRC: &str = r#"
kernel cp(energygrid: *global f32, atominfo: *global f32, natoms: i32, gridspacing: f32, width: i32) {
    let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
    let xidx: i32 = tid % width;
    let yidx: i32 = tid / width;
    let coorx: f32 = gridspacing * cast<f32>(xidx) * 2.0;
    let coory: f32 = gridspacing * cast<f32>(yidx);
    let gridspacing_u: f32 = gridspacing;
    let energyx1: f32 = 0.0;
    let energyx2: f32 = 0.0;
    for (atomid = 0; atomid < natoms; atomid = atomid + 1) {
        let arow: *global f32 = atominfo + atomid * 4;
        let dy: f32 = coory - load(arow, 1);
        let dyz2: f32 = dy * dy + load(arow, 2);
        let dx1: f32 = coorx - load(arow, 0);
        let dx2: f32 = dx1 + gridspacing_u;
        let charge: f32 = load(arow, 3);
        energyx1 = energyx1 + charge / sqrt(dx1 * dx1 + dyz2);
        energyx2 = energyx2 + charge / sqrt(dx2 * dx2 + dyz2);
    }
    store(energygrid, tid * 2, energyx1);
    store(energygrid, tid * 2 + 1, energyx2);
}
"#;

/// The CP benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Cp {
    /// Grid width in thread columns (each thread covers 2 x-points).
    pub width: u32,
    /// Grid height.
    pub height: u32,
    /// Number of atoms (inner-loop trip count).
    pub natoms: u32,
}

impl Cp {
    /// Construct at `scale`.
    pub fn new(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Quick => Cp {
                width: 32,
                height: 16,
                natoms: 96,
            },
            ProblemScale::Paper => Cp {
                width: 64,
                height: 64,
                natoms: 256,
            },
        }
    }

    fn threads(&self) -> u32 {
        self.width * self.height
    }
}

impl HostProgram for Cp {
    fn name(&self) -> &'static str {
        "CP"
    }

    fn build_kernel(&self) -> KernelDef {
        parse_kernel(KERNEL_SRC).expect("CP kernel parses")
    }

    fn launch(&self) -> Launch {
        Launch::grid1d(self.threads().div_ceil(32), 32)
    }

    fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value> {
        let mut rng = dataset_rng("cp", dataset);
        let energygrid = dev.alloc(PrimTy::F32, self.threads() * 2);
        let atominfo = dev.alloc(PrimTy::F32, self.natoms * 4);
        let mut atoms = Vec::with_capacity((self.natoms * 4) as usize);
        for _ in 0..self.natoms {
            atoms.push(rng.gen_range(0.0f32..16.0)); // x
            atoms.push(rng.gen_range(0.0f32..16.0)); // y
            atoms.push(rng.gen_range(0.25f32..4.0)); // z^2 (precomputed)
                                                     // Positive point charges, like the benchmark's atoms: the
                                                     // potential sums grow with the atom count instead of cancelling.
            atoms.push(rng.gen_range(0.25f32..2.0));
        }
        dev.mem.copy_in_f32(atominfo, &atoms);
        vec![
            Value::Ptr(energygrid),
            Value::Ptr(atominfo),
            Value::I32(self.natoms as i32),
            Value::F32(0.5),
            Value::I32(self.width as i32),
        ]
    }

    fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
        let out = args[0].as_ptr().expect("arg 0 is the energy grid");
        dev.mem
            .copy_out_f32(out, self.threads() * 2)
            .into_iter()
            .map(|v| v as f64)
            .collect()
    }

    fn spec(&self) -> CorrectnessSpec {
        CorrectnessSpec::RelAbs {
            rel: 0.01,
            abs: 1e-4,
        }
    }

    fn memory_breakdown(&self) -> MemBreakdown {
        MemBreakdown {
            fp_bytes: (self.threads() * 2 + self.natoms * 4) as u64 * 4,
            int_bytes: 2 * 4, // natoms, width
            ptr_bytes: 2 * 4, // energygrid, atominfo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::program::golden_run;

    #[test]
    fn golden_run_completes_and_is_deterministic() {
        let cp = Cp::new(ProblemScale::Quick);
        let (out1, cycles1) = golden_run(&cp, 0);
        let (out2, cycles2) = golden_run(&cp, 0);
        assert_eq!(out1, out2);
        assert_eq!(cycles1, cycles2);
        assert_eq!(out1.len(), (cp.threads() * 2) as usize);
        assert!(out1.iter().any(|v| *v != 0.0));
        assert!(out1.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn different_datasets_differ() {
        let cp = Cp::new(ProblemScale::Quick);
        let (a, _) = golden_run(&cp, 0);
        let (b, _) = golden_run(&cp, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn loop_dominates_execution_time() {
        let cp = Cp::new(ProblemScale::Quick);
        let kernel = cp.build_kernel();
        let run = hauberk::program::run_program(
            &cp,
            &kernel,
            0,
            &mut hauberk_sim::NullRuntime,
            hauberk_sim::Launch::DEFAULT_BUDGET,
        );
        let stats = run.outcome.completed_stats().unwrap();
        assert!(
            stats.loop_fraction() > 0.95,
            "CP is loop-dominant: {}",
            stats.loop_fraction()
        );
    }

    #[test]
    fn fig9_dataflow_ranks_energyx2_over_energyx1() {
        use hauberk_kir::analysis::LoopDataflow;
        let k = Cp::new(ProblemScale::Quick).build_kernel();
        let loop_stmt = k.body.0.iter().find(|s| s.is_loop()).unwrap();
        let df = LoopDataflow::of(&k, loop_stmt);
        let e1 = k.var_by_name("energyx1").unwrap();
        let e2 = k.var_by_name("energyx2").unwrap();
        assert!(df.self_accumulating.contains(&e1));
        assert!(df.self_accumulating.contains(&e2));
        assert!(
            df.cumulative_backward(e2) > df.cumulative_backward(e1),
            "energyx2 ({}) depends on dx2 -> dx1, exceeding energyx1 ({})",
            df.cumulative_backward(e2),
            df.cumulative_backward(e1)
        );
    }
}
