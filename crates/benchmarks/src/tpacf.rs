//! TPACF — two-point angular correlation function.
//!
//! Each thread owns one observed galaxy direction and bins its angular
//! separation against every random-catalog direction into a global
//! histogram. Two paper-critical details are reproduced:
//!
//! * the kernel uses **more than half the device's shared memory** per block
//!   (a cached tile of the random catalog plus the bin edges), so R-Scatter
//!   — which doubles shared-memory use — cannot be built for it (§IX.A);
//! * the histogram update is a **write-and-verify retry loop** ("performs a
//!   memory write operation until the write is successfully done and not
//!   overwritten by another thread, checked by reading the data back"). A
//!   corrupted bin index that lands in unallocated device memory makes the
//!   verify read never return the written value: the loop spins forever —
//!   the paper's hang case that only the guardian watchdog catches (§IX.B).

use crate::{dataset_rng, ProblemScale};
use hauberk::program::{CorrectnessSpec, HostProgram, MemBreakdown};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{KernelDef, PrimTy, Value};
use hauberk_sim::{Device, Launch};
use rand::Rng;

/// Number of histogram bins.
pub const NBINS: u32 = 16;

/// The TPACF kernel in mini-CUDA.
pub const KERNEL_SRC: &str = r#"
kernel tpacf(hist: *global i32, data: *global f32, rnd: *global f32, binedges: *global f32, npoints: i32, nbins: i32) shared 9216 {
    let sh: *shared f32 = shared_f32();
    let ti: i32 = thread_idx_x();
    if (ti < nbins + 1) {
        store(sh, ti, load(binedges, ti));
    }
    sync();
    let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
    let x1: f32 = load(data, tid * 3);
    let y1: f32 = load(data, tid * 3 + 1);
    let z1: f32 = load(data, tid * 3 + 2);
    let hits: i32 = 0;
    for (j = 0; j < npoints; j = j + 1) {
        let dot: f32 = x1 * load(rnd, j * 3) + y1 * load(rnd, j * 3 + 1) + z1 * load(rnd, j * 3 + 2);
        let bin: i32 = 0;
        for (b = 0; b < nbins; b = b + 1) {
            if (dot > load(sh, b)) {
                bin = bin + 1;
            }
        }
        bin = min(bin, nbins - 1);
        let done: bool = false;
        while (!done) {
            let old: i32 = load(hist, bin);
            store(hist, bin, old + 1);
            let back: i32 = load(hist, bin);
            done = back == old + 1;
        }
        hits = hits + 1;
    }
    store(hist, nbins + tid, hits);
}
"#;

/// The TPACF benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Tpacf {
    /// Observed data points (threads).
    pub points: u32,
    /// Random-catalog points (outer loop trip count).
    pub npoints: u32,
}

impl Tpacf {
    /// Construct at `scale`.
    pub fn new(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Quick => Tpacf {
                points: 128,
                npoints: 64,
            },
            ProblemScale::Paper => Tpacf {
                points: 512,
                npoints: 256,
            },
        }
    }
}

fn unit_vectors(rng: &mut impl Rng, n: u32) -> Vec<f32> {
    let mut out = Vec::with_capacity((n * 3) as usize);
    for _ in 0..n {
        // Uniform-ish directions (normalized Gaussian-free alternative).
        let mut v = [0f32; 3];
        loop {
            for x in &mut v {
                *x = rng.gen_range(-1.0f32..1.0);
            }
            let n2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
            if n2 > 0.01 && n2 <= 1.0 {
                let inv = 1.0 / n2.sqrt();
                for x in &mut v {
                    *x *= inv;
                }
                break;
            }
        }
        out.extend_from_slice(&v);
    }
    out
}

impl HostProgram for Tpacf {
    fn name(&self) -> &'static str {
        "TPACF"
    }

    fn build_kernel(&self) -> KernelDef {
        parse_kernel(KERNEL_SRC).expect("TPACF kernel parses")
    }

    fn launch(&self) -> Launch {
        Launch::grid1d(self.points.div_ceil(32), 32)
    }

    fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value> {
        let mut rng = dataset_rng("tpacf", dataset);
        let hist = dev.alloc(PrimTy::I32, NBINS + self.points);
        let data = dev.alloc(PrimTy::F32, self.points * 3);
        let rnd = dev.alloc(PrimTy::F32, self.npoints * 3);
        let edges = dev.alloc(PrimTy::F32, NBINS + 1);
        dev.mem
            .copy_in_f32(data, &unit_vectors(&mut rng, self.points));
        dev.mem
            .copy_in_f32(rnd, &unit_vectors(&mut rng, self.npoints));
        // cos(theta) bin edges from -1 to 1.
        let e: Vec<f32> = (0..=NBINS)
            .map(|i| -1.0 + 2.0 * i as f32 / NBINS as f32)
            .collect();
        dev.mem.copy_in_f32(edges, &e);
        vec![
            Value::Ptr(hist),
            Value::Ptr(data),
            Value::Ptr(rnd),
            Value::Ptr(edges),
            Value::I32(self.npoints as i32),
            Value::I32(NBINS as i32),
        ]
    }

    fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
        let out = args[0].as_ptr().expect("arg 0 is the histogram");
        dev.mem
            .copy_out_i32(out, NBINS + self.points)
            .into_iter()
            .map(|v| v as f64)
            .collect()
    }

    fn spec(&self) -> CorrectnessSpec {
        // Correlation-function output: >1% value error is an SDC (§I).
        CorrectnessSpec::RelAbs {
            rel: 0.01,
            abs: 0.0,
        }
    }

    fn memory_breakdown(&self) -> MemBreakdown {
        MemBreakdown {
            fp_bytes: ((self.points + self.npoints) * 3 + NBINS + 1) as u64 * 4,
            int_bytes: (NBINS + self.points) as u64 * 4 + 2 * 4,
            ptr_bytes: 4 * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::program::golden_run;

    #[test]
    fn per_thread_hit_counters_are_exact() {
        let p = Tpacf::new(ProblemScale::Quick);
        let (out, _) = golden_run(&p, 0);
        // Per-thread hit counters are exact (no cross-thread interference).
        for t in 0..p.points as usize {
            assert_eq!(out[NBINS as usize + t], p.npoints as f64);
        }
        // The shared histogram is positive; lockstep write collisions make
        // the bin totals an undercount (the benign race the write-and-verify
        // loop exists to detect in real TPACF), but deterministically so.
        let hist_total: f64 = out[..NBINS as usize].iter().sum();
        assert!(hist_total > 0.0);
        assert!(hist_total <= (p.points * p.npoints) as f64);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = Tpacf::new(ProblemScale::Quick);
        let (a, _) = golden_run(&p, 3);
        let (b, _) = golden_run(&p, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn uses_more_than_half_shared_memory() {
        let k = Tpacf::new(ProblemScale::Quick).build_kernel();
        let half = hauberk_sim::DeviceConfig::gpu().shared_mem_per_block / 2;
        assert!(
            k.shared_mem_bytes > half,
            "TPACF must use >1/2 shared memory so R-Scatter cannot build"
        );
    }
}
