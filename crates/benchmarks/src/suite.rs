//! Benchmark registry.

use crate::cp::Cp;
use crate::cpu::CpuProgram;
use crate::mri_fhd::MriFhd;
use crate::mri_q::MriQ;
use crate::ocean::Ocean;
use crate::pns::Pns;
use crate::raytrace::Raytrace;
use crate::rpes::Rpes;
use crate::sad::Sad;
use crate::tpacf::Tpacf;
use crate::ProblemScale;
use hauberk::program::HostProgram;

/// The seven HPC programs, in the paper's order
/// (CP, MRI-FHD, MRI-Q, PNS, RPES, SAD, TPACF).
pub fn hpc_suite(scale: ProblemScale) -> Vec<Box<dyn HostProgram>> {
    vec![
        Box::new(Cp::new(scale)),
        Box::new(MriFhd::new(scale)),
        Box::new(MriQ::new(scale)),
        Box::new(Pns::new(scale)),
        Box::new(Rpes::new(scale)),
        Box::new(Sad::new(scale)),
        Box::new(Tpacf::new(scale)),
    ]
}

/// The two graphics programs (ray-trace, ocean-flow).
pub fn graphics_suite(scale: ProblemScale) -> Vec<Box<dyn HostProgram>> {
    vec![Box::new(Raytrace::new(scale)), Box::new(Ocean::new(scale))]
}

/// The CPU-mode programs (Fig. 1's CPU rows).
pub fn cpu_suite(scale: ProblemScale) -> Vec<Box<dyn HostProgram>> {
    CpuProgram::suite(scale)
        .into_iter()
        .map(|p| Box::new(p) as Box<dyn HostProgram>)
        .collect()
}

/// Every program.
pub fn all_programs(scale: ProblemScale) -> Vec<Box<dyn HostProgram>> {
    let mut v = hpc_suite(scale);
    v.extend(graphics_suite(scale));
    v.extend(cpu_suite(scale));
    v
}

/// Look up a program by its paper name (case-insensitive).
pub fn program_by_name(name: &str, scale: ProblemScale) -> Option<Box<dyn HostProgram>> {
    all_programs(scale)
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_composition() {
        assert_eq!(hpc_suite(ProblemScale::Quick).len(), 7);
        assert_eq!(graphics_suite(ProblemScale::Quick).len(), 2);
        assert_eq!(cpu_suite(ProblemScale::Quick).len(), 3);
        assert_eq!(all_programs(ProblemScale::Quick).len(), 12);
    }

    #[test]
    fn lookup_by_name() {
        assert!(program_by_name("cp", ProblemScale::Quick).is_some());
        assert!(program_by_name("MRI-Q", ProblemScale::Quick).is_some());
        assert!(program_by_name("nope", ProblemScale::Quick).is_none());
    }

    #[test]
    fn every_program_has_a_valid_kernel() {
        for p in all_programs(ProblemScale::Quick) {
            let k = p.build_kernel();
            hauberk_kir::validate::validate_kernel(&k)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            assert!(k.n_params > 0);
        }
    }

    #[test]
    fn every_program_builds_all_hauberk_variants() {
        use hauberk::builds::{build, BuildVariant, FtOptions};
        for p in all_programs(ProblemScale::Quick) {
            let k = p.build_kernel();
            for v in [
                BuildVariant::Profiler(FtOptions::default()),
                BuildVariant::Ft(FtOptions::default()),
                BuildVariant::Fi,
                BuildVariant::FiFt(FtOptions::default()),
                BuildVariant::RScatter,
            ] {
                build(&k, v).unwrap_or_else(|e| panic!("{} {v:?}: {e}", p.name()));
            }
        }
    }

    #[test]
    fn hpc_fp_programs_have_fp_dominated_memory() {
        // Fig. 2: FP data dominates by orders of magnitude in FP programs.
        for name in ["CP", "MRI-Q", "MRI-FHD", "RPES"] {
            let p = program_by_name(name, ProblemScale::Quick).unwrap();
            let m = p.memory_breakdown();
            assert!(
                m.fp_bytes > 50 * (m.int_bytes + m.ptr_bytes),
                "{name}: fp={} int={} ptr={}",
                m.fp_bytes,
                m.int_bytes,
                m.ptr_bytes
            );
        }
        let pns = program_by_name("PNS", ProblemScale::Quick).unwrap();
        assert_eq!(pns.memory_breakdown().fp_bytes, 0);
    }
}
