//! The host-program abstraction: what a benchmark provides so the framework
//! can run it under any build variant, and the per-program output
//! correctness specifications that define "silent data corruption".

use hauberk_kir::{KernelDef, Value};
use hauberk_sim::{Device, DeviceConfig, ExecEngine, HookRuntime, Launch, LaunchOutcome};

/// Memory footprint by data class (paper Fig. 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemBreakdown {
    /// Bytes of floating-point data.
    pub fp_bytes: u64,
    /// Bytes of integer data.
    pub int_bytes: u64,
    /// Bytes of pointer data.
    pub ptr_bytes: u64,
}

/// A program's output-correctness requirement: the predicate whose violation
/// (when undetected) *is* a silent data corruption (§I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorrectnessSpec {
    /// Integer programs allow no value error in the output (SAD; §IX.B:
    /// "this ratio is low in SAD ... because it does not allow value errors").
    Exact,
    /// `|out_i - GR_i| <= max(abs, rel * |GR_i|)` — the PNS-style spec
    /// (`Max{0.01, 1%|GRi|}`).
    RelAbs {
        /// Relative tolerance.
        rel: f64,
        /// Absolute floor.
        abs: f64,
    },
    /// `|out_i - GR_i| <= rel * |GR_i| + eps` — the RPES spec
    /// (`2%|GRi| + 1e-9`).
    RelPlusEps {
        /// Relative tolerance.
        rel: f64,
        /// Additive epsilon.
        eps: f64,
    },
    /// `|out_i - GR_i| <= max(global_rel * max|GR|, elem_rel * |GR_i|)` —
    /// the MRI-Q spec (`Max{1e-4 Max|GR|, 0.2%|GRi|}`).
    MriStyle {
        /// Tolerance relative to the largest golden magnitude.
        global_rel: f64,
        /// Per-element relative tolerance.
        elem_rel: f64,
    },
    /// Graphics: an output is an SDC only when the corruption is
    /// *user-noticeable* — at least `min_bad_pixels` frame values deviating
    /// by more than `pixel_tol` (§II.A: a one-pixel spike in one frame of a
    /// 30 fps stream goes unnoticed; a 10,000-value stripe does not).
    GraphicsNoticeable {
        /// Per-pixel deviation tolerance.
        pixel_tol: f64,
        /// Minimum count of deviating values to call the frame corrupted.
        min_bad_pixels: usize,
    },
}

impl CorrectnessSpec {
    /// Number of output elements violating the per-element tolerance.
    pub fn violations(&self, golden: &[f64], out: &[f64]) -> usize {
        if golden.len() != out.len() {
            return golden.len().max(out.len());
        }
        let max_g = golden.iter().fold(0.0f64, |m, g| m.max(g.abs()));
        golden
            .iter()
            .zip(out)
            .filter(|(g, o)| {
                let err = (*g - *o).abs();
                if o.is_nan() {
                    return !g.is_nan();
                }
                match self {
                    CorrectnessSpec::Exact => err != 0.0,
                    CorrectnessSpec::RelAbs { rel, abs } => err > (rel * g.abs()).max(*abs),
                    CorrectnessSpec::RelPlusEps { rel, eps } => err > rel * g.abs() + eps,
                    CorrectnessSpec::MriStyle {
                        global_rel,
                        elem_rel,
                    } => err > (global_rel * max_g).max(elem_rel * g.abs()),
                    CorrectnessSpec::GraphicsNoticeable { pixel_tol, .. } => err > *pixel_tol,
                }
            })
            .count()
    }

    /// Whether `out` violates the correctness requirement relative to the
    /// golden run (i.e. whether an undetected such output is an SDC).
    pub fn is_violation(&self, golden: &[f64], out: &[f64]) -> bool {
        let v = self.violations(golden, out);
        match self {
            CorrectnessSpec::GraphicsNoticeable { min_bad_pixels, .. } => v >= *min_bad_pixels,
            _ => v > 0,
        }
    }
}

/// One benchmark program: kernel construction, dataset-parameterized input
/// setup, output read-back, launch geometry, and correctness spec.
pub trait HostProgram: Sync {
    /// Program name (matches the paper's benchmark names).
    fn name(&self) -> &'static str;

    /// Build the baseline kernel.
    fn build_kernel(&self) -> KernelDef;

    /// Launch geometry.
    fn launch(&self) -> Launch;

    /// Allocate and initialize device inputs for dataset `dataset`
    /// (a seed; each distinct value is a distinct input set). Returns the
    /// kernel arguments.
    fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value>;

    /// Read the program output back from the device (d2h after the kernel).
    fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64>;

    /// The output-correctness requirement.
    fn spec(&self) -> CorrectnessSpec;

    /// Memory footprint by data class (Fig. 2).
    fn memory_breakdown(&self) -> MemBreakdown;

    /// Whether this is a 3D-graphics program (frame-buffer output).
    fn is_graphics(&self) -> bool {
        false
    }

    /// Whether this program targets the CPU-mode device (the CPU rows of
    /// Fig. 1).
    fn is_cpu(&self) -> bool {
        false
    }

    /// Device configuration this program runs on.
    fn device_config(&self) -> DeviceConfig {
        if self.is_cpu() {
            DeviceConfig::cpu()
        } else {
            DeviceConfig::gpu()
        }
    }
}

/// Result of one program execution.
#[derive(Debug, Clone)]
pub struct ProgramRun {
    /// Kernel launch outcome.
    pub outcome: LaunchOutcome,
    /// Program output (present only when the launch completed).
    pub output: Option<Vec<f64>>,
}

impl ProgramRun {
    /// The output of a completed run.
    pub fn output(&self) -> Option<&[f64]> {
        self.output.as_deref()
    }
}

/// Execute `kernel` (any build variant of `prog`'s kernel) on a fresh device
/// with `prog`'s dataset `dataset`, dispatching hooks to `rt`.
pub fn run_program(
    prog: &dyn HostProgram,
    kernel: &KernelDef,
    dataset: u64,
    rt: &mut dyn HookRuntime,
    cycle_budget: u64,
) -> ProgramRun {
    run_program_traced(
        prog,
        kernel,
        dataset,
        rt,
        cycle_budget,
        &hauberk_telemetry::Telemetry::disabled(),
    )
}

/// [`run_program`] with a telemetry handle: the device emits kernel
/// launch/exit span events (and per-hook events when hot events are on)
/// into `tele`'s sink.
pub fn run_program_traced(
    prog: &dyn HostProgram,
    kernel: &KernelDef,
    dataset: u64,
    rt: &mut dyn HookRuntime,
    cycle_budget: u64,
    tele: &hauberk_telemetry::Telemetry,
) -> ProgramRun {
    run_program_with_engine(prog, kernel, dataset, rt, cycle_budget, tele, None)
}

/// [`run_program_traced`] with an explicit execution engine.
///
/// `None` keeps the program's device default (which itself follows the
/// process-wide [`hauberk_sim::default_engine`]); `Some` pins the engine for
/// this run regardless of either — campaigns use this so an `--engine` flag
/// or a differential test overrides everything downstream.
pub fn run_program_with_engine(
    prog: &dyn HostProgram,
    kernel: &KernelDef,
    dataset: u64,
    rt: &mut dyn HookRuntime,
    cycle_budget: u64,
    tele: &hauberk_telemetry::Telemetry,
    engine: Option<ExecEngine>,
) -> ProgramRun {
    let mut config = prog.device_config();
    if let Some(e) = engine {
        config.engine = e;
    }
    let mut dev = Device::new(config).with_telemetry(tele.clone());
    let args = prog.setup(&mut dev, dataset);
    let launch = prog.launch().with_budget(cycle_budget);
    let outcome = dev.launch(kernel, &args, &launch, rt);
    let output = if outcome.is_completed() {
        Some(prog.read_output(&dev, &args))
    } else {
        None
    };
    ProgramRun { outcome, output }
}

/// Run the baseline build fault-free and return the golden output and the
/// baseline **work cycles** (total cycles summed over all warps — the
/// quantity the hang watchdog budget is expressed in; simulated kernel
/// *time* is the per-SM maximum and is reported by [`run_program`]'s stats).
pub fn golden_run(prog: &dyn HostProgram, dataset: u64) -> (Vec<f64>, u64) {
    let kernel = prog.build_kernel();
    let run = run_program(
        prog,
        &kernel,
        dataset,
        &mut hauberk_sim::NullRuntime,
        Launch::DEFAULT_BUDGET,
    );
    let stats = run.outcome.completed_stats().unwrap_or_else(|| {
        panic!(
            "golden run of `{}` must complete: {:?}",
            prog.name(),
            run.outcome
        )
    });
    (
        run.output.expect("completed run has output"),
        stats.work_cycles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_spec_rejects_any_difference() {
        let s = CorrectnessSpec::Exact;
        assert!(!s.is_violation(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(s.is_violation(&[1.0, 2.0], &[1.0, 2.0000001]));
    }

    #[test]
    fn relabs_spec_mixes_floor_and_relative() {
        // PNS: Max{0.01, 1%|GRi|}
        let s = CorrectnessSpec::RelAbs {
            rel: 0.01,
            abs: 0.01,
        };
        assert!(!s.is_violation(&[100.0], &[100.9])); // within 1%
        assert!(s.is_violation(&[100.0], &[101.1]));
        assert!(!s.is_violation(&[0.0001], &[0.009])); // within floor
        assert!(s.is_violation(&[0.0001], &[0.02]));
    }

    #[test]
    fn rel_plus_eps_spec() {
        // RPES: 2%|GRi| + 1e-9
        let s = CorrectnessSpec::RelPlusEps {
            rel: 0.02,
            eps: 1e-9,
        };
        assert!(!s.is_violation(&[50.0], &[50.9]));
        assert!(s.is_violation(&[50.0], &[51.1]));
    }

    #[test]
    fn mri_spec_uses_global_max() {
        // Max{1e-4 Max|GR|, 0.2%|GRi|}
        let s = CorrectnessSpec::MriStyle {
            global_rel: 1e-4,
            elem_rel: 0.002,
        };
        let golden = [1000.0, 0.001];
        // Element 1 absolute error of 0.05 <= 1e-4 * 1000 = 0.1: ok.
        assert!(!s.is_violation(&golden, &[1000.0, 0.051]));
        assert!(s.is_violation(&golden, &[1000.0, 0.2]));
    }

    #[test]
    fn graphics_spec_needs_many_bad_pixels() {
        let s = CorrectnessSpec::GraphicsNoticeable {
            pixel_tol: 0.05,
            min_bad_pixels: 100,
        };
        let golden = vec![0.5f64; 10_000];
        let mut one_spike = golden.clone();
        one_spike[7] = 9.0;
        assert!(
            !s.is_violation(&golden, &one_spike),
            "single spike unnoticed"
        );
        let mut stripe = golden.clone();
        for p in stripe.iter_mut().take(500) {
            *p = 9.0;
        }
        assert!(s.is_violation(&golden, &stripe), "stripe is noticeable");
    }

    #[test]
    fn nan_output_is_a_violation() {
        let s = CorrectnessSpec::RelAbs { rel: 0.5, abs: 0.5 };
        assert!(s.is_violation(&[1.0], &[f64::NAN]));
    }

    #[test]
    fn length_mismatch_is_total_violation() {
        let s = CorrectnessSpec::Exact;
        assert!(s.is_violation(&[1.0, 2.0], &[1.0]));
    }
}
