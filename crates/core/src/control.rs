//! The control block: the object the CPU side allocates, copies to the GPU,
//! and reads back after the kernel completes (§V.A).
//!
//! It carries the loop detectors' configured value ranges *into* the kernel
//! and the detection results, outliers, and profiling state *out of* it. In
//! the simulator the block is held by the library runtime and handed back to
//! the host flow after the launch, rather than being marshalled through
//! device memory — the information flow is identical.

use crate::ranges::RangeSet;

/// One raised SDC alarm.
#[derive(Debug, Clone, PartialEq)]
pub struct Alarm {
    /// Which detector raised it (loop-detector index, or `usize::MAX` for
    /// the non-loop checksum/duplication detectors).
    pub detector: usize,
    /// What kind of check fired.
    pub kind: AlarmKind,
    /// The observed offending value (averaged accumulator for range checks,
    /// observed count for trip-count checks, checksum for checksum failures).
    pub observed: f64,
}

/// The check that raised an alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlarmKind {
    /// `HauberkCheckRange`: averaged accumulator outside profiled ranges.
    RangeCheck,
    /// `HauberkCheckEqual`: loop trip count differed from the invariant.
    TripCount,
    /// Kernel-exit XOR checksum was non-zero.
    Checksum,
    /// Non-loop duplication mismatch (`orig != dup`).
    NlMismatch,
}

impl AlarmKind {
    /// Stable snake-case name, used in telemetry traces.
    pub fn as_str(self) -> &'static str {
        match self {
            AlarmKind::RangeCheck => "range",
            AlarmKind::TripCount => "trip_count",
            AlarmKind::Checksum => "checksum",
            AlarmKind::NlMismatch => "nl_mismatch",
        }
    }
}

/// Identifier used for alarms raised by non-loop detectors.
pub const NON_LOOP_DETECTOR: usize = usize::MAX;

/// The control block.
#[derive(Debug, Clone, Default)]
pub struct ControlBlock {
    /// Configured value ranges, one per loop detector (from profiling).
    pub ranges: Vec<RangeSet>,
    /// Whether any SDC error bit was set during the launch.
    pub sdc_flag: bool,
    /// All alarms raised (deferred reporting: the detectors record here and
    /// the host inspects after kernel completion, §IV.A principle 3).
    pub alarms: Vec<Alarm>,
    /// Out-of-range values observed by range checks, per detector — the
    /// candidate range updates the recovery engine applies when it diagnoses
    /// a false positive (on-line learning, §V.B step iv).
    pub outliers: Vec<(usize, f64)>,
    /// Source variable name monitored by each loop detector (parallel to
    /// `ranges`; may be empty when the caller doesn't care). Only used to
    /// label telemetry events.
    pub detector_vars: Vec<String>,
}

impl ControlBlock {
    /// A control block configured with `ranges` (one per loop detector).
    pub fn with_ranges(ranges: Vec<RangeSet>) -> Self {
        ControlBlock {
            ranges,
            ..Default::default()
        }
    }

    /// Attach the monitored variable names (for telemetry labels).
    pub fn with_detector_vars(mut self, vars: Vec<String>) -> Self {
        self.detector_vars = vars;
        self
    }

    /// Name of the variable detector `det` monitors (empty when unknown or
    /// for the non-loop detector).
    pub fn var_of(&self, det: usize) -> &str {
        self.detector_vars
            .get(det)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Record an alarm and set the SDC bit.
    pub fn raise(&mut self, detector: usize, kind: AlarmKind, observed: f64) {
        self.sdc_flag = true;
        // Deduplicate identical alarms from the many threads of a launch;
        // keep one record per (detector, kind).
        if !self
            .alarms
            .iter()
            .any(|a| a.detector == detector && a.kind == kind)
        {
            self.alarms.push(Alarm {
                detector,
                kind,
                observed,
            });
        }
    }

    /// Record an out-of-range observation for later on-line learning.
    pub fn record_outlier(&mut self, detector: usize, value: f64) {
        if self.outliers.len() < 4096 {
            self.outliers.push((detector, value));
        }
    }

    /// Fold the recorded outliers into the configured ranges (called by the
    /// recovery engine once a false positive is diagnosed).
    pub fn learn_outliers(&mut self) {
        let outliers = std::mem::take(&mut self.outliers);
        for (det, v) in outliers {
            if let Some(rs) = self.ranges.get_mut(det) {
                rs.learn(v);
            }
        }
    }

    /// Clear per-run state (keep the configured ranges).
    pub fn reset_run(&mut self) {
        self.sdc_flag = false;
        self.alarms.clear();
        self.outliers.clear();
    }

    /// FNV-1a fingerprint of the *mutable per-run* state: the SDC flag, the
    /// recorded alarms, and the recorded outliers. The configured ranges and
    /// detector labels are excluded — they are launch inputs, identical for
    /// every run of a campaign, and immutable while a kernel executes.
    ///
    /// Two control blocks with equal fingerprints (and equal configuration)
    /// drive the FT detectors identically for the remainder of a launch:
    /// alarm deduplication and the outlier cap are functions of exactly this
    /// state. Checkpointed campaigns compare it at reconvergence fences.
    pub fn run_state_fingerprint(&self) -> u64 {
        let (mut h, prime) = (0xcbf29ce484222325u64, 0x100000001b3u64);
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(prime);
            }
        };
        mix(self.sdc_flag as u64);
        mix(self.alarms.len() as u64);
        for a in &self.alarms {
            mix(a.detector as u64);
            mix(a.kind.as_str().len() as u64);
            mix(a
                .kind
                .as_str()
                .as_bytes()
                .iter()
                .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(*b as u64)));
            mix(a.observed.to_bits());
        }
        mix(self.outliers.len() as u64);
        for (det, v) in &self.outliers {
            mix(*det as u64);
            mix(v.to_bits());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::profile_ranges;

    #[test]
    fn raise_sets_flag_and_dedups() {
        let mut cb = ControlBlock::default();
        assert!(!cb.sdc_flag);
        cb.raise(0, AlarmKind::RangeCheck, 5.0);
        cb.raise(0, AlarmKind::RangeCheck, 6.0);
        cb.raise(0, AlarmKind::TripCount, 3.0);
        assert!(cb.sdc_flag);
        assert_eq!(cb.alarms.len(), 2);
    }

    #[test]
    fn learn_outliers_extends_ranges() {
        let mut cb = ControlBlock::with_ranges(vec![profile_ranges(&[1.0, 2.0])]);
        assert!(!cb.ranges[0].contains(50.0));
        cb.record_outlier(0, 50.0);
        cb.learn_outliers();
        assert!(cb.ranges[0].contains(50.0));
        assert!(cb.outliers.is_empty());
    }

    #[test]
    fn reset_run_preserves_ranges() {
        let mut cb = ControlBlock::with_ranges(vec![profile_ranges(&[1.0])]);
        cb.raise(0, AlarmKind::Checksum, 1.0);
        cb.record_outlier(0, 9.0);
        cb.reset_run();
        assert!(!cb.sdc_flag);
        assert!(cb.alarms.is_empty());
        assert!(cb.outliers.is_empty());
        assert_eq!(cb.ranges.len(), 1);
    }
}
