//! The R-Scatter comparison baseline: optimized full duplication inside the
//! kernel (§III ii / §IX.A, after Dimitrov, Mantor & Zhou \[11\]).
//!
//! Every assignment's computation is duplicated into an independent
//! **redundant dataflow chain** (EDDI-style: duplicated right-hand sides read
//! the *duplicate* copies of their inputs), and the two chains are compared
//! where values become externally visible — at memory stores. The duplicated
//! computation can use idle issue slots (our dual-issue model pairs
//! independent ops of different unit classes), but — exactly as the paper
//! argues — it "seeks the same types of hardware resources or parallelism as
//! the original one", so FP-saturated kernels stay close to 2×.
//!
//! R-Scatter also doubles the kernel's memory-resource footprint (two copies
//! of the working data): the pass doubles the declared shared-memory usage,
//! which makes the build fail at launch for kernels already using more than
//! half the device's shared memory per block (TPACF — §IX.A).

use hauberk_kir::expr::{Expr, VarId};
use hauberk_kir::stmt::{Block, Hook, HookKind, Stmt};
use hauberk_kir::{BinOp, KernelDef};
use std::collections::HashMap;

/// Apply R-Scatter duplication in place. Returns the number of duplicated
/// statements.
pub fn instrument_rscatter(k: &mut KernelDef) -> usize {
    let orig_bound = k.vars.len() as VarId;
    let mut dup_of: HashMap<VarId, VarId> = HashMap::new();
    let mut n_dup = 0usize;
    let mut next_site = 30_000u32;
    let body = std::mem::take(&mut k.body);
    k.body = walk(k, body, orig_bound, &mut dup_of, &mut n_dup, &mut next_site);
    k.shared_mem_bytes = k.shared_mem_bytes.saturating_mul(2);
    n_dup
}

fn dup_var_for(k: &mut KernelDef, dup_of: &mut HashMap<VarId, VarId>, var: VarId) -> VarId {
    if let Some(d) = dup_of.get(&var) {
        return *d;
    }
    let ty = k.var_ty(var);
    let name = k.fresh_name(&format!("__rs_{}", k.vars[var as usize].name.clone()));
    let d = k.add_local(name, ty);
    dup_of.insert(var, d);
    d
}

fn walk(
    k: &mut KernelDef,
    block: Block,
    bound: VarId,
    dup_of: &mut HashMap<VarId, VarId>,
    n_dup: &mut usize,
    next_site: &mut u32,
) -> Block {
    let mut out = Vec::with_capacity(block.0.len() * 2);
    for s in block.0 {
        match s {
            Stmt::Assign { var, value } if var < bound => {
                // The redundant chain reads the duplicate copies of its
                // inputs (loop iterators have no duplicate: shared).
                let dup_rhs = value.substitute_vars(&|v| dup_of.get(&v).copied());
                let d = dup_var_for(k, dup_of, var);
                *n_dup += 1;
                // Duplicate first: self-referential definitions then read
                // the same generation on both chains.
                out.push(Stmt::assign(d, dup_rhs));
                out.push(Stmt::Assign { var, value });
            }
            Stmt::Store { ptr, index, value } => {
                // Compare the chains where the value escapes to memory.
                for v in value.vars_used() {
                    if let Some(d) = dup_of.get(&v).copied() {
                        out.push(Stmt::If {
                            cond: Expr::bin(BinOp::Ne, Expr::var(v), Expr::var(d)),
                            then_blk: Block(vec![Stmt::Hook(Hook {
                                kind: HookKind::NlMismatch,
                                site: *next_site,
                                args: vec![],
                                target: None,
                            })]),
                            else_blk: Block::new(),
                        });
                        *next_site += 1;
                    }
                }
                out.push(Stmt::Store { ptr, index, value });
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                out.push(Stmt::If {
                    cond,
                    then_blk: walk(k, then_blk, bound, dup_of, n_dup, next_site),
                    else_blk: walk(k, else_blk, bound, dup_of, n_dup, next_site),
                });
            }
            Stmt::For {
                id,
                var,
                init,
                cond,
                step,
                body,
            } => {
                out.push(Stmt::For {
                    id,
                    var,
                    init,
                    cond,
                    step,
                    body: walk(k, body, bound, dup_of, n_dup, next_site),
                });
            }
            Stmt::While { id, cond, body } => {
                out.push(Stmt::While {
                    id,
                    cond,
                    body: walk(k, body, bound, dup_of, n_dup, next_site),
                });
            }
            other => out.push(other),
        }
    }
    Block(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::parser::parse_kernel;
    use hauberk_kir::printer::print_kernel;
    use hauberk_kir::validate::validate_kernel;

    #[test]
    fn duplicates_chains_and_checks_at_stores() {
        let mut k = parse_kernel(
            r#"kernel t(out: *global f32, x: *global f32, n: i32) {
                let acc: f32 = 0.0;
                for (i = 0; i < n; i = i + 1) {
                    acc = acc + load(x, i);
                }
                store(out, 0, acc);
            }"#,
        )
        .unwrap();
        let n = instrument_rscatter(&mut k);
        k.renumber();
        validate_kernel(&k).unwrap();
        assert_eq!(n, 2); // acc init + loop accumulation
        let p = print_kernel(&k);
        // The duplicated accumulation reads the duplicate accumulator: an
        // independent redundant chain.
        assert!(p.contains("__rs_acc = __rs_acc + load(x, i);"), "{p}");
        // Exactly one comparison, at the store.
        assert_eq!(p.matches("@nl_mismatch").count(), 1);
        let cmp = p.find("if (acc != __rs_acc)").unwrap();
        let store = p.find("store(out, 0, acc);").unwrap();
        assert!(cmp < store);
    }

    #[test]
    fn doubles_shared_memory() {
        let mut k = parse_kernel(
            r#"kernel t(out: *global f32) shared 9000 {
                store(out, 0, 1.0);
            }"#,
        )
        .unwrap();
        instrument_rscatter(&mut k);
        assert_eq!(k.shared_mem_bytes, 18000);
    }

    #[test]
    fn duplicate_chain_detects_injected_divergence() {
        // Executable check: if the original chain is corrupted mid-kernel,
        // the store-point comparison fires. (Covered end-to-end in the
        // integration suite; here we just validate the structure.)
        let mut k = parse_kernel(
            r#"kernel t(out: *global f32, a: f32) {
                let b: f32 = a * 2.0;
                let c: f32 = b + 1.0;
                store(out, 0, c);
            }"#,
        )
        .unwrap();
        instrument_rscatter(&mut k);
        k.renumber();
        validate_kernel(&k).unwrap();
        let p = print_kernel(&k);
        assert!(p.contains("let __rs_c: f32 = __rs_b + 1.0;"), "{p}");
    }
}
