//! Hauberk-L: accumulation-based value-range checking for loop code (§V.B).
//!
//! For each outermost loop the pass
//!
//! 1. selects protection targets via
//!    [`hauberk_kir::analysis::select_protection_targets`] (self-accumulators
//!    first, then largest cumulative backward dataflow dependency, up to
//!    `max_var`);
//! 2. adds a per-target accumulator (`float __acc_k = 0;` before the loop,
//!    `__acc_k += target;` after the target's definition inside the loop) —
//!    skipped for self-accumulators;
//! 3. adds one shared iteration counter (`int __cnt_k = 0;` before,
//!    `__cnt_k = __cnt_k + 1;` at the top of the body);
//! 4. after the loop, calls `HauberkCheckRange(cb, det, acc / max(cnt,1))`
//!    and, when the trip count is statically derivable,
//!    `HauberkCheckEqual(cb, det, cnt, expected)`.
//!
//! In *profile mode* the range check is replaced by a profiler recording
//! hook; everything else is identical, so the profiled value is exactly the
//! value the FT build later checks.

use crate::translator::LoopDetectorSpec;
use hauberk_kir::analysis::{derive_trip_count, select_protection_targets, LoopDataflow};
use hauberk_kir::expr::{Expr, MathFn, VarId};
use hauberk_kir::stmt::{Block, Hook, HookKind, Stmt};
use hauberk_kir::types::PrimTy;
use hauberk_kir::{KernelDef, Ty};

/// Options for the loop pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopPassOptions {
    /// Maximum number of protected variables per loop (the paper's
    /// `Maxvar`; the evaluation uses 1).
    pub max_var: usize,
    /// Emit profiler recording hooks instead of FT checking hooks.
    pub profile_mode: bool,
}

impl Default for LoopPassOptions {
    fn default() -> Self {
        LoopPassOptions {
            max_var: 1,
            profile_mode: false,
        }
    }
}

struct LoopPlan {
    loop_id: u32,
    targets: Vec<VarId>,
    self_acc: Vec<bool>,
    trip: Option<Expr>,
    iterator: Option<VarId>,
}

/// Apply the loop-detector pass in place; returns the placed detectors.
pub fn instrument_loops(k: &mut KernelDef, opts: LoopPassOptions) -> Vec<LoopDetectorSpec> {
    // Analysis phase on a pristine snapshot.
    let snapshot = k.clone();
    let mut plans: Vec<LoopPlan> = Vec::new();
    collect_outermost_loops(&snapshot.body, &mut |loop_stmt| {
        let df = LoopDataflow::of(&snapshot, loop_stmt);
        let (loop_id, iterator) = match loop_stmt {
            Stmt::For { id, var, .. } => (*id, Some(*var)),
            Stmt::While { id, .. } => (*id, None),
            _ => unreachable!("collect_outermost_loops yields loops"),
        };
        let targets = select_protection_targets(&snapshot, &df, iterator, opts.max_var);
        let self_acc = targets
            .iter()
            .map(|t| df.self_accumulating.contains(t))
            .collect();
        let trip = derive_trip_count(loop_stmt);
        plans.push(LoopPlan {
            loop_id,
            targets,
            self_acc,
            trip,
            iterator,
        });
    });

    // Transform phase.
    let mut specs: Vec<LoopDetectorSpec> = Vec::new();
    let body = std::mem::take(&mut k.body);
    let mut next_site: u32 = 20_000; // loop-detector sites in their own space
    k.body = transform_block(k, body, &plans, &mut specs, opts, &mut next_site);
    specs
}

/// Call `f` on every outermost loop (top level and inside `if` arms, but not
/// inside other loops).
fn collect_outermost_loops<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in &block.0 {
        match s {
            Stmt::For { .. } | Stmt::While { .. } => f(s),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_outermost_loops(then_blk, f);
                collect_outermost_loops(else_blk, f);
            }
            _ => {}
        }
    }
}

fn as_f32(k: &KernelDef, v: VarId) -> Expr {
    if k.var_ty(v) == Ty::F32 {
        Expr::var(v)
    } else {
        Expr::Cast(PrimTy::F32, Box::new(Expr::var(v)))
    }
}

fn transform_block(
    k: &mut KernelDef,
    block: Block,
    plans: &[LoopPlan],
    specs: &mut Vec<LoopDetectorSpec>,
    opts: LoopPassOptions,
    next_site: &mut u32,
) -> Block {
    let mut out = Vec::with_capacity(block.0.len());
    for s in block.0 {
        match s {
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let then_blk = transform_block(k, then_blk, plans, specs, opts, next_site);
                let else_blk = transform_block(k, else_blk, plans, specs, opts, next_site);
                out.push(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                });
            }
            Stmt::For { id, .. } | Stmt::While { id, .. }
                if plans.iter().any(|p| p.loop_id == id_of(&s)) =>
            {
                let _ = id;
                let plan = plans
                    .iter()
                    .find(|p| p.loop_id == id_of(&s))
                    .expect("checked in guard");
                instrument_one_loop(k, s, plan, specs, opts, next_site, &mut out);
            }
            other => out.push(other),
        }
    }
    Block(out)
}

fn id_of(s: &Stmt) -> u32 {
    match s {
        Stmt::For { id, .. } | Stmt::While { id, .. } => *id,
        _ => u32::MAX,
    }
}

fn instrument_one_loop(
    k: &mut KernelDef,
    loop_stmt: Stmt,
    plan: &LoopPlan,
    specs: &mut Vec<LoopDetectorSpec>,
    opts: LoopPassOptions,
    next_site: &mut u32,
    out: &mut Vec<Stmt>,
) {
    let n = specs.len();
    // Shared iteration counter.
    let cnt = k.add_local(format!("__cnt_{n}"), Ty::I32);
    out.push(Stmt::assign(cnt, Expr::i32(0)));

    // Per-target accumulators.
    let mut accs: Vec<(VarId, VarId, bool)> = Vec::new(); // (target, acc, self_acc)
    for (ti, &target) in plan.targets.iter().enumerate() {
        let self_acc = plan.self_acc[ti];
        if self_acc {
            accs.push((target, target, true));
        } else {
            let tgt_ty = k.var_ty(target);
            let acc_ty = if tgt_ty == Ty::F32 { Ty::F32 } else { tgt_ty };
            let acc = k.add_local(format!("__acc_{}_{}", n, ti), acc_ty);
            out.push(Stmt::assign(
                acc,
                Expr::Lit(hauberk_kir::Value::zero_of(acc_ty)),
            ));
            accs.push((target, acc, false));
        }
    }

    // Expected trip count (evaluated before the loop; loop-invariant).
    let expect = plan.trip.as_ref().map(|tc| {
        let e = k.add_local(format!("__exp_{n}"), Ty::I32);
        out.push(Stmt::assign(e, tc.clone()));
        e
    });

    // Rewrite the loop body: counter increment at the top, accumulation
    // after the *last* definition of each protected target.
    let mut loop_stmt = loop_stmt;
    {
        let body = match &mut loop_stmt {
            Stmt::For { body, .. } | Stmt::While { body, .. } => body,
            _ => unreachable!("instrument_one_loop requires a loop"),
        };
        let taken = std::mem::take(body);
        let mut new_body = vec![Stmt::assign(cnt, Expr::add(Expr::var(cnt), Expr::i32(1)))];
        // Find the index of the last top-level statement that (recursively)
        // defines each non-self-accumulating target.
        let mut acc_after: Vec<Option<usize>> = accs
            .iter()
            .map(|(target, _, self_acc)| {
                if *self_acc {
                    return None;
                }
                taken
                    .0
                    .iter()
                    .rposition(|st| st.assigns_var_recursively(*target))
            })
            .collect();
        for (i, st) in taken.0.into_iter().enumerate() {
            new_body.push(st);
            for (ai, (target, acc, _)) in accs.iter().enumerate() {
                if acc_after[ai] == Some(i) {
                    new_body.push(Stmt::assign(
                        *acc,
                        Expr::add(Expr::var(*acc), Expr::var(*target)),
                    ));
                    acc_after[ai] = None;
                }
            }
        }
        *body = Block(new_body);
    }
    out.push(loop_stmt);

    // Post-loop checks.
    let mut first_det_for_loop: Option<usize> = None;
    for (ti, (target, acc, self_acc)) in accs.iter().enumerate() {
        let det = specs.len();
        first_det_for_loop.get_or_insert(det);
        // averaged = acc / max(cnt, 1)   (as f32; guards empty loops)
        let avg = Expr::div(
            as_f32(k, *acc),
            Expr::call(
                MathFn::Max,
                vec![
                    Expr::Cast(PrimTy::F32, Box::new(Expr::var(cnt))),
                    Expr::f32(1.0),
                ],
            ),
        );
        let kind = if opts.profile_mode {
            HookKind::Profile {
                detector: det as u32,
            }
        } else {
            HookKind::CheckRange {
                detector: det as u32,
            }
        };
        out.push(Stmt::Hook(Hook {
            kind,
            site: *next_site,
            args: vec![avg],
            target: None,
        }));
        *next_site += 1;
        specs.push(LoopDetectorSpec {
            id: det,
            loop_id: plan.loop_id,
            var: *target,
            var_name: k.vars[*target as usize].name.clone(),
            self_accumulating: *self_acc,
            trip_checked: plan.trip.is_some(),
        });
        let _ = ti;
    }

    // Trip-count invariant (FT mode only; it needs no profiling).
    if let (Some(e), false) = (expect, opts.profile_mode) {
        let det = first_det_for_loop.unwrap_or(specs.len().saturating_sub(1));
        out.push(Stmt::Hook(Hook {
            kind: HookKind::CheckEqual {
                detector: det as u32,
            },
            site: *next_site,
            args: vec![Expr::var(cnt), Expr::var(e)],
            target: None,
        }));
        *next_site += 1;
    }
    let _ = plan.iterator;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::parser::parse_kernel;
    use hauberk_kir::printer::print_kernel;
    use hauberk_kir::validate::validate_kernel;

    fn instrument(src: &str, opts: LoopPassOptions) -> (KernelDef, Vec<LoopDetectorSpec>) {
        let mut k = parse_kernel(src).unwrap();
        let specs = instrument_loops(&mut k, opts);
        k.renumber();
        validate_kernel(&k).expect("instrumented kernel must validate");
        (k, specs)
    }

    const DOT: &str = r#"kernel dot(out: *global f32, x: *global f32, n: i32) {
        let acc: f32 = 0.0;
        for (i = 0; i < n; i = i + 1) {
            acc = acc + load(x, i) * load(x, i);
        }
        store(out, thread_idx_x(), acc);
    }"#;

    #[test]
    fn self_accumulator_needs_no_in_loop_accumulator() {
        let (k, specs) = instrument(DOT, LoopPassOptions::default());
        assert_eq!(specs.len(), 1);
        assert!(specs[0].self_accumulating);
        assert_eq!(specs[0].var_name, "acc");
        assert!(specs[0].trip_checked);
        let p = print_kernel(&k);
        assert!(!p.contains("__acc_"), "no extra accumulator:\n{p}");
        assert!(p.contains("__cnt_0 = __cnt_0 + 1;"));
        assert!(p.contains("@check_range"));
        assert!(p.contains("@check_equal"));
    }

    #[test]
    fn non_self_accumulating_target_gets_accumulator() {
        let src = r#"kernel t(out: *global f32, x: *global f32, n: i32) {
            let last: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                last = load(x, i) * 2.0 + 1.0;
                store(out, i, last);
            }
        }"#;
        let (k, specs) = instrument(src, LoopPassOptions::default());
        assert_eq!(specs.len(), 1);
        assert!(!specs[0].self_accumulating);
        let p = print_kernel(&k);
        assert!(p.contains("__acc_0_0 = __acc_0_0 + last;"));
        // Accumulation statement appears after the definition of `last`.
        let def = p.find("last = load(x, i)").unwrap();
        let acc = p.find("__acc_0_0 = __acc_0_0 + last;").unwrap();
        assert!(acc > def);
    }

    #[test]
    fn profile_mode_emits_profile_hooks_only() {
        let (k, _) = instrument(
            DOT,
            LoopPassOptions {
                max_var: 1,
                profile_mode: true,
            },
        );
        let p = print_kernel(&k);
        assert!(p.contains("@profile"));
        assert!(!p.contains("@check_range"));
        assert!(!p.contains("@check_equal"));
    }

    #[test]
    fn two_loops_two_detectors() {
        let src = r#"kernel t(out: *global f32, x: *global f32, n: i32) {
            let a: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                a = a + load(x, i);
            }
            let b: f32 = 0.0;
            for (j = 0; j < n; j = j + 1) {
                b = b + load(x, j) * load(x, j);
            }
            store(out, 0, a + b);
        }"#;
        let (_, specs) = instrument(src, LoopPassOptions::default());
        assert_eq!(specs.len(), 2);
        assert_ne!(specs[0].loop_id, specs[1].loop_id);
        assert_eq!(specs[0].id, 0);
        assert_eq!(specs[1].id, 1);
    }

    #[test]
    fn maxvar_two_protects_two_variables() {
        let src = r#"kernel t(out: *global f32, x: *global f32, n: i32) {
            let e1: f32 = 0.0;
            let e2: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                let d: f32 = load(x, i);
                e1 = e1 + d;
                e2 = e2 + d * d;
            }
            store(out, 0, e1 + e2);
        }"#;
        let (_, specs) = instrument(
            src,
            LoopPassOptions {
                max_var: 2,
                profile_mode: false,
            },
        );
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.self_accumulating));
    }

    #[test]
    fn while_loop_gets_counter_but_no_trip_check() {
        let src = r#"kernel t(out: *global i32, n: i32) {
            let c: i32 = 0;
            while (c < n) {
                c = c + 1;
            }
            store(out, 0, c);
        }"#;
        let (k, specs) = instrument(src, LoopPassOptions::default());
        let p = print_kernel(&k);
        assert!(p.contains("__cnt_0"));
        assert!(!p.contains("@check_equal"), "{p}");
        // `c` is self-accumulating and is the only candidate.
        assert_eq!(specs.len(), 1);
        assert!(!specs[0].trip_checked);
    }

    #[test]
    fn nested_loops_protected_once_at_outermost() {
        let src = r#"kernel t(out: *global f32, x: *global f32, n: i32) {
            let s: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                for (j = 0; j < n; j = j + 1) {
                    s = s + load(x, i + j);
                }
            }
            store(out, 0, s);
        }"#;
        let (k, specs) = instrument(src, LoopPassOptions::default());
        assert_eq!(specs.len(), 1);
        let p = print_kernel(&k);
        // Only one counter (outer loop), one range check.
        assert_eq!(p.matches("@check_range").count(), 1);
        assert_eq!(p.matches("let __cnt_").count(), 1, "one counter:\n{p}");
        assert_eq!(p.matches("__cnt_0 = __cnt_0 + 1;").count(), 1);
    }

    #[test]
    fn loop_in_if_arm_is_found() {
        let src = r#"kernel t(out: *global f32, x: *global f32, n: i32) {
            if (n > 0) {
                let s: f32 = 0.0;
                for (i = 0; i < n; i = i + 1) {
                    s = s + load(x, i);
                }
                store(out, 0, s);
            }
        }"#;
        let (_, specs) = instrument(src, LoopPassOptions::default());
        assert_eq!(specs.len(), 1);
    }
}
