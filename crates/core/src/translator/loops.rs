//! Hauberk-L: accumulation-based value-range checking for loop code (§V.B).
//!
//! For each outermost loop the pass
//!
//! 1. selects protection targets via
//!    [`hauberk_kir::analysis::select_protection_targets`] (self-accumulators
//!    first, then largest cumulative backward dataflow dependency, up to
//!    `max_var`);
//! 2. adds a per-target accumulator (`float __acc_k = 0;` before the loop,
//!    `__acc_k += target;` after the target's definition inside the loop) —
//!    skipped for self-accumulators;
//! 3. adds one shared iteration counter (`int __cnt_k = 0;` before,
//!    `__cnt_k = __cnt_k + 1;` at the top of the body);
//! 4. after the loop, calls `HauberkCheckRange(cb, det, acc / max(cnt,1))`
//!    and, when the trip count is statically derivable,
//!    `HauberkCheckEqual(cb, det, cnt, expected)`.
//!
//! In *profile mode* the range check is replaced by a profiler recording
//! hook; everything else is identical, so the profiled value is exactly the
//! value the FT build later checks.

use crate::translator::select::HardeningSelection;
use crate::translator::LoopDetectorSpec;
use hauberk_kir::analysis::{derive_trip_count, select_protection_targets, LoopDataflow};
use hauberk_kir::expr::{Expr, MathFn, VarId};
use hauberk_kir::stmt::{Block, Hook, HookKind, Stmt};
use hauberk_kir::types::PrimTy;
use hauberk_kir::{KernelDef, Ty};

/// Options for the loop pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopPassOptions {
    /// Maximum number of protected variables per loop (the paper's
    /// `Maxvar`; the evaluation uses 1).
    pub max_var: usize,
    /// Emit profiler recording hooks instead of FT checking hooks.
    pub profile_mode: bool,
}

impl Default for LoopPassOptions {
    fn default() -> Self {
        LoopPassOptions {
            max_var: 1,
            profile_mode: false,
        }
    }
}

struct LoopPlan {
    loop_id: u32,
    targets: Vec<VarId>,
    self_acc: Vec<bool>,
    trip: Option<Expr>,
    iterator: Option<VarId>,
    /// Emit the per-iteration counter. Always true classically; a selective
    /// build elides it when the trip check is deselected and the trip count
    /// is derivable (the range check then divides by the expected trip).
    use_counter: bool,
    /// Emit the post-loop `CheckEqual` trip invariant (FT mode, derivable
    /// trip, and — under a selection — the loop's trip check is selected).
    trip_check: bool,
}

/// Apply the loop-detector pass in place; returns the placed detectors.
pub fn instrument_loops(k: &mut KernelDef, opts: LoopPassOptions) -> Vec<LoopDetectorSpec> {
    instrument_loops_selected(k, opts, None)
}

/// [`instrument_loops`] restricted to a [`HardeningSelection`]: only the
/// `(loop, variable)` pairs the selection lists get a detector. A loop whose
/// every analysis target is deselected is left entirely untouched — no
/// counter, no accumulator, no trip check — so an unselected loop costs
/// nothing. The trip-count invariant is selectable separately
/// ([`HardeningSelection::trip_checks`]): when it is deselected and the
/// trip count is derivable, the per-iteration counter is elided and the
/// range check divides by the precomputed expected trip instead (identical
/// fault-free, so profiled ranges stay valid). Detector ids stay dense over
/// the placed subset (the control block's range table has one slot per
/// *placed* detector), and a profiler build under the same selection
/// produces the identical layout.
pub fn instrument_loops_selected(
    k: &mut KernelDef,
    opts: LoopPassOptions,
    sel: Option<&HardeningSelection>,
) -> Vec<LoopDetectorSpec> {
    // Analysis phase on a pristine snapshot.
    let snapshot = k.clone();
    let mut plans: Vec<LoopPlan> = Vec::new();
    collect_outermost_loops(&snapshot.body, &mut |loop_stmt| {
        let df = LoopDataflow::of(&snapshot, loop_stmt);
        let (loop_id, iterator) = match loop_stmt {
            Stmt::For { id, var, .. } => (*id, Some(*var)),
            Stmt::While { id, .. } => (*id, None),
            _ => unreachable!("collect_outermost_loops yields loops"),
        };
        let mut targets = select_protection_targets(&snapshot, &df, iterator, opts.max_var);
        if let Some(s) = sel {
            targets.retain(|t| s.selects_loop(loop_id, &snapshot.vars[*t as usize].name));
            if targets.is_empty() {
                // Nothing selected in this loop: leave it verbatim. (Without
                // a selection an empty target list still instruments the
                // counter/trip check, as always.)
                return;
            }
        }
        let self_acc = targets
            .iter()
            .map(|t| df.self_accumulating.contains(t))
            .collect();
        let trip = derive_trip_count(loop_stmt);
        // Classic builds (no selection) always carry the counter and, when
        // derivable, the trip check — bit-identical to the historical pass.
        let trip_selected = sel.is_none_or(|s| s.selects_trip(loop_id));
        let trip_check = trip.is_some() && trip_selected;
        let use_counter = trip.is_none() || trip_selected;
        plans.push(LoopPlan {
            loop_id,
            targets,
            self_acc,
            trip,
            iterator,
            use_counter,
            trip_check,
        });
    });

    // Transform phase.
    let mut specs: Vec<LoopDetectorSpec> = Vec::new();
    let body = std::mem::take(&mut k.body);
    let mut next_site: u32 = 20_000; // loop-detector sites in their own space
    k.body = transform_block(k, body, &plans, &mut specs, opts, &mut next_site);
    specs
}

/// Call `f` on every outermost loop (top level and inside `if` arms, but not
/// inside other loops).
fn collect_outermost_loops<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in &block.0 {
        match s {
            Stmt::For { .. } | Stmt::While { .. } => f(s),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_outermost_loops(then_blk, f);
                collect_outermost_loops(else_blk, f);
            }
            _ => {}
        }
    }
}

fn as_f32(k: &KernelDef, v: VarId) -> Expr {
    if k.var_ty(v) == Ty::F32 {
        Expr::var(v)
    } else {
        Expr::Cast(PrimTy::F32, Box::new(Expr::var(v)))
    }
}

fn transform_block(
    k: &mut KernelDef,
    block: Block,
    plans: &[LoopPlan],
    specs: &mut Vec<LoopDetectorSpec>,
    opts: LoopPassOptions,
    next_site: &mut u32,
) -> Block {
    let mut out = Vec::with_capacity(block.0.len());
    for s in block.0 {
        match s {
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let then_blk = transform_block(k, then_blk, plans, specs, opts, next_site);
                let else_blk = transform_block(k, else_blk, plans, specs, opts, next_site);
                out.push(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                });
            }
            Stmt::For { id, .. } | Stmt::While { id, .. }
                if plans.iter().any(|p| p.loop_id == id_of(&s)) =>
            {
                let _ = id;
                let plan = plans
                    .iter()
                    .find(|p| p.loop_id == id_of(&s))
                    .expect("checked in guard");
                instrument_one_loop(k, s, plan, specs, opts, next_site, &mut out);
            }
            other => out.push(other),
        }
    }
    Block(out)
}

fn id_of(s: &Stmt) -> u32 {
    match s {
        Stmt::For { id, .. } | Stmt::While { id, .. } => *id,
        _ => u32::MAX,
    }
}

fn instrument_one_loop(
    k: &mut KernelDef,
    loop_stmt: Stmt,
    plan: &LoopPlan,
    specs: &mut Vec<LoopDetectorSpec>,
    opts: LoopPassOptions,
    next_site: &mut u32,
    out: &mut Vec<Stmt>,
) {
    let n = specs.len();
    // Shared iteration counter (elided when the range check can divide by
    // the statically expected trip instead).
    let cnt = plan.use_counter.then(|| {
        let cnt = k.add_local(format!("__cnt_{n}"), Ty::I32);
        out.push(Stmt::assign(cnt, Expr::i32(0)));
        cnt
    });

    // Per-target accumulators.
    let mut accs: Vec<(VarId, VarId, bool)> = Vec::new(); // (target, acc, self_acc)
    for (ti, &target) in plan.targets.iter().enumerate() {
        let self_acc = plan.self_acc[ti];
        if self_acc {
            accs.push((target, target, true));
        } else {
            let tgt_ty = k.var_ty(target);
            let acc_ty = if tgt_ty == Ty::F32 { Ty::F32 } else { tgt_ty };
            let acc = k.add_local(format!("__acc_{}_{}", n, ti), acc_ty);
            out.push(Stmt::assign(
                acc,
                Expr::Lit(hauberk_kir::Value::zero_of(acc_ty)),
            ));
            accs.push((target, acc, false));
        }
    }

    // Expected trip count (evaluated before the loop; loop-invariant).
    // Needed by the trip check and, when the counter is elided, as the
    // range check's divisor.
    let expect = plan.trip.as_ref().map(|tc| {
        let e = k.add_local(format!("__exp_{n}"), Ty::I32);
        out.push(Stmt::assign(e, tc.clone()));
        e
    });

    // Rewrite the loop body: counter increment at the top, accumulation
    // after the *last* definition of each protected target.
    let mut loop_stmt = loop_stmt;
    {
        let body = match &mut loop_stmt {
            Stmt::For { body, .. } | Stmt::While { body, .. } => body,
            _ => unreachable!("instrument_one_loop requires a loop"),
        };
        let taken = std::mem::take(body);
        let mut new_body = match cnt {
            Some(cnt) => vec![Stmt::assign(cnt, Expr::add(Expr::var(cnt), Expr::i32(1)))],
            None => vec![],
        };
        // Find the index of the last top-level statement that (recursively)
        // defines each non-self-accumulating target.
        let mut acc_after: Vec<Option<usize>> = accs
            .iter()
            .map(|(target, _, self_acc)| {
                if *self_acc {
                    return None;
                }
                taken
                    .0
                    .iter()
                    .rposition(|st| st.assigns_var_recursively(*target))
            })
            .collect();
        for (i, st) in taken.0.into_iter().enumerate() {
            new_body.push(st);
            for (ai, (target, acc, _)) in accs.iter().enumerate() {
                if acc_after[ai] == Some(i) {
                    new_body.push(Stmt::assign(
                        *acc,
                        Expr::add(Expr::var(*acc), Expr::var(*target)),
                    ));
                    acc_after[ai] = None;
                }
            }
        }
        *body = Block(new_body);
    }
    out.push(loop_stmt);

    // Post-loop checks.
    let mut first_det_for_loop: Option<usize> = None;
    for (ti, (target, acc, self_acc)) in accs.iter().enumerate() {
        let det = specs.len();
        first_det_for_loop.get_or_insert(det);
        // averaged = acc / max(divisor, 1)   (as f32; guards empty loops).
        // The divisor is the dynamic counter when one exists, otherwise the
        // statically expected trip — identical fault-free, so the profiled
        // ranges configure either form.
        let divisor = cnt
            .or(expect)
            .expect("counter-less loops have a derivable trip");
        let avg = Expr::div(
            as_f32(k, *acc),
            Expr::call(
                MathFn::Max,
                vec![
                    Expr::Cast(PrimTy::F32, Box::new(Expr::var(divisor))),
                    Expr::f32(1.0),
                ],
            ),
        );
        let kind = if opts.profile_mode {
            HookKind::Profile {
                detector: det as u32,
            }
        } else {
            HookKind::CheckRange {
                detector: det as u32,
            }
        };
        out.push(Stmt::Hook(Hook {
            kind,
            site: *next_site,
            args: vec![avg],
            target: None,
        }));
        *next_site += 1;
        specs.push(LoopDetectorSpec {
            id: det,
            loop_id: plan.loop_id,
            var: *target,
            var_name: k.vars[*target as usize].name.clone(),
            self_accumulating: *self_acc,
            trip_checked: plan.trip.is_some(),
        });
        let _ = ti;
    }

    // Trip-count invariant (FT mode only; it needs no profiling).
    if let (true, Some(c), Some(e), false) = (plan.trip_check, cnt, expect, opts.profile_mode) {
        let det = first_det_for_loop.unwrap_or(specs.len().saturating_sub(1));
        out.push(Stmt::Hook(Hook {
            kind: HookKind::CheckEqual {
                detector: det as u32,
            },
            site: *next_site,
            args: vec![Expr::var(c), Expr::var(e)],
            target: None,
        }));
        *next_site += 1;
    }
    let _ = plan.iterator;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::parser::parse_kernel;
    use hauberk_kir::printer::print_kernel;
    use hauberk_kir::validate::validate_kernel;

    fn instrument(src: &str, opts: LoopPassOptions) -> (KernelDef, Vec<LoopDetectorSpec>) {
        let mut k = parse_kernel(src).unwrap();
        let specs = instrument_loops(&mut k, opts);
        k.renumber();
        validate_kernel(&k).expect("instrumented kernel must validate");
        (k, specs)
    }

    const DOT: &str = r#"kernel dot(out: *global f32, x: *global f32, n: i32) {
        let acc: f32 = 0.0;
        for (i = 0; i < n; i = i + 1) {
            acc = acc + load(x, i) * load(x, i);
        }
        store(out, thread_idx_x(), acc);
    }"#;

    #[test]
    fn self_accumulator_needs_no_in_loop_accumulator() {
        let (k, specs) = instrument(DOT, LoopPassOptions::default());
        assert_eq!(specs.len(), 1);
        assert!(specs[0].self_accumulating);
        assert_eq!(specs[0].var_name, "acc");
        assert!(specs[0].trip_checked);
        let p = print_kernel(&k);
        assert!(!p.contains("__acc_"), "no extra accumulator:\n{p}");
        assert!(p.contains("__cnt_0 = __cnt_0 + 1;"));
        assert!(p.contains("@check_range"));
        assert!(p.contains("@check_equal"));
    }

    #[test]
    fn non_self_accumulating_target_gets_accumulator() {
        let src = r#"kernel t(out: *global f32, x: *global f32, n: i32) {
            let last: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                last = load(x, i) * 2.0 + 1.0;
                store(out, i, last);
            }
        }"#;
        let (k, specs) = instrument(src, LoopPassOptions::default());
        assert_eq!(specs.len(), 1);
        assert!(!specs[0].self_accumulating);
        let p = print_kernel(&k);
        assert!(p.contains("__acc_0_0 = __acc_0_0 + last;"));
        // Accumulation statement appears after the definition of `last`.
        let def = p.find("last = load(x, i)").unwrap();
        let acc = p.find("__acc_0_0 = __acc_0_0 + last;").unwrap();
        assert!(acc > def);
    }

    #[test]
    fn profile_mode_emits_profile_hooks_only() {
        let (k, _) = instrument(
            DOT,
            LoopPassOptions {
                max_var: 1,
                profile_mode: true,
            },
        );
        let p = print_kernel(&k);
        assert!(p.contains("@profile"));
        assert!(!p.contains("@check_range"));
        assert!(!p.contains("@check_equal"));
    }

    #[test]
    fn two_loops_two_detectors() {
        let src = r#"kernel t(out: *global f32, x: *global f32, n: i32) {
            let a: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                a = a + load(x, i);
            }
            let b: f32 = 0.0;
            for (j = 0; j < n; j = j + 1) {
                b = b + load(x, j) * load(x, j);
            }
            store(out, 0, a + b);
        }"#;
        let (_, specs) = instrument(src, LoopPassOptions::default());
        assert_eq!(specs.len(), 2);
        assert_ne!(specs[0].loop_id, specs[1].loop_id);
        assert_eq!(specs[0].id, 0);
        assert_eq!(specs[1].id, 1);
    }

    #[test]
    fn maxvar_two_protects_two_variables() {
        let src = r#"kernel t(out: *global f32, x: *global f32, n: i32) {
            let e1: f32 = 0.0;
            let e2: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                let d: f32 = load(x, i);
                e1 = e1 + d;
                e2 = e2 + d * d;
            }
            store(out, 0, e1 + e2);
        }"#;
        let (_, specs) = instrument(
            src,
            LoopPassOptions {
                max_var: 2,
                profile_mode: false,
            },
        );
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.self_accumulating));
    }

    #[test]
    fn while_loop_gets_counter_but_no_trip_check() {
        let src = r#"kernel t(out: *global i32, n: i32) {
            let c: i32 = 0;
            while (c < n) {
                c = c + 1;
            }
            store(out, 0, c);
        }"#;
        let (k, specs) = instrument(src, LoopPassOptions::default());
        let p = print_kernel(&k);
        assert!(p.contains("__cnt_0"));
        assert!(!p.contains("@check_equal"), "{p}");
        // `c` is self-accumulating and is the only candidate.
        assert_eq!(specs.len(), 1);
        assert!(!specs[0].trip_checked);
    }

    #[test]
    fn nested_loops_protected_once_at_outermost() {
        let src = r#"kernel t(out: *global f32, x: *global f32, n: i32) {
            let s: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                for (j = 0; j < n; j = j + 1) {
                    s = s + load(x, i + j);
                }
            }
            store(out, 0, s);
        }"#;
        let (k, specs) = instrument(src, LoopPassOptions::default());
        assert_eq!(specs.len(), 1);
        let p = print_kernel(&k);
        // Only one counter (outer loop), one range check.
        assert_eq!(p.matches("@check_range").count(), 1);
        assert_eq!(p.matches("let __cnt_").count(), 1, "one counter:\n{p}");
        assert_eq!(p.matches("__cnt_0 = __cnt_0 + 1;").count(), 1);
    }

    #[test]
    fn selection_places_only_named_loop_detectors() {
        let src = r#"kernel t(out: *global f32, x: *global f32, n: i32) {
            let a: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                a = a + load(x, i);
            }
            let b: f32 = 0.0;
            for (j = 0; j < n; j = j + 1) {
                b = b + load(x, j) * load(x, j);
            }
            store(out, 0, a + b);
        }"#;
        // Discover both loops' detectors from an unrestricted pass first.
        let mut probe = parse_kernel(src).unwrap();
        let all = instrument_loops(&mut probe, LoopPassOptions::default());
        assert_eq!(all.len(), 2);
        // Keep only the second loop's detector, with its trip check.
        let sel = HardeningSelection {
            nonloop_vars: vec![],
            loop_detectors: vec![(all[1].loop_id, all[1].var_name.clone())],
            trip_checks: vec![all[1].loop_id],
        };
        let mut k = parse_kernel(src).unwrap();
        let specs = instrument_loops_selected(&mut k, LoopPassOptions::default(), Some(&sel));
        k.renumber();
        validate_kernel(&k).expect("selected kernel must validate");
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].id, 0, "ids stay dense over the placed subset");
        assert_eq!(specs[0].loop_id, all[1].loop_id);
        assert_eq!(specs[0].var_name, all[1].var_name);
        let p = print_kernel(&k);
        // The unselected loop carries no counter and no checks at all.
        assert_eq!(p.matches("let __cnt_").count(), 1, "one counter:\n{p}");
        assert_eq!(p.matches("@check_range").count(), 1);
        assert_eq!(p.matches("@check_equal").count(), 1);
    }

    #[test]
    fn deselected_trip_check_elides_the_counter() {
        // Same detector as the unrestricted pass, but no trip check: the
        // per-iteration counter disappears and the range check divides by
        // the precomputed expected trip.
        let mut probe = parse_kernel(DOT).unwrap();
        let all = instrument_loops(&mut probe, LoopPassOptions::default());
        let sel = HardeningSelection {
            nonloop_vars: vec![],
            loop_detectors: vec![(all[0].loop_id, all[0].var_name.clone())],
            trip_checks: vec![],
        };
        let mut k = parse_kernel(DOT).unwrap();
        let specs = instrument_loops_selected(&mut k, LoopPassOptions::default(), Some(&sel));
        k.renumber();
        validate_kernel(&k).expect("counter-less kernel must validate");
        assert_eq!(specs.len(), 1);
        let p = print_kernel(&k);
        assert!(!p.contains("__cnt_"), "counter elided:\n{p}");
        assert!(!p.contains("@check_equal"), "no trip check:\n{p}");
        assert!(p.contains("__exp_0"), "expected trip is the divisor:\n{p}");
        assert_eq!(p.matches("@check_range").count(), 1);
        // A while loop's trip is not derivable: the counter must survive
        // even with the trip check deselected (it is the only divisor).
        let wsrc = r#"kernel t(out: *global i32, n: i32) {
            let c: i32 = 0;
            while (c < n) {
                c = c + 1;
            }
            store(out, 0, c);
        }"#;
        let mut probe = parse_kernel(wsrc).unwrap();
        let wall = instrument_loops(&mut probe, LoopPassOptions::default());
        let wsel = HardeningSelection {
            nonloop_vars: vec![],
            loop_detectors: vec![(wall[0].loop_id, wall[0].var_name.clone())],
            trip_checks: vec![],
        };
        let mut wk = parse_kernel(wsrc).unwrap();
        instrument_loops_selected(&mut wk, LoopPassOptions::default(), Some(&wsel));
        wk.renumber();
        validate_kernel(&wk).unwrap();
        let wp = print_kernel(&wk);
        assert!(wp.contains("__cnt_0"), "while keeps its counter:\n{wp}");
    }

    #[test]
    fn loop_in_if_arm_is_found() {
        let src = r#"kernel t(out: *global f32, x: *global f32, n: i32) {
            if (n > 0) {
                let s: f32 = 0.0;
                for (i = 0; i < n; i = i + 1) {
                    s = s + load(x, i);
                }
                store(out, 0, s);
            }
        }"#;
        let (_, specs) = instrument(src, LoopPassOptions::default());
        assert_eq!(specs.len(), 1);
    }
}
