//! Selective detector placement: the translator side of closed-loop
//! hardening.
//!
//! The campaign side (`hauberk-swifi`'s `harden` module) ranks variables and
//! loop detectors by measured vulnerability and emits a [`HardeningPlan`];
//! this module defines the plan format and the [`HardeningSelection`] filter
//! the instrumentation passes consume. A selection restricts the all-or-
//! nothing FT passes to exactly the named sites:
//!
//! * [`crate::translator::nonloop`] protects only the virtual variables (and
//!   parameters) named in [`HardeningSelection::nonloop_vars`];
//! * [`crate::translator::loops`] places only the loop detectors named in
//!   [`HardeningSelection::loop_detectors`] (a `(loop, variable)` pair); a
//!   loop with no selected target is left entirely untouched — no counter,
//!   no trip check, zero overhead;
//! * the loop trip-count invariant is selectable separately
//!   ([`HardeningSelection::trip_checks`]): when a loop's trip count is
//!   statically derivable and its trip check is *not* selected, the range
//!   check divides the accumulator by the precomputed expected trip
//!   instead of a dynamic counter, eliding the per-iteration counter
//!   increment — the dominant cost of a loop detector.
//!
//! Selections compose with the build variants through
//! [`crate::builds::build_selected`]; `None` means "everything", reproducing
//! the classic full-protection builds bit for bit.
//!
//! Serialization is byte-stable: a [`HardeningSelection`] is normalized
//! (sorted, deduplicated) before it is written, object keys serialize in
//! sorted order, and every field round-trips through
//! [`hauberk_telemetry::json`] — so "same journal in, byte-identical plan
//! out" holds across engines and thread counts.

use hauberk_kir::stmt::LoopId;
use hauberk_telemetry::json::{self, Json};

/// Which detector sites a selective FT build places. An empty component
/// means "place none of that detector family"; use `Option<&Selection>` =
/// `None` at the build layer for the classic protect-everything behavior.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HardeningSelection {
    /// Virtual-variable (or parameter) names protected by Hauberk-NL
    /// duplication + checksum. Sorted and deduplicated.
    pub nonloop_vars: Vec<String>,
    /// `(loop, protected variable)` pairs protected by a Hauberk-L range
    /// detector. Sorted and deduplicated.
    pub loop_detectors: Vec<(LoopId, String)>,
    /// Loops whose trip-count invariant (per-iteration counter +
    /// `CheckEqual` against the derived trip) is placed. Only meaningful
    /// for loops that also have a selected range detector; loops with a
    /// non-derivable trip count keep their counter regardless (the range
    /// check needs it as divisor). Sorted and deduplicated.
    pub trip_checks: Vec<LoopId>,
}

impl HardeningSelection {
    /// Sort and deduplicate both components, making the selection canonical
    /// (and its serialization byte-stable).
    pub fn normalize(&mut self) {
        self.nonloop_vars.sort();
        self.nonloop_vars.dedup();
        self.loop_detectors.sort();
        self.loop_detectors.dedup();
        self.trip_checks.sort_unstable();
        self.trip_checks.dedup();
    }

    /// Whether the selection places no detectors at all.
    pub fn is_empty(&self) -> bool {
        self.nonloop_vars.is_empty()
            && self.loop_detectors.is_empty()
            && self.trip_checks.is_empty()
    }

    /// Total number of selected placements.
    pub fn len(&self) -> usize {
        self.nonloop_vars.len() + self.loop_detectors.len() + self.trip_checks.len()
    }

    /// Whether the non-loop pass should protect variable `name`.
    pub fn selects_nl(&self, name: &str) -> bool {
        self.nonloop_vars.iter().any(|v| v == name)
    }

    /// Whether the loop pass should place the detector for `name` in `loop_id`.
    pub fn selects_loop(&self, loop_id: LoopId, name: &str) -> bool {
        self.loop_detectors
            .iter()
            .any(|(l, v)| *l == loop_id && v == name)
    }

    /// Whether the loop pass should place `loop_id`'s trip-count check.
    pub fn selects_trip(&self, loop_id: LoopId) -> bool {
        self.trip_checks.contains(&loop_id)
    }

    /// Serialize (canonical form; callers should [`Self::normalize`] first).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "nonloop_vars",
                Json::Arr(self.nonloop_vars.iter().map(Json::str).collect()),
            ),
            (
                "loop_detectors",
                Json::Arr(
                    self.loop_detectors
                        .iter()
                        .map(|(l, v)| {
                            Json::obj([("loop", Json::uint(*l as u64)), ("var", Json::str(v))])
                        })
                        .collect(),
                ),
            ),
            (
                "trip_checks",
                Json::Arr(
                    self.trip_checks
                        .iter()
                        .map(|l| Json::uint(*l as u64))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a selection object (the inverse of [`Self::to_json`]). The
    /// parsed selection is normalized.
    pub fn from_json(j: &Json) -> Option<HardeningSelection> {
        let nonloop_vars = j
            .get("nonloop_vars")?
            .as_arr()?
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        let loop_detectors = j
            .get("loop_detectors")?
            .as_arr()?
            .iter()
            .map(|d| {
                Some((
                    u32::try_from(d.get("loop")?.as_u64()?).ok()?,
                    d.get("var")?.as_str()?.to_string(),
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        let trip_checks = j
            .get("trip_checks")?
            .as_arr()?
            .iter()
            .map(|l| u32::try_from(l.as_u64()?).ok())
            .collect::<Option<Vec<_>>>()?;
        let mut sel = HardeningSelection {
            nonloop_vars,
            loop_detectors,
            trip_checks,
        };
        sel.normalize();
        Some(sel)
    }
}

/// Version of the serialized plan format; bumped on incompatible changes.
pub const PLAN_VERSION: u64 = 1;

/// A serializable detector placement: the artifact the optimizer emits and
/// the translator (via [`crate::builds::build_selected`]) consumes. Carries
/// enough provenance to refuse application to the wrong program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HardeningPlan {
    /// Program the plan was derived for.
    pub program: String,
    /// Budget the selection was fitted under, as a fraction of the
    /// full-protection detector overhead (`1.0` = allow everything).
    pub budget: f64,
    /// 16-hex-digit FNV-1a fingerprint of the baseline campaign plan the
    /// ranking was measured on (the journal's `fingerprint` field).
    pub fingerprint: String,
    /// The placement itself.
    pub selection: HardeningSelection,
}

impl HardeningPlan {
    /// Serialize to a canonical JSON object (keys sorted, selection
    /// normalized by construction).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("plan", Json::str("hardening")),
            ("version", Json::uint(PLAN_VERSION)),
            ("program", Json::str(self.program.clone())),
            ("budget", Json::Num(self.budget)),
            ("fingerprint", Json::str(self.fingerprint.clone())),
            ("selection", self.selection.to_json()),
        ])
    }

    /// The byte-stable single-line serialization written by `--plan-out`.
    pub fn to_json_string(&self) -> String {
        format!("{}\n", self.to_json())
    }

    /// Parse a plan document, rejecting unknown kinds/versions.
    pub fn from_json(j: &Json) -> Result<HardeningPlan, String> {
        if j.get("plan").and_then(|p| p.as_str()) != Some("hardening") {
            return Err("not a hardening plan (missing `\"plan\":\"hardening\"`)".into());
        }
        match j.get("version").and_then(|v| v.as_u64()) {
            Some(PLAN_VERSION) => {}
            Some(v) => return Err(format!("unsupported plan version {v}")),
            None => return Err("plan has no version field".into()),
        }
        let get_str = |k: &str| {
            j.get(k)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("plan missing `{k}`"))
        };
        Ok(HardeningPlan {
            program: get_str("program")?,
            budget: j
                .get("budget")
                .and_then(|b| b.as_f64())
                .ok_or("plan missing `budget`")?,
            fingerprint: get_str("fingerprint")?,
            selection: j
                .get("selection")
                .and_then(HardeningSelection::from_json)
                .ok_or("plan missing or malformed `selection`")?,
        })
    }

    /// Parse the textual form written by [`Self::to_json_string`].
    pub fn parse(text: &str) -> Result<HardeningPlan, String> {
        let j = json::parse(text.trim()).map_err(|e| e.to_string())?;
        HardeningPlan::from_json(&j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HardeningPlan {
        let mut selection = HardeningSelection {
            nonloop_vars: vec!["scale".into(), "acc".into(), "scale".into()],
            loop_detectors: vec![(2, "acc".into()), (0, "acc".into())],
            trip_checks: vec![2, 0, 2],
        };
        selection.normalize();
        HardeningPlan {
            program: "CP".into(),
            budget: 0.5,
            fingerprint: "00ff00ff00ff00ff".into(),
            selection,
        }
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let p = sample();
        assert_eq!(p.selection.nonloop_vars, vec!["acc", "scale"]);
        assert_eq!(
            p.selection.loop_detectors,
            vec![(0, "acc".to_string()), (2, "acc".to_string())]
        );
        assert!(p.selection.selects_nl("acc"));
        assert!(!p.selection.selects_nl("other"));
        assert!(p.selection.selects_loop(2, "acc"));
        assert!(!p.selection.selects_loop(1, "acc"));
        assert_eq!(p.selection.trip_checks, vec![0, 2]);
        assert!(p.selection.selects_trip(0));
        assert!(!p.selection.selects_trip(1));
        assert_eq!(p.selection.len(), 6);
    }

    #[test]
    fn plan_round_trips_byte_identically() {
        let p = sample();
        let text = p.to_json_string();
        let back = HardeningPlan::parse(&text).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.to_json_string(), text, "serialization is a fixpoint");
    }

    #[test]
    fn foreign_documents_are_rejected() {
        assert!(HardeningPlan::parse("{}").is_err());
        assert!(HardeningPlan::parse("{\"plan\":\"hardening\"}").is_err());
        let mut j = match sample().to_json() {
            Json::Obj(m) => m,
            _ => unreachable!(),
        };
        j.insert("version".into(), Json::uint(99));
        let err = HardeningPlan::parse(&Json::Obj(j).to_string()).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
    }
}
