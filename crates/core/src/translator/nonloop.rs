//! Hauberk-NL: duplication + XOR-checksum protection of non-loop code (§V.A).
//!
//! For every virtual variable defined outside loops the pass emits
//!
//! ```text
//! __dup_k = <rhs>;            // (ii)  duplicate the computation (first, so
//! v       = <rhs>;            //       self-referential defs compare fairly)
//! __chk   = __chk ^ bits(v);  // (i)   fold the defined value into the checksum
//! if (v != __dup_k) {         // (iii) immediate comparison
//!     @nl_mismatch;           //       -> sets the SDC bit in the control block
//! }
//! ...
//! __chk   = __chk ^ bits(v);  // (iv)  second fold after the last use (or
//!                             //       before the loop that modifies v)
//! ...
//! if at kernel exit: @checksum_check(__chk)   // (v) must be zero
//! ```
//!
//! The duplicated variable lives for exactly two statements, and a single
//! checksum variable is shared by every protected definition, so register
//! pressure stays flat — the paper's central argument against naïve
//! variable-granularity duplication.
//!
//! Placement of the second fold (step iv) follows the paper: after the last
//! use within the defining block; after a loop that uses but does not modify
//! the variable; before a loop (or any compound statement) that modifies it
//! (accepting the "uncovered window" — such variables are protected by the
//! loop detectors instead). Kernel parameters are folded at entry and again
//! at exit (unmodified) or right before their first redefinition.

use crate::translator::select::HardeningSelection;
use hauberk_kir::expr::{BinOp, Expr, UnOp, VarId};
use hauberk_kir::stmt::{Block, Hook, HookKind, Stmt};
use hauberk_kir::{KernelDef, Ty};

/// Statistics of one non-loop instrumentation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NlReport {
    /// Definitions protected by duplication + checksum.
    pub protected_defs: usize,
    /// Parameters protected by entry/exit checksum folds.
    pub protected_params: usize,
}

/// `chk = chk ^ bits(v)`
fn xor_fold(chk: VarId, v: VarId) -> Stmt {
    Stmt::assign(
        chk,
        Expr::bin(
            BinOp::Xor,
            Expr::var(chk),
            Expr::Un(UnOp::BitsOf, Box::new(Expr::var(v))),
        ),
    )
}

/// Apply the non-loop detector pass in place (protect everything).
pub fn instrument_nonloop(k: &mut KernelDef) -> NlReport {
    instrument_nonloop_selected(k, None)
}

/// Apply the non-loop detector pass restricted to a [`HardeningSelection`]:
/// only definitions (and parameters) whose variable name the selection lists
/// get the duplication + checksum triplet; everything else is left verbatim.
/// `None` protects everything. The single `__chk` checksum variable and the
/// kernel-exit check are still placed (callers that want literally zero NL
/// code skip the pass for an empty selection — see
/// [`crate::builds::build_selected`]).
pub fn instrument_nonloop_selected(
    k: &mut KernelDef,
    sel: Option<&HardeningSelection>,
) -> NlReport {
    let mut report = NlReport::default();
    let chk = k.add_local(k.fresh_name("__chk"), Ty::U32);
    let body = std::mem::take(&mut k.body);
    let mut next_site: u32 = 10_000; // NL sites live in their own id space
    let mut next_dup: usize = 0;

    // Parameters: entry folds; find the first statement (if any) that
    // redefines each parameter, and schedule the closing fold before it.
    let mut prologue: Vec<Stmt> = vec![Stmt::assign(chk, Expr::u32(0))];
    let mut open_params: Vec<VarId> = Vec::new();
    for p in 0..k.n_params as VarId {
        if !var_selected(k, sel, p) {
            continue;
        }
        prologue.push(xor_fold(chk, p));
        open_params.push(p);
        report.protected_params += 1;
    }

    let mut out = process_block(
        k,
        chk,
        body,
        sel,
        &mut next_site,
        &mut next_dup,
        &mut report,
        Some(&mut open_params),
    );

    // Close still-open parameters and validate the checksum at kernel exit.
    let mut epilogue: Vec<Stmt> = open_params.iter().map(|p| xor_fold(chk, *p)).collect();
    epilogue.push(Stmt::Hook(Hook {
        kind: HookKind::ChecksumCheck,
        site: next_site,
        args: vec![Expr::var(chk)],
        target: None,
    }));

    let mut stmts = prologue;
    stmts.append(&mut out.0);
    stmts.append(&mut epilogue);
    k.body = Block(stmts);
    report
}

/// Whether the selection (if any) lists variable `v` for NL protection.
fn var_selected(k: &KernelDef, sel: Option<&HardeningSelection>, v: VarId) -> bool {
    sel.is_none_or(|s| s.selects_nl(&k.vars[v as usize].name))
}

/// Process one non-loop block. `open_params` is only threaded at the top
/// level (parameter folds close before their first redefinition anywhere).
#[allow(clippy::too_many_arguments)]
fn process_block(
    k: &mut KernelDef,
    chk: VarId,
    block: Block,
    sel: Option<&HardeningSelection>,
    next_site: &mut u32,
    next_dup: &mut usize,
    report: &mut NlReport,
    open_params: Option<&mut Vec<VarId>>,
) -> Block {
    let stmts = block.0;
    let n = stmts.len();

    // Pass 1: for every definition at index i, decide where its second
    // checksum fold goes: (position, before?) on ORIGINAL indices.
    let mut fold_before: Vec<Vec<Stmt>> = vec![Vec::new(); n + 1];
    let mut fold_after: Vec<Vec<Stmt>> = vec![Vec::new(); n];
    for (i, s) in stmts.iter().enumerate() {
        let Stmt::Assign { var, .. } = s else {
            continue;
        };
        let var = *var;
        if !var_selected(k, sel, var) {
            continue;
        }
        let mut placed = false;
        let mut last_use: usize = i;
        for (j, later) in stmts.iter().enumerate().skip(i + 1) {
            if later.assigns_var_recursively(var) {
                // Live range ends here; close before the redefinition
                // (covers the "updated inside a loop" rule).
                // A use inside the same statement (e.g. `v = v + 1`, or a
                // loop that reads then writes) is part of the closing
                // window either way.
                fold_before[j].push(xor_fold(chk, var));
                placed = true;
                break;
            }
            if later.uses_var_recursively(var) {
                last_use = j;
            }
        }
        if !placed {
            if last_use == i {
                // No later use in this block: close immediately after the
                // definition triplet.
                fold_after[i].push(xor_fold(chk, var));
            } else {
                fold_after[last_use].push(xor_fold(chk, var));
            }
        }
    }

    // Parameter closing folds (top level only).
    if let Some(params) = open_params {
        params.retain(|p| {
            match stmts.iter().position(|s| s.assigns_var_recursively(*p)) {
                Some(j) => {
                    fold_before[j].push(xor_fold(chk, *p));
                    false // closed
                }
                None => true, // stays open until kernel exit
            }
        });
    }

    // Pass 2: emit.
    let mut out: Vec<Stmt> = Vec::with_capacity(n * 2);
    for (i, s) in stmts.into_iter().enumerate() {
        out.append(&mut fold_before[i]);
        match s {
            Stmt::Assign { var, value } if var_selected(k, sel, var) => {
                report.protected_defs += 1;
                let dup_ty = k.var_ty(var);
                let dup = k.add_local(format!("__dup_{}", *next_dup), dup_ty);
                *next_dup += 1;
                // (ii) duplicate first (fair comparison for self-referential
                // right-hand sides), then the original definition.
                out.push(Stmt::assign(dup, value.clone()));
                out.push(Stmt::assign(var, value));
                // (i) first checksum fold.
                out.push(xor_fold(chk, var));
                // (iii) immediate comparison.
                out.push(Stmt::If {
                    cond: Expr::bin(BinOp::Ne, Expr::var(var), Expr::var(dup)),
                    then_blk: Block(vec![Stmt::Hook(Hook {
                        kind: HookKind::NlMismatch,
                        site: *next_site,
                        args: vec![],
                        target: None,
                    })]),
                    else_blk: Block::new(),
                });
                *next_site += 1;
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                // Non-loop code inside conditionals is protected too.
                let then_blk =
                    process_block(k, chk, then_blk, sel, next_site, next_dup, report, None);
                let else_blk =
                    process_block(k, chk, else_blk, sel, next_site, next_dup, report, None);
                out.push(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                });
            }
            // Loops are the loop detector's domain: leave them untouched.
            other => out.push(other),
        }
        out.append(&mut fold_after[i]);
    }
    out.append(&mut fold_before[n]);
    Block(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::parser::parse_kernel;
    use hauberk_kir::printer::print_kernel;
    use hauberk_kir::validate::validate_kernel;

    fn instrument(src: &str) -> (KernelDef, NlReport) {
        let mut k = parse_kernel(src).unwrap();
        let r = instrument_nonloop(&mut k);
        k.renumber();
        validate_kernel(&k).expect("instrumented kernel must validate");
        (k, r)
    }

    #[test]
    fn straight_line_defs_get_triplets_and_folds() {
        let (k, r) = instrument(
            r#"kernel t(p: *global f32, n: i32) {
                let a: f32 = 2.0;
                let b: f32 = a * 3.0;
                store(p, 0, b);
            }"#,
        );
        assert_eq!(r.protected_defs, 2);
        assert_eq!(r.protected_params, 2);
        let printed = print_kernel(&k);
        // One dup + compare per def.
        assert_eq!(printed.matches("__dup_0").count(), 2);
        assert!(printed.contains("@nl_mismatch"));
        assert!(printed.contains("@checksum_check"));
        // Each protected value is folded exactly twice; params twice; plus
        // the initial chk = 0 assignment.
        let folds = printed.matches("__chk = __chk ^ bits(").count();
        assert_eq!(folds, 2 * 2 + 2 * 2);
    }

    #[test]
    fn second_fold_goes_after_loop_that_reads() {
        let (k, _) = instrument(
            r#"kernel t(out: *global f32, n: i32) {
                let scale: f32 = 2.5;
                let acc: f32 = 0.0;
                for (i = 0; i < n; i = i + 1) {
                    acc = acc + scale;
                }
                store(out, 0, acc);
            }"#,
        );
        let printed = print_kernel(&k);
        // `scale` is read in the loop but not modified: its closing fold
        // must appear after the loop; `acc` is modified in the loop: its
        // closing fold must appear before the loop.
        let loop_pos = printed.find("for (").unwrap();
        let scale_folds: Vec<usize> = printed
            .match_indices("__chk = __chk ^ bits(scale)")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(scale_folds.len(), 2);
        assert!(scale_folds[1] > loop_pos, "closing fold after the loop");
        let acc_folds: Vec<usize> = printed
            .match_indices("__chk = __chk ^ bits(acc)")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(acc_folds.len(), 2);
        assert!(
            acc_folds[1] < loop_pos,
            "closing fold before the modifying loop:\n{printed}"
        );
    }

    #[test]
    fn redefinition_closes_previous_virtual_variable() {
        let (k, r) = instrument(
            r#"kernel t(n: i32) {
                let x: i32 = 1;
                let y: i32 = x + 1;
                x = 5;
            }"#,
        );
        assert_eq!(r.protected_defs, 3);
        let printed = print_kernel(&k);
        // x is folded 4 times total: twice per definition.
        assert_eq!(printed.matches("__chk = __chk ^ bits(x)").count(), 4);
        let _ = k;
    }

    #[test]
    fn modified_param_closes_before_first_write() {
        let (k, _) = instrument(
            r#"kernel t(n: i32) {
                let a: i32 = 3;
                n = n + a;
            }"#,
        );
        let printed = print_kernel(&k);
        // Param `n`: entry fold + closing fold before `n = n + a`, and the
        // redefinition of n is itself a protected def (2 more folds).
        assert_eq!(printed.matches("__chk = __chk ^ bits(n)").count(), 4);
    }

    #[test]
    fn defs_inside_if_arms_are_protected() {
        let (_, r) = instrument(
            r#"kernel t(n: i32) {
                if (n > 0) {
                    let a: i32 = n * 2;
                } else {
                    let b: i32 = n * 3;
                }
            }"#,
        );
        assert_eq!(r.protected_defs, 2);
    }

    #[test]
    fn loop_bodies_are_left_untouched() {
        let (k, r) = instrument(
            r#"kernel t(n: i32) {
                for (i = 0; i < n; i = i + 1) {
                    let body_var: i32 = i * 2;
                }
            }"#,
        );
        assert_eq!(r.protected_defs, 0);
        let printed = print_kernel(&k);
        assert!(!printed.contains("__dup"));
        assert!(printed.contains("@checksum_check"));
    }

    #[test]
    fn selection_restricts_protection_to_named_vars() {
        let src = r#"kernel t(p: *global f32, n: i32) {
                let a: f32 = 2.0;
                let b: f32 = a * 3.0;
                store(p, 0, b);
            }"#;
        let mut k = parse_kernel(src).unwrap();
        let sel = HardeningSelection {
            nonloop_vars: vec!["b".into()],
            loop_detectors: vec![],
            trip_checks: vec![],
        };
        let r = instrument_nonloop_selected(&mut k, Some(&sel));
        k.renumber();
        validate_kernel(&k).expect("selected kernel must validate");
        assert_eq!(r.protected_defs, 1, "only `b` gets a triplet");
        assert_eq!(r.protected_params, 0, "params not in the selection");
        let printed = print_kernel(&k);
        assert_eq!(printed.matches("__dup_0").count(), 2, "one dup pair");
        assert!(!printed.contains("bits(a)"), "`a` unfolded:\n{printed}");
        assert_eq!(printed.matches("__chk = __chk ^ bits(b)").count(), 2);
        // The exit check still validates the (b-only) checksum.
        assert!(printed.contains("@checksum_check"));
    }

    #[test]
    fn self_referential_def_does_not_false_alarm_in_shape() {
        // dup is computed before the original assignment, so both read the
        // same operand values.
        let (k, _) = instrument(
            r#"kernel t(n: i32) {
                let x: i32 = 1;
                x = x + 1;
            }"#,
        );
        let printed = print_kernel(&k);
        let dup1 = printed.find("let __dup_1: i32 = x + 1;").unwrap();
        let orig = printed.find("\n    x = x + 1;").unwrap();
        assert!(dup1 < orig, "duplicate evaluated first:\n{printed}");
    }
}
