//! The SWIFI mutation pass (§VII, Fig. 12): insert a fault-injection hook
//! after every state-changing statement, carrying the defined variable, its
//! data type, and the hardware component the statement exercised.
//!
//! In *count mode* the same sites carry execution-count hooks instead — the
//! profiler build uses them to enumerate fault-injection targets and their
//! per-thread dynamic execution counts (needed to arm the k-th occurrence of
//! a site deterministically).

use crate::translator::{FiMap, FiSite, LoopSite};
use hauberk_kir::expr::{Expr, VarId};
use hauberk_kir::stmt::{Block, Hook, HookKind, Stmt};
use hauberk_kir::types::PrimTy;
use hauberk_kir::{HwComponent, KernelDef, Ty};

/// Options for the FI pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FiPassOptions {
    /// Only variables with id `< var_bound` are instrumented — pass the
    /// original variable count so translator-introduced state (checksums,
    /// duplicates, accumulators) is not an injection target, exactly like
    /// the paper injects into the *target program's* virtual variables.
    pub var_bound: VarId,
    /// Emit `CountExec` hooks instead of `FiPoint` hooks.
    pub count_mode: bool,
    /// Compile-time target selection (the paper's §VII footnote: when a
    /// device cannot afford a hook after *every* statement, "the variable
    /// identifier of a fault injection target is given as input of the
    /// HAUBERK translator that adds only one call statement"). When set,
    /// only definitions of the named variable are instrumented.
    pub only_var: Option<String>,
}

/// Statically derive the hardware component a definition exercises
/// ("e.g., ALU and FPU for integer and FP expressions, respectively";
/// loads exercise the memory path).
fn classify_hw(k: &KernelDef, var: VarId, value: &Expr) -> HwComponent {
    if value.load_count() > 0 {
        return HwComponent::Mem;
    }
    let uses_sfu = {
        let mut found = false;
        value.walk(&mut |e| {
            if matches!(
                e,
                Expr::Call(
                    hauberk_kir::MathFn::Sqrt
                        | hauberk_kir::MathFn::Rsqrt
                        | hauberk_kir::MathFn::Sin
                        | hauberk_kir::MathFn::Cos
                        | hauberk_kir::MathFn::Exp
                        | hauberk_kir::MathFn::Log,
                    _
                )
            ) {
                found = true;
            }
        });
        found
    };
    if uses_sfu {
        return HwComponent::Sfu;
    }
    match k.var_ty(var) {
        Ty::Prim(PrimTy::F32) => HwComponent::Fpu,
        _ => HwComponent::IAlu,
    }
}

/// Apply the FI pass in place; returns the injection surface.
pub fn instrument_fi(k: &mut KernelDef, opts: FiPassOptions) -> FiMap {
    let mut map = FiMap::default();
    let mut next_site: u32 = 0;
    let body = std::mem::take(&mut k.body);
    let snapshot = k.clone();
    k.body = walk(&snapshot, body, &opts, &mut map, &mut next_site, false);
    // Enumerate loops for scheduler faults.
    collect_loops(&k.body, &mut map.loops);
    map
}

fn walk(
    k: &KernelDef,
    block: Block,
    opts: &FiPassOptions,
    map: &mut FiMap,
    next_site: &mut u32,
    in_loop: bool,
) -> Block {
    let mut out = Vec::with_capacity(block.0.len() * 2);
    for s in block.0 {
        match s {
            Stmt::Assign { var, value } => {
                let instrument = var < opts.var_bound
                    && opts
                        .only_var
                        .as_deref()
                        .map(|n| k.vars[var as usize].name == n)
                        .unwrap_or(true);
                let hw = classify_hw(k, var, &value);
                out.push(Stmt::Assign { var, value });
                if instrument {
                    let site = *next_site;
                    *next_site += 1;
                    let kind = if opts.count_mode {
                        HookKind::CountExec
                    } else {
                        HookKind::FiPoint { hw }
                    };
                    out.push(Stmt::Hook(Hook {
                        kind,
                        site,
                        args: vec![],
                        target: Some(var),
                    }));
                    map.sites.push(FiSite {
                        site,
                        var,
                        var_name: k.vars[var as usize].name.clone(),
                        class: k.var_ty(var).data_class(),
                        hw,
                        in_loop,
                    });
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                out.push(Stmt::If {
                    cond,
                    then_blk: walk(k, then_blk, opts, map, next_site, in_loop),
                    else_blk: walk(k, else_blk, opts, map, next_site, in_loop),
                });
            }
            Stmt::For {
                id,
                var,
                init,
                cond,
                step,
                body,
            } => {
                out.push(Stmt::For {
                    id,
                    var,
                    init,
                    cond,
                    step,
                    body: walk(k, body, opts, map, next_site, true),
                });
            }
            Stmt::While { id, cond, body } => {
                out.push(Stmt::While {
                    id,
                    cond,
                    body: walk(k, body, opts, map, next_site, true),
                });
            }
            other => out.push(other),
        }
    }
    Block(out)
}

fn collect_loops(block: &Block, out: &mut Vec<LoopSite>) {
    hauberk_kir::visit::for_each_stmt(block, &mut |s| match s {
        Stmt::For { id, .. } => out.push(LoopSite {
            loop_id: *id,
            has_iterator: true,
        }),
        Stmt::While { id, .. } => out.push(LoopSite {
            loop_id: *id,
            has_iterator: false,
        }),
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::parser::parse_kernel;
    use hauberk_kir::printer::print_kernel;
    use hauberk_kir::types::DataClass;
    use hauberk_kir::validate::validate_kernel;

    const SRC: &str = r#"kernel t(out: *global f32, x: *global f32, n: i32) {
        let p: *global f32 = x + 4;
        let scale: f32 = sqrt(2.0);
        let acc: f32 = 0.0;
        for (i = 0; i < n; i = i + 1) {
            let v: f32 = load(p, i);
            acc = acc + v * scale;
        }
        store(out, 0, acc);
    }"#;

    fn instrumented() -> (KernelDef, FiMap) {
        let mut k = parse_kernel(SRC).unwrap();
        let bound = k.vars.len() as u32;
        let map = instrument_fi(
            &mut k,
            FiPassOptions {
                var_bound: bound,
                count_mode: false,
                only_var: None,
            },
        );
        k.renumber();
        validate_kernel(&k).unwrap();
        (k, map)
    }

    #[test]
    fn every_definition_gets_a_site() {
        let (k, map) = instrumented();
        // Defs: p, scale, acc, v, acc-in-loop = 5 sites.
        assert_eq!(map.sites.len(), 5);
        let p = print_kernel(&k);
        assert_eq!(p.matches("@fi_point").count(), 5);
    }

    #[test]
    fn classification_matches_types_and_ops() {
        let (_, map) = instrumented();
        let by_name = |n: &str| map.sites.iter().find(|s| s.var_name == n).unwrap();
        assert_eq!(by_name("p").class, DataClass::Pointer);
        assert_eq!(by_name("p").hw, HwComponent::IAlu);
        assert_eq!(by_name("scale").class, DataClass::Float);
        assert_eq!(by_name("scale").hw, HwComponent::Sfu);
        assert_eq!(by_name("v").hw, HwComponent::Mem);
        assert!(by_name("v").in_loop);
        assert!(!by_name("scale").in_loop);
        // The in-loop accumulation of acc: FPU.
        let acc_sites: Vec<_> = map.sites.iter().filter(|s| s.var_name == "acc").collect();
        assert_eq!(acc_sites.len(), 2);
        assert!(acc_sites
            .iter()
            .any(|s| s.in_loop && s.hw == HwComponent::Fpu));
    }

    #[test]
    fn loops_are_enumerated_for_scheduler_faults() {
        let (_, map) = instrumented();
        assert_eq!(map.loops.len(), 1);
        assert!(map.loops[0].has_iterator);
    }

    #[test]
    fn var_bound_excludes_translator_state() {
        let mut k = parse_kernel(SRC).unwrap();
        let bound = 4; // only the three params + first local
        let map = instrument_fi(
            &mut k,
            FiPassOptions {
                var_bound: bound,
                count_mode: false,
                only_var: None,
            },
        );
        assert!(map.sites.iter().all(|s| s.var < bound));
        assert_eq!(map.sites.len(), 1); // only `p`
    }

    #[test]
    fn count_mode_emits_count_hooks() {
        let mut k = parse_kernel(SRC).unwrap();
        let bound = k.vars.len() as u32;
        instrument_fi(
            &mut k,
            FiPassOptions {
                var_bound: bound,
                count_mode: true,
                only_var: None,
            },
        );
        let p = print_kernel(&k);
        assert!(p.contains("@count_exec"));
        assert!(!p.contains("@fi_point"));
    }

    #[test]
    fn compile_time_target_selection_instruments_one_variable() {
        let mut k = parse_kernel(SRC).unwrap();
        let bound = k.vars.len() as u32;
        let map = instrument_fi(
            &mut k,
            FiPassOptions {
                var_bound: bound,
                count_mode: false,
                only_var: Some("acc".to_string()),
            },
        );
        assert_eq!(map.sites.len(), 2, "both defs of `acc`, nothing else");
        assert!(map.sites.iter().all(|s| s.var_name == "acc"));
    }
}
