//! The Hauberk source-to-source translator (over KIR).
//!
//! Each pass is a pure AST→AST rewrite, mirroring the CETUS-based source
//! mutation of the paper (Table I):
//!
//! * [`nonloop`] — duplication + XOR-checksum protection of virtual variables
//!   defined outside loops (Hauberk-NL, §V.A).
//! * [`loops`] — accumulation-based value-range checking of selected loop
//!   variables plus the loop trip-count invariant (Hauberk-L, §V.B); also
//!   used in *profile mode* to emit the profiler library's recording hooks.
//! * [`fi`] — the SWIFI mutation: a fault-injection point after every
//!   state-changing statement (§VII, Fig. 12); also used in *count mode* to
//!   emit execution-count hooks that enumerate and weight injection targets.
//! * [`rscatter`] — the R-Scatter comparison baseline: full statement
//!   duplication inside the kernel, doubling shared-memory use.
//! * [`select`] — selective placement: the serializable [`select::HardeningPlan`]
//!   / [`select::HardeningSelection`] that restrict the NL/L passes to a
//!   vulnerability-ranked subset of sites (closed-loop hardening).

pub mod fi;
pub mod loops;
pub mod nonloop;
pub mod rscatter;
pub mod select;

use hauberk_kir::stmt::{LoopId, SiteId};
use hauberk_kir::types::DataClass;
use hauberk_kir::{HwComponent, VarId};

/// Description of one placed loop detector.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopDetectorSpec {
    /// Detector index (slot in the control block's range table).
    pub id: usize,
    /// The loop it protects.
    pub loop_id: LoopId,
    /// The protected virtual variable (original kernel numbering).
    pub var: VarId,
    /// Its source name.
    pub var_name: String,
    /// Whether the variable was self-accumulating (no accumulator code was
    /// added inside the loop).
    pub self_accumulating: bool,
    /// Whether a loop trip-count invariant check was also placed.
    pub trip_checked: bool,
}

/// One fault-injection point.
#[derive(Debug, Clone, PartialEq)]
pub struct FiSite {
    /// Site id carried by the hook.
    pub site: SiteId,
    /// The variable whose definition this site follows.
    pub var: VarId,
    /// Its source name.
    pub var_name: String,
    /// The paper's pointer/integer/FP classification of the variable.
    pub class: DataClass,
    /// Hardware component exercised by the defining statement.
    pub hw: HwComponent,
    /// Whether the definition sits inside a loop.
    pub in_loop: bool,
}

/// One loop available for scheduler-fault targeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopSite {
    /// Loop id.
    pub loop_id: LoopId,
    /// Whether the loop is a `for` with a corruptible iterator.
    pub has_iterator: bool,
}

/// The fault-injection surface of an instrumented kernel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FiMap {
    /// Injection points after state-changing statements.
    pub sites: Vec<FiSite>,
    /// Loops for scheduler-fault emulation.
    pub loops: Vec<LoopSite>,
}
