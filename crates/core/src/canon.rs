//! Canonical content hashing for campaign identity.
//!
//! Several layers of the stack need to answer "is this the same campaign?"
//! from bytes alone: the journal fingerprints its injection plan so a stale
//! checkpoint file is rejected instead of mis-replayed, the checkpoint store
//! derives its identity from (plan, section structure, engine), and the
//! serve daemon keys its content-addressed result cache by the canonical
//! submission spec. All of them hash with the same primitive — FNV-1a over a
//! canonical byte serialization — so equality of hashes means equality of
//! the canonical form, with one implementation to audit.
//!
//! FNV-1a is not cryptographic; it is used here for *identity*, not
//! integrity: colliding on purpose buys an attacker nothing they could not
//! get by submitting the colliding spec directly.

/// Incremental FNV-1a over a byte stream (64-bit, offset basis
/// `0xcbf29ce484222325`, prime `0x100000001b3`).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }
}

impl Fnv1a {
    /// Fold bytes into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of `bytes`, formatted as the 16-hex-digit form used for
/// journal checkpoint identities and serve cache keys. Hex rather than a raw
/// `u64` because the full 64 bits do not survive an f64-backed JSON number
/// round-trip.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h = Fnv1a::default();
    h.write(bytes);
    format!("{:016x}", h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors (64-bit).
        let mut h = Fnv1a::default();
        assert_eq!(h.finish(), 0xcbf29ce484222325, "offset basis");
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn hex_form_is_stable_and_order_sensitive() {
        assert_eq!(fnv1a_hex(b""), format!("{:016x}", 0xcbf29ce484222325u64));
        assert_ne!(fnv1a_hex(b"ab"), fnv1a_hex(b"ba"));
        let mut h = Fnv1a::default();
        h.write(b"ab");
        assert_eq!(fnv1a_hex(b"ab"), format!("{:016x}", h.finish()));
    }
}
