//! The full compilation & evaluation flow of the paper's Fig. 7, as a
//! reusable pipeline: from one baseline kernel, produce the five program
//! binaries (baseline / profiler / FT / FI / FI&FT), run the profiler over
//! training datasets, persist the learned value ranges to a file (the FT
//! library "loads the profiled value range from a file" at `main()` entry
//! and "stores the updated value ranges to the same file" at exit, §V.B),
//! and hand back a ready-to-run protected program.

use crate::builds::{build, BuildVariant, FtOptions, Instrumented};
use crate::control::ControlBlock;
use crate::program::{run_program, HostProgram, ProgramRun};
use crate::ranges::{profile_ranges, ranges_from_string, ranges_to_string, RangeSet};
use crate::runtime::{FtRuntime, ProfilerRuntime};
use hauberk_kir::validate::ValidateError;
use std::io;
use std::path::{Path, PathBuf};

/// The five build artifacts of Fig. 7.
#[derive(Debug)]
pub struct BuildSet {
    /// Unmodified kernel (baseline performance, golden runs).
    pub baseline: Instrumented,
    /// Profiler-library build.
    pub profiler: Instrumented,
    /// FT-library build.
    pub ft: Instrumented,
    /// FI-library build (baseline sensitivity).
    pub fi: Instrumented,
    /// FI&FT build (coverage evaluation).
    pub fi_ft: Instrumented,
}

/// Produce all five builds from the program's baseline kernel.
pub fn build_all(prog: &dyn HostProgram, opts: FtOptions) -> Result<BuildSet, ValidateError> {
    let k = prog.build_kernel();
    Ok(BuildSet {
        baseline: build(&k, BuildVariant::Baseline)?,
        profiler: build(&k, BuildVariant::Profiler(opts))?,
        ft: build(&k, BuildVariant::Ft(opts))?,
        fi: build(&k, BuildVariant::Fi)?,
        fi_ft: build(&k, BuildVariant::FiFt(opts))?,
    })
}

/// A program protected by Hauberk, with persisted value ranges.
pub struct ProtectedProgram<'p> {
    /// The supervised program.
    pub prog: &'p dyn HostProgram,
    /// The build artifacts.
    pub builds: BuildSet,
    /// The loop detectors' learned ranges (kept in sync with
    /// [`ProtectedProgram::ranges_path`]).
    pub ranges: Vec<RangeSet>,
    /// Where the ranges are persisted (none = in-memory only).
    pub ranges_path: Option<PathBuf>,
}

impl<'p> ProtectedProgram<'p> {
    /// Build and train a protected program: produce the five builds, run the
    /// profiler over `training_datasets`, and learn the value ranges. When
    /// `ranges_path` exists it is loaded instead of re-profiling (and kept
    /// updated by [`ProtectedProgram::save_ranges`]).
    pub fn prepare(
        prog: &'p dyn HostProgram,
        opts: FtOptions,
        training_datasets: &[u64],
        ranges_path: Option<&Path>,
    ) -> io::Result<Self> {
        let builds = build_all(prog, opts)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let n_det = builds.ft.detectors.len();

        let ranges = match ranges_path {
            Some(p) if p.exists() => {
                let text = std::fs::read_to_string(p)?;
                let loaded = ranges_from_string(&text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                if loaded.len() != n_det {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "ranges file has {} detectors, the FT build has {n_det}",
                            loaded.len()
                        ),
                    ));
                }
                loaded
            }
            _ => {
                let mut merged = vec![RangeSet::default(); n_det];
                for &ds in training_datasets {
                    let mut pr = ProfilerRuntime::default();
                    let run = run_program(prog, &builds.profiler.kernel, ds, &mut pr, u64::MAX);
                    if !run.outcome.is_completed() {
                        return Err(io::Error::other(format!(
                            "profiling run on dataset {ds} failed"
                        )));
                    }
                    for (d, m) in merged.iter_mut().enumerate() {
                        m.merge(&profile_ranges(pr.samples(d as u32)));
                    }
                }
                merged
            }
        };

        let pp = ProtectedProgram {
            prog,
            builds,
            ranges,
            ranges_path: ranges_path.map(Path::to_path_buf),
        };
        pp.save_ranges()?;
        Ok(pp)
    }

    /// Persist the current ranges (no-op without a path).
    pub fn save_ranges(&self) -> io::Result<()> {
        if let Some(p) = &self.ranges_path {
            std::fs::write(p, ranges_to_string(&self.ranges))?;
        }
        Ok(())
    }

    /// Run the FT build once, fault-free, on `dataset`; returns the run and
    /// whether the detectors raised an alarm (a false positive on a clean
    /// device). On a false positive the outliers are folded into the ranges
    /// and persisted (on-line learning, §V.B step iv).
    pub fn run_protected(&mut self, dataset: u64) -> io::Result<(ProgramRun, bool)> {
        let mut rt = FtRuntime::new(ControlBlock::with_ranges(self.ranges.clone()));
        let run = run_program(
            self.prog,
            &self.builds.ft.kernel,
            dataset,
            &mut rt,
            u64::MAX,
        );
        let alarm = rt.cb.sdc_flag;
        if alarm {
            rt.cb.learn_outliers();
            self.ranges = rt.cb.ranges;
            self.save_ranges()?;
        }
        Ok((run, alarm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::parser::parse_kernel;
    use hauberk_kir::{KernelDef, PrimTy, Value};
    use hauberk_sim::{Device, Launch};

    /// A tiny self-contained HostProgram for pipeline tests.
    struct Toy;

    impl HostProgram for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn build_kernel(&self) -> KernelDef {
            parse_kernel(
                r#"kernel toy(out: *global f32, x: *global f32, n: i32, scale: f32) {
                    let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
                    let acc: f32 = 0.0;
                    for (i = 0; i < n; i = i + 1) {
                        acc = acc + load(x, i) * scale;
                    }
                    store(out, tid, acc);
                }"#,
            )
            .unwrap()
        }
        fn launch(&self) -> Launch {
            Launch::grid1d(1, 32)
        }
        fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value> {
            let out = dev.alloc(PrimTy::F32, 32);
            let x = dev.alloc(PrimTy::F32, 16);
            let data: Vec<f32> = (0..16).map(|i| (i + 1) as f32 * 0.1).collect();
            dev.mem.copy_in_f32(x, &data);
            // Dataset 9 is a deliberate outlier (different scale).
            let scale = if dataset == 9 {
                100.0
            } else {
                1.0 + dataset as f32 * 0.01
            };
            vec![
                Value::Ptr(out),
                Value::Ptr(x),
                Value::I32(16),
                Value::F32(scale),
            ]
        }
        fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
            dev.mem
                .copy_out_f32(args[0].as_ptr().unwrap(), 32)
                .into_iter()
                .map(|v| v as f64)
                .collect()
        }
        fn spec(&self) -> crate::program::CorrectnessSpec {
            crate::program::CorrectnessSpec::RelAbs {
                rel: 0.01,
                abs: 1e-6,
            }
        }
        fn memory_breakdown(&self) -> crate::program::MemBreakdown {
            crate::program::MemBreakdown::default()
        }
    }

    #[test]
    fn build_all_produces_consistent_detector_layouts() {
        let b = build_all(&Toy, FtOptions::default()).unwrap();
        assert_eq!(b.profiler.detectors.len(), b.ft.detectors.len());
        assert_eq!(b.ft.detectors.len(), b.fi_ft.detectors.len());
        assert!(!b.fi.fi.sites.is_empty());
        assert!(b.baseline.fi.sites.is_empty());
    }

    #[test]
    fn pipeline_trains_saves_loads_and_learns() {
        let dir = std::env::temp_dir().join(format!("hauberk_pipeline_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.ranges");
        let _ = std::fs::remove_file(&path);

        // Train on datasets 0..3 and persist.
        let mut pp =
            ProtectedProgram::prepare(&Toy, FtOptions::default(), &[0, 1, 2], Some(&path)).unwrap();
        assert!(path.exists());
        let (run, alarm) = pp.run_protected(1).unwrap();
        assert!(run.outcome.is_completed());
        assert!(!alarm, "trained dataset runs clean");

        // An outlier dataset raises a false positive and is learned.
        let (_, alarm) = pp.run_protected(9).unwrap();
        assert!(alarm, "outlier dataset alarms");
        let (_, alarm2) = pp.run_protected(9).unwrap();
        assert!(!alarm2, "on-line learning absorbed the outlier");

        // A fresh pipeline loads the persisted (learned) ranges from disk.
        let mut pp2 =
            ProtectedProgram::prepare(&Toy, FtOptions::default(), &[], Some(&path)).unwrap();
        let (_, alarm3) = pp2.run_protected(9).unwrap();
        assert!(!alarm3, "persisted ranges include the learned outlier");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn stale_ranges_file_is_rejected() {
        let dir = std::env::temp_dir().join(format!("hauberk_pipeline_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.ranges");
        std::fs::write(&path, "detector 0 t=1e-5 n=1 neg=none zero=none pos=1 2\ndetector 1 t=1e-5 n=1 neg=none zero=none pos=1 2\ndetector 2 t=1e-5 n=1 neg=none zero=none pos=1 2\n").unwrap();
        let r = ProtectedProgram::prepare(&Toy, FtOptions::default(), &[], Some(&path));
        assert!(r.is_err(), "detector count mismatch must be rejected");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
