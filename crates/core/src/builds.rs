//! Build variants: the five program binaries of the Hauberk framework
//! (Fig. 7) plus the comparison baselines.

use crate::translator::fi::{instrument_fi, FiPassOptions};
use crate::translator::loops::{instrument_loops_selected, LoopPassOptions};
use crate::translator::nonloop::instrument_nonloop_selected;
use crate::translator::rscatter::instrument_rscatter;
use crate::translator::select::HardeningSelection;
use crate::translator::{FiMap, LoopDetectorSpec};
use hauberk_kir::validate::{validate_kernel, ValidateError};
use hauberk_kir::KernelDef;

/// Which detectors the FT instrumentation places.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtOptions {
    /// Place the non-loop duplication + checksum detectors (Hauberk-NL).
    pub nonloop: bool,
    /// Place the loop accumulation-based range detectors (Hauberk-L).
    pub loops: bool,
    /// Max protected variables per loop (`Maxvar`; the paper evaluates 1).
    pub max_var: usize,
}

impl Default for FtOptions {
    fn default() -> Self {
        FtOptions {
            nonloop: true,
            loops: true,
            // The paper evaluates Maxvar = 1; we default to 2 because the
            // second protected variable is usually a *self-accumulator*
            // (zero in-loop cost) and kernels like MRI-Q/MRI-FHD have two
            // output accumulators — leaving the second unprotected lets its
            // direct corruptions escape. Fig. 13 is reproduced with this
            // default; the Maxvar = 1 overheads are within 0.5% of it.
            max_var: 2,
        }
    }
}

impl FtOptions {
    /// Hauberk-NL only.
    pub fn nl_only() -> Self {
        FtOptions {
            nonloop: true,
            loops: false,
            max_var: 1,
        }
    }

    /// Hauberk-L only.
    pub fn l_only() -> Self {
        FtOptions {
            nonloop: false,
            loops: true,
            max_var: 1,
        }
    }
}

/// The build variant to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildVariant {
    /// Unmodified kernel (baseline performance / golden runs).
    Baseline,
    /// Profiler library: value-range recording + execution counting. The
    /// `Maxvar` must match the FT build whose control block the profiled
    /// ranges configure.
    Profiler(FtOptions),
    /// Fault-tolerance library: the Hauberk detectors.
    Ft(FtOptions),
    /// Fault injector on the *baseline* program (error-sensitivity studies).
    Fi,
    /// Fault injector on the FT-instrumented program (coverage studies).
    FiFt(FtOptions),
    /// The R-Scatter optimized-duplication baseline.
    RScatter,
}

/// An instrumented kernel plus its metadata.
#[derive(Debug, Clone)]
pub struct Instrumented {
    /// The (possibly rewritten) kernel.
    pub kernel: KernelDef,
    /// Loop detectors placed by the FT/profiler passes (defines the control
    /// block's range-table size).
    pub detectors: Vec<LoopDetectorSpec>,
    /// Fault-injection surface (FI/FI&FT/profiler builds).
    pub fi: FiMap,
    /// Number of variables in the original kernel (ids below this bound are
    /// original program state).
    pub orig_vars: usize,
}

/// Produce one build variant from a baseline kernel.
///
/// The input and the instrumented output are both validated — a translator
/// bug that produces ill-typed code is caught here, not at launch.
pub fn build(kernel: &KernelDef, variant: BuildVariant) -> Result<Instrumented, ValidateError> {
    build_selected(kernel, variant, None)
}

/// [`build`] restricted to a [`HardeningSelection`]: the FT passes of the
/// Profiler/Ft/FiFt variants instrument only the selected sites. `None`
/// reproduces [`build`] exactly. A selection with an empty NL (or loop)
/// component skips that pass entirely — no checksum variable, no
/// kernel-exit check (or no counters) — so an empty selection is the
/// baseline build with zero detector overhead. The FI surface is *not*
/// filtered: the fault-injection pass instruments only original-program
/// variables in original statement order, so FI site numbering — and with it
/// campaign plans, fingerprints, and journals — is identical across
/// selections, which is what makes a hardened coverage campaign
/// index-comparable to its baseline.
pub fn build_selected(
    kernel: &KernelDef,
    variant: BuildVariant,
    selection: Option<&HardeningSelection>,
) -> Result<Instrumented, ValidateError> {
    validate_kernel(kernel)?;
    let orig_vars = kernel.vars.len();
    let mut k = kernel.clone();
    let mut detectors = Vec::new();
    let mut fi = FiMap::default();
    let want_nl = selection.is_none_or(|s| !s.nonloop_vars.is_empty());
    let want_loops = selection.is_none_or(|s| !s.loop_detectors.is_empty());

    match variant {
        BuildVariant::Baseline => {}
        BuildVariant::Profiler(opts) => {
            if want_loops {
                detectors = instrument_loops_selected(
                    &mut k,
                    LoopPassOptions {
                        max_var: opts.max_var,
                        profile_mode: true,
                    },
                    selection,
                );
            }
            fi = instrument_fi(
                &mut k,
                FiPassOptions {
                    var_bound: orig_vars as u32,
                    count_mode: true,
                    only_var: None,
                },
            );
        }
        BuildVariant::Ft(opts) => {
            if opts.nonloop && want_nl {
                instrument_nonloop_selected(&mut k, selection);
            }
            if opts.loops && want_loops {
                detectors = instrument_loops_selected(
                    &mut k,
                    LoopPassOptions {
                        max_var: opts.max_var,
                        profile_mode: false,
                    },
                    selection,
                );
            }
        }
        BuildVariant::Fi => {
            fi = instrument_fi(
                &mut k,
                FiPassOptions {
                    var_bound: orig_vars as u32,
                    count_mode: false,
                    only_var: None,
                },
            );
        }
        BuildVariant::FiFt(opts) => {
            if opts.nonloop && want_nl {
                instrument_nonloop_selected(&mut k, selection);
            }
            if opts.loops && want_loops {
                detectors = instrument_loops_selected(
                    &mut k,
                    LoopPassOptions {
                        max_var: opts.max_var,
                        profile_mode: false,
                    },
                    selection,
                );
            }
            fi = instrument_fi(
                &mut k,
                FiPassOptions {
                    var_bound: orig_vars as u32,
                    count_mode: false,
                    only_var: None,
                },
            );
        }
        BuildVariant::RScatter => {
            instrument_rscatter(&mut k);
        }
    }
    k.renumber();
    validate_kernel(&k)?;
    Ok(Instrumented {
        kernel: k,
        detectors,
        fi,
        orig_vars,
    })
}

/// The simulated kernel time of the R-Naïve baseline: the kernel executes
/// twice (on two copies of the data), and the outputs are compared on the
/// CPU side, so GPU time exactly doubles (§IX.A: "R-Naïve ... almost doubles
/// the GPU execution time").
pub fn r_naive_cycles(baseline_kernel_cycles: u64) -> u64 {
    baseline_kernel_cycles * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::parser::parse_kernel;

    const SRC: &str = r#"kernel dot(out: *global f32, x: *global f32, n: i32) {
        let acc: f32 = 0.0;
        for (i = 0; i < n; i = i + 1) {
            acc = acc + load(x, i) * load(x, i);
        }
        store(out, thread_idx_x(), acc);
    }"#;

    fn base() -> KernelDef {
        parse_kernel(SRC).unwrap()
    }

    #[test]
    fn all_variants_validate() {
        let k = base();
        for v in [
            BuildVariant::Baseline,
            BuildVariant::Profiler(FtOptions::default()),
            BuildVariant::Ft(FtOptions::default()),
            BuildVariant::Ft(FtOptions::nl_only()),
            BuildVariant::Ft(FtOptions::l_only()),
            BuildVariant::Fi,
            BuildVariant::FiFt(FtOptions::default()),
            BuildVariant::RScatter,
        ] {
            let b = build(&k, v).unwrap_or_else(|e| panic!("{v:?}: {e}"));
            assert_eq!(b.orig_vars, k.vars.len());
        }
    }

    #[test]
    fn baseline_is_identity() {
        let k = base();
        let b = build(&k, BuildVariant::Baseline).unwrap();
        assert_eq!(b.kernel, k);
        assert!(b.detectors.is_empty());
        assert!(b.fi.sites.is_empty());
    }

    #[test]
    fn fift_has_detectors_and_sites_on_original_vars_only() {
        let k = base();
        let b = build(&k, BuildVariant::FiFt(FtOptions::default())).unwrap();
        assert_eq!(b.detectors.len(), 1);
        assert!(!b.fi.sites.is_empty());
        assert!(b.fi.sites.iter().all(|s| (s.var as usize) < b.orig_vars));
    }

    #[test]
    fn profiler_matches_ft_detector_layout() {
        let k = base();
        let p = build(&k, BuildVariant::Profiler(FtOptions::l_only())).unwrap();
        let f = build(&k, BuildVariant::Ft(FtOptions::l_only())).unwrap();
        assert_eq!(p.detectors.len(), f.detectors.len());
        assert_eq!(p.detectors[0].var_name, f.detectors[0].var_name);
        assert_eq!(p.detectors[0].loop_id, f.detectors[0].loop_id);
    }

    #[test]
    fn r_naive_doubles() {
        assert_eq!(r_naive_cycles(1000), 2000);
    }

    #[test]
    fn empty_selection_is_the_baseline_build() {
        let k = base();
        let sel = HardeningSelection::default();
        let b = build_selected(&k, BuildVariant::Ft(FtOptions::default()), Some(&sel)).unwrap();
        let plain = build(&k, BuildVariant::Baseline).unwrap();
        assert_eq!(b.kernel, plain.kernel, "no detectors → no code changes");
        assert!(b.detectors.is_empty());
    }

    #[test]
    fn fi_surface_is_invariant_across_selections() {
        // The closed-loop contract: campaign plans are derived from the FI
        // map, so the map must not depend on which detectors are placed.
        let k = base();
        let full = build(&k, BuildVariant::FiFt(FtOptions::default())).unwrap();
        let sel = HardeningSelection {
            nonloop_vars: vec!["acc".into()],
            loop_detectors: full
                .detectors
                .iter()
                .map(|d| (d.loop_id, d.var_name.clone()))
                .collect(),
            trip_checks: vec![],
        };
        for s in [None, Some(&sel), Some(&HardeningSelection::default())] {
            let b = build_selected(&k, BuildVariant::FiFt(FtOptions::default()), s).unwrap();
            assert_eq!(b.fi, full.fi, "selection {s:?} perturbed the FI map");
        }
        let fi_only = build(&k, BuildVariant::Fi).unwrap();
        assert_eq!(fi_only.fi, full.fi);
    }

    #[test]
    fn selected_profiler_matches_selected_ft_layout() {
        let k = base();
        let full = build(&k, BuildVariant::Ft(FtOptions::default())).unwrap();
        let sel = HardeningSelection {
            nonloop_vars: vec![],
            loop_detectors: full
                .detectors
                .iter()
                .map(|d| (d.loop_id, d.var_name.clone()))
                .collect(),
            trip_checks: full.detectors.iter().map(|d| d.loop_id).collect(),
        };
        let p =
            build_selected(&k, BuildVariant::Profiler(FtOptions::default()), Some(&sel)).unwrap();
        let f = build_selected(&k, BuildVariant::Ft(FtOptions::default()), Some(&sel)).unwrap();
        assert_eq!(p.detectors.len(), f.detectors.len());
        for (a, b) in p.detectors.iter().zip(&f.detectors) {
            assert_eq!(
                (a.id, a.loop_id, &a.var_name),
                (b.id, b.loop_id, &b.var_name)
            );
        }
    }
}
