//! The value-range model of the Hauberk loop detector (§V.B).
//!
//! The paper's measurement (Fig. 10) shows that values computed for a single
//! program variable cluster around **up to three correlation points**: one
//! near zero and one each in the negative and positive magnitudes. The
//! profiling algorithm here learns such a three-cluster [`RangeSet`] by
//! splitting samples at a near-zero threshold and hill-climbing the threshold
//! (×10 / ×0.1) to minimize the total covered *value space*, measured in
//! IEEE-754 bit space (the count of representable `f32` values covered — the
//! honest notion of "fraction of the available FP value space", §V.B).
//!
//! The recovery engine widens ranges by a multiplicative `alpha` when the
//! observed false-positive ratio is too high, and re-tightens it when low
//! (§VI iii); [`RangeSet::apply_alpha`] implements the widening.

use std::fmt;

/// A closed interval `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Range {
    /// Lower bound (inclusive).
    pub min: f64,
    /// Upper bound (inclusive).
    pub max: f64,
}

impl Range {
    /// Point range.
    pub fn point(v: f64) -> Range {
        Range { min: v, max: v }
    }

    /// Whether `v` lies inside.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.min && v <= self.max
    }

    /// Extend to include `v`.
    pub fn extend(&mut self, v: f64) {
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Union of two ranges.
    pub fn union(a: Range, b: Range) -> Range {
        Range {
            min: a.min.min(b.min),
            max: a.max.max(b.max),
        }
    }
}

/// Monotonic order-preserving map from `f32` to `u64` bit space (positive
/// floats sort by bit pattern; negatives are flipped below zero).
fn f32_order(x: f32) -> i64 {
    let b = x.to_bits() as i64;
    if x.is_sign_negative() {
        // Negative floats: larger bit pattern = more negative.
        -(b & 0x7FFF_FFFF)
    } else {
        b
    }
}

/// Bit-space width of a closed interval: how many representable `f32` values
/// it covers (saturating at the f32 boundary behaviour for f64 inputs).
fn bit_space(r: &Range) -> u64 {
    let lo = f32_order(r.min as f32);
    let hi = f32_order(r.max as f32);
    (hi - lo).unsigned_abs() + 1
}

/// Up to three value clusters for one protected variable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RangeSet {
    /// Negative-magnitude cluster (values ≤ −threshold).
    pub neg: Option<Range>,
    /// Near-zero cluster (−threshold, +threshold) — the paper's correlation
    /// point at zero.
    pub zero: Option<Range>,
    /// Positive-magnitude cluster (values ≥ +threshold).
    pub pos: Option<Range>,
    /// The near-zero threshold the clusters were split at.
    pub zero_threshold: f64,
    /// Number of samples this set was trained on.
    pub samples: u64,
}

impl RangeSet {
    /// Whether `v` is inside any cluster. NaN is never contained (a NaN
    /// average is always an alarm).
    pub fn contains(&self, v: f64) -> bool {
        if v.is_nan() {
            return false;
        }
        self.neg.map(|r| r.contains(v)).unwrap_or(false)
            || self.zero.map(|r| r.contains(v)).unwrap_or(false)
            || self.pos.map(|r| r.contains(v)).unwrap_or(false)
    }

    /// Whether any training data was ever folded in.
    pub fn is_trained(&self) -> bool {
        self.samples > 0
    }

    /// Total covered value space, in f32 bit-space units.
    pub fn value_space(&self) -> u64 {
        self.neg.as_ref().map(bit_space).unwrap_or(0)
            + self.zero.as_ref().map(bit_space).unwrap_or(0)
            + self.pos.as_ref().map(bit_space).unwrap_or(0)
    }

    /// Extend the nearest cluster to include `v` (online learning after a
    /// diagnosed false positive, §VI ii.a).
    pub fn learn(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.samples += 1;
        let t = if self.zero_threshold > 0.0 {
            self.zero_threshold
        } else {
            DEFAULT_ZERO_THRESHOLD
        };
        let slot = if v <= -t {
            &mut self.neg
        } else if v >= t {
            &mut self.pos
        } else {
            &mut self.zero
        };
        match slot {
            Some(r) => r.extend(v),
            None => *slot = Some(Range::point(v)),
        }
    }

    /// Merge another trained set into this one (multi-dataset training).
    pub fn merge(&mut self, other: &RangeSet) {
        fn m(a: &mut Option<Range>, b: Option<Range>) {
            *a = match (*a, b) {
                (Some(x), Some(y)) => Some(Range::union(x, y)),
                (x, None) => x,
                (None, y) => y,
            };
        }
        m(&mut self.neg, other.neg);
        m(&mut self.zero, other.zero);
        m(&mut self.pos, other.pos);
        self.samples += other.samples;
        if self.zero_threshold == 0.0 {
            self.zero_threshold = other.zero_threshold;
        }
    }

    /// Widen every cluster by the multiplicative factor `alpha ≥ 1` (§VI
    /// iii): magnitudes of outer bounds grow by `alpha`, magnitudes of inner
    /// bounds shrink by `alpha`.
    pub fn apply_alpha(&self, alpha: f64) -> RangeSet {
        assert!(alpha >= 1.0, "alpha must be >= 1");
        let widen = |r: Range| -> Range {
            let lo = widen_bound(r.min, alpha, false);
            let hi = widen_bound(r.max, alpha, true);
            Range { min: lo, max: hi }
        };
        RangeSet {
            neg: self.neg.map(widen),
            zero: self.zero.map(widen),
            pos: self.pos.map(widen),
            zero_threshold: self.zero_threshold,
            samples: self.samples,
        }
    }
}

/// Widen one bound away from zero (`outward=true` pushes `max` up /
/// `outward=false` pushes `min` down).
fn widen_bound(b: f64, alpha: f64, upper: bool) -> f64 {
    if b == 0.0 {
        return 0.0;
    }
    let grows_magnitude = (b > 0.0) == upper;
    if grows_magnitude {
        b * alpha
    } else {
        b / alpha
    }
}

/// Default near-zero threshold of the profiling sweep (the paper's example
/// default of ±10⁻⁵).
pub const DEFAULT_ZERO_THRESHOLD: f64 = 1e-5;

/// Cluster `values` at threshold `t`.
fn cluster(values: &[f64], t: f64) -> RangeSet {
    let mut rs = RangeSet {
        zero_threshold: t,
        ..RangeSet::default()
    };
    for &v in values {
        if v.is_nan() {
            continue;
        }
        rs.samples += 1;
        let slot = if v <= -t {
            &mut rs.neg
        } else if v >= t {
            &mut rs.pos
        } else {
            &mut rs.zero
        };
        match slot {
            Some(r) => r.extend(v),
            None => *slot = Some(Range::point(v)),
        }
    }
    rs
}

/// Relative inflation applied to profiled cluster bounds: a finite sample
/// of per-thread values underestimates the true envelope, so the profiler
/// widens each cluster's magnitude bounds by this factor (tiny compared to
/// the orders-of-magnitude changes faults cause — Fig. 15 — so it costs no
/// measurable coverage, but it lets stable programs like PNS converge to
/// zero false positives after a handful of training sets, Fig. 16).
pub const PROFILE_MARGIN: f64 = 1.05;

/// The paper's value-range profiling algorithm: cluster at the default
/// threshold, sweep the threshold ×10 / ×0.1 while the covered value space
/// shrinks, then inflate by [`PROFILE_MARGIN`].
pub fn profile_ranges(values: &[f64]) -> RangeSet {
    profile_ranges_unpadded(values).apply_alpha(PROFILE_MARGIN)
}

/// [`profile_ranges`] without the finite-sample margin.
pub fn profile_ranges_unpadded(values: &[f64]) -> RangeSet {
    let mut t = DEFAULT_ZERO_THRESHOLD;
    let mut best = cluster(values, t);
    let mut best_space = best.value_space();
    for _ in 0..60 {
        let up = cluster(values, t * 10.0);
        let down = cluster(values, t * 0.1);
        let (cand, cand_t) = if up.value_space() <= down.value_space() {
            (up, t * 10.0)
        } else {
            (down, t * 0.1)
        };
        if cand.value_space() < best_space {
            best_space = cand.value_space();
            best = cand;
            t = cand_t;
        } else {
            break;
        }
    }
    best
}

impl fmt::Display for RangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = |r: &Option<Range>| match r {
            Some(r) => format!("[{:.3e}, {:.3e}]", r.min, r.max),
            None => "-".to_string(),
        };
        write!(
            f,
            "neg={} zero={} pos={} (t={:.0e}, n={})",
            p(&self.neg),
            p(&self.zero),
            p(&self.pos),
            self.zero_threshold,
            self.samples
        )
    }
}

// ---------------------------------------------------------------------------
// Persistence (the profiled-ranges file of Fig. 7, hand-rolled line format)
// ---------------------------------------------------------------------------

/// Serialize a list of per-detector range sets to a line-oriented text form.
pub fn ranges_to_string(sets: &[RangeSet]) -> String {
    let mut out = String::new();
    for (i, rs) in sets.iter().enumerate() {
        let r = |x: &Option<Range>| match x {
            Some(r) => format!("{:?} {:?}", r.min, r.max),
            None => "none".to_string(),
        };
        out.push_str(&format!(
            "detector {i} t={:?} n={} neg={} zero={} pos={}\n",
            rs.zero_threshold,
            rs.samples,
            r(&rs.neg),
            r(&rs.zero),
            r(&rs.pos)
        ));
    }
    out
}

/// Parse the output of [`ranges_to_string`].
pub fn ranges_from_string(s: &str) -> Result<Vec<RangeSet>, String> {
    let mut out = Vec::new();
    for line in s.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut rs = RangeSet::default();
        let mut fields = line.split_whitespace();
        let tag = fields.next().ok_or("empty line")?;
        if tag != "detector" {
            return Err(format!("expected `detector`, got `{tag}`"));
        }
        let _idx = fields.next().ok_or("missing index")?;
        let mut rest: Vec<&str> = fields.collect();
        // Re-join and parse key=value groups; range values contain a space.
        let joined = rest.join(" ");
        rest.clear();
        let parse_range = |v: &str| -> Result<Option<Range>, String> {
            if v == "none" {
                return Ok(None);
            }
            let mut it = v.split(' ');
            let min: f64 = it
                .next()
                .ok_or("missing min")?
                .parse()
                .map_err(|e| format!("bad min: {e}"))?;
            let max: f64 = it
                .next()
                .ok_or("missing max")?
                .parse()
                .map_err(|e| format!("bad max: {e}"))?;
            Ok(Some(Range { min, max }))
        };
        for key in ["t=", "n=", "neg=", "zero=", "pos="] {
            let start = joined.find(key).ok_or_else(|| format!("missing `{key}`"))?;
            let after = &joined[start + key.len()..];
            let end = ["t=", "n=", "neg=", "zero=", "pos="]
                .iter()
                .filter_map(|k| after.find(k))
                .min()
                .unwrap_or(after.len());
            let val = after[..end].trim();
            match key {
                "t=" => rs.zero_threshold = val.parse().map_err(|e| format!("bad t: {e}"))?,
                "n=" => rs.samples = val.parse().map_err(|e| format!("bad n: {e}"))?,
                "neg=" => rs.neg = parse_range(val)?,
                "zero=" => rs.zero = parse_range(val)?,
                "pos=" => rs.pos = parse_range(val)?,
                _ => unreachable!(),
            }
        }
        out.push(rs);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_cluster_profile_matches_fig10_shape() {
        // FP variable with three correlation points: ±~1e3 and ~0.
        let mut vals = Vec::new();
        for i in 0..100 {
            vals.push(1.0e3 + i as f64);
            vals.push(-1.0e3 - i as f64);
            vals.push(1.0e-9 * i as f64);
        }
        let rs = profile_ranges(&vals);
        assert!(rs.neg.is_some() && rs.zero.is_some() && rs.pos.is_some());
        assert!(rs.contains(1050.0));
        assert!(rs.contains(-1050.0));
        assert!(rs.contains(5e-8));
        assert!(!rs.contains(1.0), "gap between clusters is not covered");
        assert!(!rs.contains(1e9));
        assert!(!rs.contains(f64::NAN));
    }

    #[test]
    fn profiling_covers_every_training_sample() {
        let vals: Vec<f64> = (0..1000)
            .map(|i| ((i * 2654435761u64) % 1000) as f64 / 7.0 - 60.0)
            .collect();
        let rs = profile_ranges(&vals);
        for v in &vals {
            assert!(rs.contains(*v), "sample {v} must be covered");
        }
    }

    #[test]
    fn threshold_sweep_reduces_value_space() {
        // All values cluster tightly around ±1e-3: a smaller threshold than
        // the default 1e-5 cannot help, but a larger one (1e-2) merges the
        // clusters into zero; the sweep should pick whichever covers less
        // bit space than the default split.
        let mut vals = Vec::new();
        for i in 0..50 {
            vals.push(1.0e-3 + 1.0e-6 * i as f64);
            vals.push(-1.0e-3 - 1.0e-6 * i as f64);
        }
        let default = cluster(&vals, DEFAULT_ZERO_THRESHOLD);
        let swept = profile_ranges_unpadded(&vals);
        assert!(swept.value_space() <= default.value_space());
    }

    #[test]
    fn alpha_widens_and_keeps_containment() {
        let mut vals = Vec::new();
        for i in 1..100 {
            vals.push(i as f64);
        }
        let rs = profile_ranges(&vals);
        assert!(!rs.contains(500.0));
        let wide = rs.apply_alpha(10.0);
        assert!(wide.contains(500.0));
        assert!(wide.contains(50.0), "widening never loses containment");
        assert!(!wide.contains(10_000.0));
    }

    #[test]
    fn alpha_widening_is_monotone_in_alpha() {
        let vals: Vec<f64> = (1..50).map(|i| -(i as f64) * 3.0).collect();
        let rs = profile_ranges(&vals);
        for &v in &[-500.0, -1000.0, -10_000.0] {
            let a10 = rs.apply_alpha(10.0).contains(v);
            let a100 = rs.apply_alpha(100.0).contains(v);
            assert!(!a10 || a100, "alpha=100 covers at least what alpha=10 does");
        }
    }

    #[test]
    fn learn_extends_nearest_cluster() {
        let mut rs = profile_ranges(&[10.0, 20.0, 30.0]);
        assert!(!rs.contains(100.0));
        rs.learn(100.0);
        assert!(rs.contains(100.0));
        assert!(rs.contains(60.0), "learning extends the range, not a point");
        rs.learn(-5.0);
        assert!(rs.contains(-5.0));
    }

    #[test]
    fn merge_unions_clusters() {
        let a = profile_ranges(&[1.0, 2.0]);
        let b = profile_ranges(&[-4.0, -3.0]);
        let mut m = a.clone();
        m.merge(&b);
        assert!(m.contains(1.5) && m.contains(-3.5));
        assert_eq!(m.samples, a.samples + b.samples);
    }

    #[test]
    fn untrained_set_contains_nothing() {
        let rs = RangeSet::default();
        assert!(!rs.is_trained());
        assert!(!rs.contains(0.0));
    }

    #[test]
    fn persistence_round_trips() {
        let sets = vec![
            profile_ranges(&[1.0, 2.0, -7.5, 1e-8]),
            RangeSet::default(),
            profile_ranges(&[-1e20, 1e20, 0.0]),
        ];
        let s = ranges_to_string(&sets);
        let back = ranges_from_string(&s).unwrap();
        assert_eq!(sets, back, "serialized:\n{s}");
    }

    #[test]
    fn bit_space_orders_magnitudes() {
        let narrow = Range { min: 1.0, max: 2.0 };
        let wide = Range {
            min: 1.0,
            max: 1e30,
        };
        assert!(bit_space(&narrow) < bit_space(&wide));
        let cross = Range {
            min: -1.0,
            max: 1.0,
        };
        assert!(bit_space(&cross) > bit_space(&narrow));
    }

    #[test]
    fn f32_order_is_monotonic() {
        let xs = [-1e30f32, -1.0, -1e-20, 0.0, 1e-20, 1.0, 1e30];
        for w in xs.windows(2) {
            assert!(f32_order(w[0]) < f32_order(w[1]), "{} < {}", w[0], w[1]);
        }
    }
}
