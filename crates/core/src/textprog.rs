//! A [`HostProgram`] synthesized from KIR kernel source text.
//!
//! The benchmark suite ships twelve hand-built host programs; the serve
//! daemon additionally accepts *ad-hoc* kernels over the wire — raw
//! mini-CUDA text plus a launch geometry — and must run full injection
//! campaigns on them. [`TextProgram`] closes that gap: it parses and
//! validates the kernel once at construction (so a malformed submission is
//! a structured error, not a panic inside a worker) and synthesizes the
//! host side deterministically from the parameter list:
//!
//! * every global pointer parameter becomes a device buffer of `elems`
//!   elements; the **first** pointer parameter is the program output
//!   (zero-initialized), every later buffer is filled with values derived
//!   from the dataset seed via a [`SmallRng`] keyed on `(dataset, slot)` —
//!   distinct datasets are distinct inputs, same dataset is bit-identical;
//! * every scalar `i32`/`u32` parameter receives the element count (the
//!   ubiquitous `n` bound, which keeps synthesized loops inside the
//!   buffers), `f32` scalars receive a fixed non-trivial constant, and
//!   `bool` scalars receive `true`.
//!
//! The correctness spec defaults to a PNS-style relative/absolute mix so
//! small float jitter is not misread as corruption; integer-only kernels
//! may tighten it to [`CorrectnessSpec::Exact`] via [`TextOptions`].

use crate::program::{CorrectnessSpec, HostProgram, MemBreakdown};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::validate::validate_kernel;
use hauberk_kir::{KernelDef, MemSpace, PrimTy, Ty, Value};
use hauberk_sim::{Device, Launch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Launch geometry and synthesized-input sizing for a [`TextProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextOptions {
    /// Grid size in blocks (1-D).
    pub blocks: u32,
    /// Threads per block (the bundled kernels keep this ≤ 32 so barriers
    /// are exact; larger blocks execute warps sequentially).
    pub threads_per_block: u32,
    /// Elements per synthesized buffer; also the value handed to scalar
    /// integer parameters. Clamped up to the launch's total threads so a
    /// `store(out, tid, ..)` epilogue stays in bounds.
    pub elems: u32,
    /// Treat any float disagreement as corruption (integer kernels).
    pub exact: bool,
}

impl Default for TextOptions {
    fn default() -> Self {
        TextOptions {
            blocks: 4,
            threads_per_block: 32,
            elems: 64,
            exact: false,
        }
    }
}

/// Hard ceilings on submitted geometry, so one hostile job cannot ask the
/// simulator for a multi-hour launch or a buffer larger than device memory.
pub const MAX_TEXT_THREADS: u64 = 1 << 16;
/// Ceiling on `elems` (see [`MAX_TEXT_THREADS`]).
pub const MAX_TEXT_ELEMS: u32 = 1 << 20;

/// A host program built from kernel source text. See the module docs for
/// the synthesized host-side conventions.
#[derive(Debug, Clone)]
pub struct TextProgram {
    name: &'static str,
    kernel: KernelDef,
    launch: Launch,
    elems: u32,
    spec: CorrectnessSpec,
}

/// Intern a kernel name so [`HostProgram::name`] can return `&'static str`.
/// Deduplicated: resubmitting the same kernel name (the common case for a
/// daemon) costs nothing after the first call.
fn intern_name(name: &str) -> &'static str {
    static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut g = hauberk_telemetry::lock_recover(&NAMES);
    if let Some(s) = g.iter().find(|s| **s == name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    g.push(leaked);
    leaked
}

impl TextProgram {
    /// Parse, validate, and wrap `src`. Every rejection is a `String`
    /// suitable for a structured 400 response: parse errors carry
    /// line/column, semantic rejections name the offending parameter.
    pub fn from_kir(src: &str, opts: TextOptions) -> Result<TextProgram, String> {
        let kernel = parse_kernel(src).map_err(|e| e.to_string())?;
        validate_kernel(&kernel).map_err(|e| format!("kernel `{}`: {e}", kernel.name))?;
        if opts.blocks == 0 || opts.threads_per_block == 0 {
            return Err("launch geometry must be non-zero".to_string());
        }
        let launch = Launch::grid1d(opts.blocks, opts.threads_per_block);
        if launch.total_threads() > MAX_TEXT_THREADS {
            return Err(format!(
                "launch of {} threads exceeds the {MAX_TEXT_THREADS}-thread limit",
                launch.total_threads()
            ));
        }
        if opts.elems == 0 || opts.elems > MAX_TEXT_ELEMS {
            return Err(format!(
                "elems must be in 1..={MAX_TEXT_ELEMS}, got {}",
                opts.elems
            ));
        }
        for p in kernel.params() {
            if let Ty::Ptr { space, .. } = p.ty {
                if space != MemSpace::Global {
                    return Err(format!(
                        "parameter `{}`: only global pointers may cross the launch boundary",
                        p.name
                    ));
                }
            }
        }
        if !kernel.params().any(|p| matches!(p.ty, Ty::Ptr { .. })) {
            return Err(format!(
                "kernel `{}` has no pointer parameter to read output from",
                kernel.name
            ));
        }
        let elems = opts.elems.max(launch.total_threads() as u32);
        let spec = if opts.exact {
            CorrectnessSpec::Exact
        } else {
            CorrectnessSpec::RelAbs {
                rel: 0.01,
                abs: 1e-9,
            }
        };
        Ok(TextProgram {
            name: intern_name(&kernel.name),
            kernel,
            launch,
            elems,
            spec,
        })
    }

    /// Elements per synthesized buffer.
    pub fn elems(&self) -> u32 {
        self.elems
    }

    fn buffer_params(&self) -> impl Iterator<Item = (usize, PrimTy)> + '_ {
        self.kernel
            .params()
            .enumerate()
            .filter_map(|(i, p)| match p.ty {
                Ty::Ptr { elem, .. } => Some((i, elem)),
                Ty::Prim(_) => None,
            })
    }
}

/// Deterministic fill for one synthesized input buffer: magnitude-bounded,
/// strictly positive floats (so range detectors can train) and small
/// non-negative integers.
fn fill_values(elem: PrimTy, n: u32, dataset: u64, slot: usize) -> Vec<Value> {
    let mut rng = SmallRng::seed_from_u64(dataset.wrapping_mul(0x9E3779B97F4A7C15) ^ slot as u64);
    (0..n)
        .map(|_| match elem {
            PrimTy::F32 => Value::F32(rng.gen_range(0.5f32..2.5f32)),
            PrimTy::I32 => Value::I32(rng.gen_range(0i32..16)),
            PrimTy::U32 => Value::U32(rng.gen_range(0u32..16)),
            PrimTy::Bool => Value::Bool(rng.gen_range(0u32..2) == 1),
        })
        .collect()
}

impl HostProgram for TextProgram {
    fn name(&self) -> &'static str {
        self.name
    }

    fn build_kernel(&self) -> KernelDef {
        self.kernel.clone()
    }

    fn launch(&self) -> Launch {
        self.launch
    }

    fn setup(&self, dev: &mut Device, dataset: u64) -> Vec<Value> {
        let mut first_ptr = true;
        self.kernel
            .params()
            .enumerate()
            .map(|(i, p)| match p.ty {
                Ty::Ptr { elem, .. } => {
                    let ptr = dev.alloc(elem, self.elems);
                    if first_ptr {
                        first_ptr = false; // output buffer: stays zeroed
                    } else {
                        dev.mem
                            .copy_in(ptr, &fill_values(elem, self.elems, dataset, i));
                    }
                    Value::Ptr(ptr)
                }
                Ty::Prim(PrimTy::I32) => Value::I32(self.elems as i32),
                Ty::Prim(PrimTy::U32) => Value::U32(self.elems),
                Ty::Prim(PrimTy::F32) => Value::F32(1.5),
                Ty::Prim(PrimTy::Bool) => Value::Bool(true),
            })
            .collect()
    }

    fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
        let out = args
            .iter()
            .find_map(|a| a.as_ptr())
            .expect("validated: at least one pointer parameter");
        dev.mem
            .copy_out(out, self.elems)
            .iter()
            .map(Value::as_numeric_f64)
            .collect()
    }

    fn spec(&self) -> CorrectnessSpec {
        self.spec
    }

    fn memory_breakdown(&self) -> MemBreakdown {
        let mut m = MemBreakdown::default();
        for (_, elem) in self.buffer_params() {
            let bytes = self.elems as u64 * elem.size_bytes() as u64;
            match elem {
                PrimTy::F32 => m.fp_bytes += bytes,
                PrimTy::I32 | PrimTy::U32 | PrimTy::Bool => m.int_bytes += bytes,
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::golden_run;

    const DOT: &str = r#"
        kernel dot(out: *global f32, x: *global f32, y: *global f32, n: i32) {
            let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
            let acc: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                acc = acc + load(x, i) * load(y, i);
            }
            store(out, tid, acc);
        }
    "#;

    #[test]
    fn builds_and_runs_a_text_kernel() {
        let prog = TextProgram::from_kir(DOT, TextOptions::default()).unwrap();
        assert_eq!(prog.name(), "dot");
        let (golden, cycles) = golden_run(&prog, 0);
        assert_eq!(golden.len(), prog.elems() as usize);
        assert!(cycles > 0);
        // Inputs are strictly positive, so every lane's dot product is too.
        assert!(golden.iter().all(|v| *v > 0.0), "{:?}", &golden[..4]);
    }

    #[test]
    fn datasets_are_distinct_and_deterministic() {
        let prog = TextProgram::from_kir(DOT, TextOptions::default()).unwrap();
        let (a, _) = golden_run(&prog, 0);
        let (a2, _) = golden_run(&prog, 0);
        let (b, _) = golden_run(&prog, 1);
        assert_eq!(a, a2, "same dataset is bit-identical");
        assert_ne!(a, b, "datasets differ");
    }

    #[test]
    fn rejects_malformed_and_degenerate_kernels() {
        assert!(
            TextProgram::from_kir("kernel oops {", TextOptions::default())
                .unwrap_err()
                .contains("parse error")
        );
        // No pointer parameter: nowhere to read an output from.
        let e = TextProgram::from_kir(
            "kernel f(n: i32) { let x: i32 = n; }",
            TextOptions::default(),
        )
        .unwrap_err();
        assert!(e.contains("no pointer parameter"), "{e}");
        // Oversized launch.
        let e = TextProgram::from_kir(
            DOT,
            TextOptions {
                blocks: 1 << 16,
                threads_per_block: 32,
                ..TextOptions::default()
            },
        )
        .unwrap_err();
        assert!(e.contains("thread limit"), "{e}");
    }

    #[test]
    fn interned_names_are_stable() {
        let a = TextProgram::from_kir(DOT, TextOptions::default()).unwrap();
        let b = TextProgram::from_kir(DOT, TextOptions::default()).unwrap();
        assert!(
            std::ptr::eq(a.name(), b.name()),
            "second intern reuses the first"
        );
    }
}
