//! The four Hauberk library runtimes of Fig. 7, as [`HookRuntime`]
//! implementations: profiler, FT (fault tolerance), FI (fault injector), and
//! FI&FT.

use crate::control::{AlarmKind, ControlBlock, NON_LOOP_DETECTOR};
use hauberk_kir::stmt::{LoopId, SiteId};
use hauberk_kir::Hook;
use hauberk_kir::HookKind;
use hauberk_sim::fault::{ArmedFault, FaultArm};
use hauberk_sim::hooks::{HookCtx, HookRuntime, LoopCheckCtx};
use hauberk_telemetry::{Event, Telemetry};
use std::collections::HashMap;

/// Cap on recorded per-site value samples (Fig. 10 tracing).
const SITE_SAMPLE_CAP: usize = 8192;

/// The profiler library: records the averaged-accumulator samples the
/// FT build later range-checks, per-site execution counts (to enumerate and
/// weight fault-injection targets), and per-site value samples (Fig. 10).
#[derive(Debug, Default)]
pub struct ProfilerRuntime {
    /// Per-detector samples of the averaged accumulator value.
    pub detector_samples: HashMap<u32, Vec<f64>>,
    /// Dynamic execution count per (site, thread).
    pub exec_counts: HashMap<(SiteId, u32), u64>,
    /// Value samples per site (the defined variable's value), capped.
    pub site_samples: HashMap<SiteId, Vec<f64>>,
}

impl ProfilerRuntime {
    /// Samples for detector `det` (empty slice if none).
    pub fn samples(&self, det: u32) -> &[f64] {
        self.detector_samples
            .get(&det)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total dynamic executions of `site` across threads.
    pub fn total_execs(&self, site: SiteId) -> u64 {
        self.exec_counts
            .iter()
            .filter(|((s, _), _)| *s == site)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Threads that executed `site`, with their counts, in thread order.
    pub fn threads_of(&self, site: SiteId) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .exec_counts
            .iter()
            .filter(|((s, _), _)| *s == site)
            .map(|((_, t), c)| (*t, *c))
            .collect();
        v.sort_unstable();
        v
    }
}

impl HookRuntime for ProfilerRuntime {
    fn on_hook(&mut self, hook: &Hook, ctx: &mut HookCtx<'_>) {
        match &hook.kind {
            HookKind::Profile { detector } => {
                let samples = self.detector_samples.entry(*detector).or_default();
                let lanes: Vec<u32> = ctx.active_lanes().collect();
                for lane in lanes {
                    samples.push(ctx.args[0][lane as usize].as_numeric_f64());
                }
            }
            HookKind::CountExec => {
                let lanes: Vec<u32> = ctx.active_lanes().collect();
                for lane in lanes {
                    let t = ctx.thread_of(lane);
                    *self.exec_counts.entry((hook.site, t)).or_insert(0) += 1;
                    if let Some(target) = ctx.target.as_deref() {
                        let s = self.site_samples.entry(hook.site).or_default();
                        if s.len() < SITE_SAMPLE_CAP {
                            s.push(target[lane as usize].as_numeric_f64());
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// The FT library: checks values against the control block's configured
/// ranges and records alarms with deferred reporting.
#[derive(Debug, Default)]
pub struct FtRuntime {
    /// The control block (configure ranges before launch; read alarms after).
    pub cb: ControlBlock,
    /// Telemetry handle (disabled by default).
    pub tele: Telemetry,
    /// Work-cycle timestamp of the first alarm this run, if any.
    pub first_alarm_cycle: Option<u64>,
}

impl FtRuntime {
    /// An FT runtime configured with profiled ranges.
    pub fn new(cb: ControlBlock) -> Self {
        FtRuntime {
            cb,
            ..Default::default()
        }
    }

    /// Attach a telemetry handle ([`Event::DetectorFired`] per alarm).
    pub fn with_telemetry(mut self, tele: Telemetry) -> Self {
        self.tele = tele;
        self
    }
}

impl HookRuntime for FtRuntime {
    fn on_hook(&mut self, hook: &Hook, ctx: &mut HookCtx<'_>) {
        ft_dispatch(
            &mut self.cb,
            hook,
            ctx,
            &self.tele,
            &mut self.first_alarm_cycle,
        );
    }
}

/// Record an alarm; stamp the first-alarm cycle and emit one
/// [`Event::DetectorFired`] per *new* (detector, kind) alarm — the control
/// block dedups repeats from the many threads of a launch, and the trace
/// mirrors that.
fn raise_traced(
    cb: &mut ControlBlock,
    det: usize,
    kind: AlarmKind,
    observed: f64,
    cycle: u64,
    tele: &Telemetry,
    first_alarm_cycle: &mut Option<u64>,
) {
    let had = cb.alarms.len();
    cb.raise(det, kind, observed);
    first_alarm_cycle.get_or_insert(cycle);
    if cb.alarms.len() > had {
        tele.emit_with(|| Event::DetectorFired {
            detector: if det == NON_LOOP_DETECTOR {
                -1
            } else {
                det as i64
            },
            variable: cb.var_of(det).to_string(),
            kind: kind.as_str().to_string(),
            observed,
            cycle,
        });
    }
}

fn ft_dispatch(
    cb: &mut ControlBlock,
    hook: &Hook,
    ctx: &mut HookCtx<'_>,
    tele: &Telemetry,
    first_alarm_cycle: &mut Option<u64>,
) {
    match &hook.kind {
        HookKind::CheckRange { detector } => {
            let det = *detector as usize;
            let lanes: Vec<u32> = ctx.active_lanes().collect();
            for lane in lanes {
                let v = ctx.args[0][lane as usize].as_numeric_f64();
                let inside = cb.ranges.get(det).map(|r| r.contains(v)).unwrap_or(false);
                if !inside {
                    raise_traced(
                        cb,
                        det,
                        AlarmKind::RangeCheck,
                        v,
                        ctx.cycles,
                        tele,
                        first_alarm_cycle,
                    );
                    cb.record_outlier(det, v);
                }
            }
        }
        HookKind::CheckEqual { detector } => {
            let det = *detector as usize;
            let lanes: Vec<u32> = ctx.active_lanes().collect();
            for lane in lanes {
                let a = ctx.args[0][lane as usize].as_numeric_f64();
                let b = ctx.args[1][lane as usize].as_numeric_f64();
                if a != b {
                    raise_traced(
                        cb,
                        det,
                        AlarmKind::TripCount,
                        a,
                        ctx.cycles,
                        tele,
                        first_alarm_cycle,
                    );
                }
            }
        }
        HookKind::ChecksumCheck => {
            let lanes: Vec<u32> = ctx.active_lanes().collect();
            for lane in lanes {
                let chk = ctx.args[0][lane as usize].to_bits();
                if chk != 0 {
                    raise_traced(
                        cb,
                        NON_LOOP_DETECTOR,
                        AlarmKind::Checksum,
                        chk as f64,
                        ctx.cycles,
                        tele,
                        first_alarm_cycle,
                    );
                }
            }
        }
        HookKind::NlMismatch => {
            // Reached only inside `if (orig != dup)`.
            raise_traced(
                cb,
                NON_LOOP_DETECTOR,
                AlarmKind::NlMismatch,
                0.0,
                ctx.cycles,
                tele,
                first_alarm_cycle,
            );
        }
        _ => {}
    }
}

/// Stamp the delivery cycle and emit [`Event::FaultInjected`] on the
/// not-delivered → delivered transition of `arm`.
fn trace_delivery(
    arm: &FaultArm,
    was_delivered: bool,
    cycle: u64,
    tele: &Telemetry,
    delivered_cycle: &mut Option<u64>,
) {
    if was_delivered || !arm.delivered() {
        return;
    }
    *delivered_cycle = Some(cycle);
    if let Some(f) = arm.fault() {
        tele.emit_with(|| Event::FaultInjected {
            site: f.site.to_string(),
            thread: f.thread,
            mask: f.mask,
            cycle,
        });
    }
}

/// The FI library: delivers one armed fault into the architecture state.
#[derive(Debug, Default)]
pub struct FiRuntime {
    /// Fault arming/delivery state.
    pub arm: FaultArm,
    /// Telemetry handle (disabled by default).
    pub tele: Telemetry,
    /// Work-cycle timestamp of fault delivery, if it was delivered.
    pub delivered_cycle: Option<u64>,
    /// Cycle stamp of the most recent hook dispatch — the delivery time of a
    /// register-file corruption, which is polled right after `on_hook`.
    last_hook_cycles: u64,
}

impl FiRuntime {
    /// Arm `fault`.
    pub fn new(fault: Option<ArmedFault>) -> Self {
        FiRuntime {
            arm: FaultArm::new(fault),
            ..Default::default()
        }
    }

    /// Attach a telemetry handle ([`Event::FaultInjected`] on delivery).
    pub fn with_telemetry(mut self, tele: Telemetry) -> Self {
        self.tele = tele;
        self
    }
}

impl HookRuntime for FiRuntime {
    fn on_hook(&mut self, hook: &Hook, ctx: &mut HookCtx<'_>) {
        self.last_hook_cycles = ctx.cycles;
        if matches!(hook.kind, HookKind::FiPoint { .. }) {
            let was = self.arm.delivered();
            self.arm.at_hook(hook.site, ctx);
            trace_delivery(
                &self.arm,
                was,
                ctx.cycles,
                &self.tele,
                &mut self.delivered_cycle,
            );
        }
    }

    fn on_loop_check(&mut self, loop_id: LoopId, ctx: &mut LoopCheckCtx<'_>) {
        let was = self.arm.delivered();
        self.arm.at_loop_check(loop_id, ctx);
        trace_delivery(
            &self.arm,
            was,
            ctx.cycles,
            &self.tele,
            &mut self.delivered_cycle,
        );
    }

    fn register_corruption(
        &mut self,
        hook: &Hook,
        first_thread: u32,
        active: u32,
    ) -> Option<hauberk_sim::RegCorruption> {
        if !matches!(hook.kind, HookKind::FiPoint { .. }) {
            return None;
        }
        let was = self.arm.delivered();
        let hit = self.arm.poll_register(hook.site, first_thread, active, 32);
        trace_delivery(
            &self.arm,
            was,
            self.last_hook_cycles,
            &self.tele,
            &mut self.delivered_cycle,
        );
        hit
    }

    /// The arm delivers on an exact `(site, thread, occurrence)` match and a
    /// thread executes only inside its own block, so once the target block
    /// has retired the arm can no longer influence the launch — its
    /// occurrence counts for *other* threads never trigger anything. The
    /// delivered flag and delivery cycle feed only the post-run classifier,
    /// so the remainder-relevant state is empty.
    fn state_fingerprint(&self) -> Option<u64> {
        Some(0)
    }
}

/// The FI&FT library: injects one fault *and* runs the FT detectors, for
/// measuring the error-detection coverage of the placed detectors.
#[derive(Debug, Default)]
pub struct FiFtRuntime {
    /// Fault arming/delivery state.
    pub arm: FaultArm,
    /// FT control block.
    pub cb: ControlBlock,
    /// Telemetry handle (disabled by default).
    pub tele: Telemetry,
    /// Work-cycle timestamp of fault delivery, if it was delivered.
    pub delivered_cycle: Option<u64>,
    /// Work-cycle timestamp of the first alarm this run, if any.
    pub first_alarm_cycle: Option<u64>,
    /// Cycle stamp of the most recent hook dispatch (see [`FiRuntime`]).
    last_hook_cycles: u64,
}

impl FiFtRuntime {
    /// Arm `fault` with the FT detectors configured from `cb`.
    pub fn new(fault: Option<ArmedFault>, cb: ControlBlock) -> Self {
        FiFtRuntime {
            arm: FaultArm::new(fault),
            cb,
            ..Default::default()
        }
    }

    /// Attach a telemetry handle ([`Event::FaultInjected`] on delivery,
    /// [`Event::DetectorFired`] per alarm).
    pub fn with_telemetry(mut self, tele: Telemetry) -> Self {
        self.tele = tele;
        self
    }

    /// Simulated cycles from fault delivery to the first detector alarm —
    /// the paper's detection latency. `None` when the fault was not
    /// delivered, no alarm fired, or the only alarms predate delivery
    /// (false positives).
    pub fn detection_latency(&self) -> Option<u64> {
        let d = self.delivered_cycle?;
        let a = self.first_alarm_cycle?;
        a.checked_sub(d)
    }
}

impl HookRuntime for FiFtRuntime {
    fn on_hook(&mut self, hook: &Hook, ctx: &mut HookCtx<'_>) {
        self.last_hook_cycles = ctx.cycles;
        match hook.kind {
            HookKind::FiPoint { .. } => {
                let was = self.arm.delivered();
                self.arm.at_hook(hook.site, ctx);
                trace_delivery(
                    &self.arm,
                    was,
                    ctx.cycles,
                    &self.tele,
                    &mut self.delivered_cycle,
                );
            }
            _ => ft_dispatch(
                &mut self.cb,
                hook,
                ctx,
                &self.tele,
                &mut self.first_alarm_cycle,
            ),
        }
    }

    fn on_loop_check(&mut self, loop_id: LoopId, ctx: &mut LoopCheckCtx<'_>) {
        let was = self.arm.delivered();
        self.arm.at_loop_check(loop_id, ctx);
        trace_delivery(
            &self.arm,
            was,
            ctx.cycles,
            &self.tele,
            &mut self.delivered_cycle,
        );
    }

    fn register_corruption(
        &mut self,
        hook: &Hook,
        first_thread: u32,
        active: u32,
    ) -> Option<hauberk_sim::RegCorruption> {
        if !matches!(hook.kind, HookKind::FiPoint { .. }) {
            return None;
        }
        let was = self.arm.delivered();
        let hit = self.arm.poll_register(hook.site, first_thread, active, 32);
        trace_delivery(
            &self.arm,
            was,
            self.last_hook_cycles,
            &self.tele,
            &mut self.delivered_cycle,
        );
        hit
    }

    /// The arm is inert after the target block (see [`FiRuntime`]); what can
    /// still influence the remainder is the FT side: the control block's
    /// mutable state (alarm dedup and the outlier cap read it) plus the
    /// first-alarm stamp (a later alarm only writes it if still unset). The
    /// delivery cycle is a post-run readout and stays excluded — it is
    /// always taken from the injection's own runtime, never spliced.
    fn state_fingerprint(&self) -> Option<u64> {
        let mut h = self.cb.run_state_fingerprint();
        h ^= self
            .first_alarm_cycle
            .map(|c| c.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
            .unwrap_or(0);
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::profile_ranges;
    use hauberk_kir::Value;

    fn mk_ctx<'a>(args: &'a [Vec<Value>]) -> HookCtx<'a> {
        HookCtx {
            block_id: 0,
            warp_id: 0,
            active: 0b1,
            warp_width: 1,
            first_thread: 0,
            cycles: 0,
            args,
            target: None,
        }
    }

    #[test]
    fn ft_range_check_raises_on_outlier() {
        let cb = ControlBlock::with_ranges(vec![profile_ranges(&[1.0, 2.0, 3.0])]);
        let mut ft = FtRuntime::new(cb);
        let hook = Hook {
            kind: HookKind::CheckRange { detector: 0 },
            site: 0,
            args: vec![],
            target: None,
        };
        let args = vec![vec![Value::F32(2.5)]];
        ft.on_hook(&hook, &mut mk_ctx(&args));
        assert!(!ft.cb.sdc_flag, "in-range value: no alarm");
        let args = vec![vec![Value::F32(1.0e9)]];
        ft.on_hook(&hook, &mut mk_ctx(&args));
        assert!(ft.cb.sdc_flag);
        assert_eq!(ft.cb.alarms.len(), 1);
        assert_eq!(ft.cb.outliers.len(), 1);
    }

    #[test]
    fn ft_trip_count_mismatch_raises() {
        let mut ft = FtRuntime::new(ControlBlock::with_ranges(vec![]));
        let hook = Hook {
            kind: HookKind::CheckEqual { detector: 0 },
            site: 0,
            args: vec![],
            target: None,
        };
        let args = vec![vec![Value::I32(10)], vec![Value::I32(10)]];
        ft.on_hook(&hook, &mut mk_ctx(&args));
        assert!(!ft.cb.sdc_flag);
        let args = vec![vec![Value::I32(9)], vec![Value::I32(10)]];
        ft.on_hook(&hook, &mut mk_ctx(&args));
        assert!(ft.cb.sdc_flag);
        assert_eq!(ft.cb.alarms[0].kind, AlarmKind::TripCount);
    }

    #[test]
    fn ft_checksum_nonzero_raises() {
        let mut ft = FtRuntime::default();
        let hook = Hook {
            kind: HookKind::ChecksumCheck,
            site: 0,
            args: vec![],
            target: None,
        };
        let args = vec![vec![Value::U32(0)]];
        ft.on_hook(&hook, &mut mk_ctx(&args));
        assert!(!ft.cb.sdc_flag);
        let args = vec![vec![Value::U32(0xDEAD)]];
        ft.on_hook(&hook, &mut mk_ctx(&args));
        assert!(ft.cb.sdc_flag);
        assert_eq!(ft.cb.alarms[0].kind, AlarmKind::Checksum);
    }

    #[test]
    fn nan_average_is_always_an_alarm() {
        let cb = ControlBlock::with_ranges(vec![profile_ranges(&[1.0])]);
        let mut ft = FtRuntime::new(cb);
        let hook = Hook {
            kind: HookKind::CheckRange { detector: 0 },
            site: 0,
            args: vec![],
            target: None,
        };
        let args = vec![vec![Value::F32(f32::NAN)]];
        ft.on_hook(&hook, &mut mk_ctx(&args));
        assert!(ft.cb.sdc_flag);
    }

    #[test]
    fn profiler_records_samples_and_counts() {
        let mut pr = ProfilerRuntime::default();
        let hook = Hook {
            kind: HookKind::Profile { detector: 2 },
            site: 5,
            args: vec![],
            target: None,
        };
        let args = vec![vec![Value::F32(7.5)]];
        pr.on_hook(&hook, &mut mk_ctx(&args));
        pr.on_hook(&hook, &mut mk_ctx(&args));
        assert_eq!(pr.samples(2), &[7.5, 7.5]);

        let count_hook = Hook {
            kind: HookKind::CountExec,
            site: 9,
            args: vec![],
            target: None,
        };
        let mut target = vec![Value::I32(42)];
        let args: Vec<Vec<Value>> = vec![];
        let mut ctx = HookCtx {
            block_id: 0,
            warp_id: 0,
            active: 1,
            warp_width: 1,
            first_thread: 3,
            cycles: 0,
            args: &args,
            target: Some(&mut target),
        };
        pr.on_hook(&count_hook, &mut ctx);
        assert_eq!(pr.total_execs(9), 1);
        assert_eq!(pr.threads_of(9), vec![(3, 1)]);
        assert_eq!(pr.site_samples[&9], vec![42.0]);
    }
}
