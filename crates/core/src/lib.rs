#![warn(missing_docs)]

//! # hauberk — lightweight SDC error detection for GPGPU programs
//!
//! The core of the reproduction of *"Hauberk: Lightweight Silent Data
//! Corruption Error Detector for GPGPU"* (Yim, Pham, Saleheen, Kalbarczyk,
//! Iyer — IPDPS 2011): a source-to-source translator (over the
//! [`hauberk_kir`] kernel IR) that derives and places customized error
//! detectors, the value-range model behind the loop detectors, the control
//! block that carries detection state between GPU and CPU, and the four
//! library runtimes (profiler, FT, FI, FI&FT) of the paper's Fig. 7.
//!
//! ## The two detectors
//!
//! * **Non-loop detector** ([`translator::nonloop`]) — every virtual variable
//!   defined outside loops is protected by *duplication + a shared XOR
//!   checksum*: the definition is duplicated and compared immediately
//!   (catching ALU/FPU faults during the computation), and the value is
//!   XOR-folded into one per-kernel checksum twice — at the definition and
//!   after the last use — so any register-file corruption in between leaves
//!   the checksum non-zero at kernel exit (catching storage faults) without
//!   doubling register pressure.
//! * **Loop detector** ([`translator::loops`]) — per loop, the virtual
//!   variable with the largest *cumulative backward dataflow dependency*
//!   (plus every self-accumulating variable) is protected by accumulating its
//!   value and an iteration counter inside the loop (two add instructions)
//!   and range-checking the average after the loop against profiled value
//!   ranges; the loop trip count is checked as an invariant where it can be
//!   derived statically.
//!
//! ## Build variants (Fig. 7)
//!
//! [`builds::build`] produces the five program binaries of the paper's
//! framework from one kernel: baseline, profiler, FT, FI, and FI&FT —
//! plus the two comparison baselines, R-Naïve (host-level re-execution,
//! [`builds::r_naive_cycles`]) and R-Scatter ([`translator::rscatter`]).
//!
//! ```
//! use hauberk::builds::{build, BuildVariant, FtOptions};
//! use hauberk_kir::parser::parse_kernel;
//!
//! let k = parse_kernel(
//!     r#"kernel dot(out: *global f32, x: *global f32, n: i32) {
//!         let acc: f32 = 0.0;
//!         for (i = 0; i < n; i = i + 1) {
//!             acc = acc + load(x, i) * load(x, i);
//!         }
//!         store(out, thread_idx_x(), acc);
//!     }"#,
//! ).unwrap();
//! let ft = build(&k, BuildVariant::Ft(FtOptions::default())).unwrap();
//! assert_eq!(ft.detectors.len(), 1);            // one protected loop variable
//! assert!(ft.kernel.vars.len() > k.vars.len()); // checksum/counter locals added
//! ```
//!
//! ## Cross-crate dataflow
//!
//! This crate is the hub of the workspace; data flows through it in both
//! directions:
//!
//! ```text
//!  hauberk-kir          hauberk (this crate)              hauberk-sim
//!  ───────────          ────────────────────              ───────────
//!  KernelDef  ──parse──▶ translator passes ──instrumented──▶ Device
//!  analyses   ──deps───▶ (NL/L/FI/R-Scatter)    AST          │ launch
//!                        │                                   ▼
//!                        │  [`runtime`]s ◀──hook dispatch── interp / vm
//!                        │  profiler·FT·FI·FI&FT             │
//!                        ▼                                   ▼
//!                 [`ranges`] value model              LaunchOutcome + stats
//!                 [`control`] ControlBlock ──alarms──▶ hauberk-swifi
//!                 [`units`] strata/work units ◀──plans── (campaigns,
//!                        │                                classification)
//!                        ▼                                   │
//!                 hauberk-guardian (retry, diagnose)         ▼
//!                        ▲                            hauberk-bench figures
//!                        └────── hauberk-telemetry events ◀──┘
//! ```
//!
//! `hauberk-benchmarks` supplies the [`program::HostProgram`]s everything
//! runs against; `hauberk-telemetry` sits below every crate and carries the
//! structured event stream.

pub mod builds;
pub mod canon;
pub mod control;
pub mod pipeline;
pub mod program;
pub mod ranges;
pub mod runtime;
pub mod textprog;
pub mod translator;
pub mod units;

pub use builds::{build, BuildVariant, FtOptions, Instrumented};
pub use control::ControlBlock;
pub use pipeline::{build_all, BuildSet, ProtectedProgram};
pub use program::{run_program, run_program_traced, run_program_with_engine};
pub use program::{CorrectnessSpec, HostProgram, MemBreakdown, ProgramRun};
pub use ranges::{Range, RangeSet};
pub use runtime::{FiFtRuntime, FiRuntime, FtRuntime, ProfilerRuntime};
pub use units::{Stratum, WorkUnitId};
