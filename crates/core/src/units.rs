//! Campaign work-unit and stratum vocabulary.
//!
//! A fault-injection campaign over one kernel is partitioned into
//! **strata** — classes of fault sites that share an emulated hardware
//! component and a data class (the two axes the paper aggregates over in
//! Figs. 1 and 14) — and each stratum's experiments are chunked into
//! **work units**: contiguous, deterministic spans of the campaign plan
//! that can be executed, journaled, retried, and resumed independently.
//!
//! The types live here (rather than in `hauberk-swifi`) because the stratum
//! of an experiment is decided by the translator's FI surface — the
//! [`crate::translator::FiMap`] assigns every site its `HwComponent` and
//! `DataClass` — while the orchestration that consumes them lives a layer
//! up. Both layers speak this vocabulary; neither owns the other.

use hauberk_kir::types::DataClass;
use hauberk_kir::HwComponent;
use std::fmt;

/// A sampling stratum: all fault sites sharing one emulated hardware
/// component and one data class. Strata are the unit of adaptive sampling —
/// error sensitivity is highly non-uniform across site classes, so each
/// stratum converges (or keeps drawing samples) on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stratum {
    /// Emulated hardware component of the fault sites.
    pub hw: HwComponent,
    /// Data class of the targeted state.
    pub class: DataClass,
}

impl Stratum {
    /// Stable textual key, used in journals, telemetry and metrics names
    /// (e.g. `"FPU/floating-point"`).
    pub fn key(&self) -> String {
        format!("{}/{}", self.hw, self.class)
    }

    /// Parse a [`Stratum::key`] string back (journal resume path).
    pub fn parse_key(s: &str) -> Option<Stratum> {
        let (hw_s, class_s) = s.split_once('/')?;
        let hw = [
            HwComponent::IAlu,
            HwComponent::Fpu,
            HwComponent::Sfu,
            HwComponent::Mem,
            HwComponent::RegisterFile,
            HwComponent::Scheduler,
        ]
        .into_iter()
        .find(|h| h.to_string() == hw_s)?;
        let class = DataClass::ALL
            .into_iter()
            .find(|c| c.to_string() == class_s)?;
        Some(Stratum { hw, class })
    }
}

impl fmt::Display for Stratum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

/// Identity of one work unit: the `chunk`-th span of a stratum's planned
/// experiments. For a fixed campaign seed and shard size this is a pure
/// function of the plan, so two processes (or one process before and after
/// an interruption) derive the same unit set and can exchange journals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkUnitId {
    /// The stratum this unit samples.
    pub stratum: Stratum,
    /// Zero-based chunk index within the stratum (chunks are executed in
    /// order; adaptive sampling stops a stratum between chunks).
    pub chunk: u32,
}

impl fmt::Display for WorkUnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.stratum, self.chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratum_key_round_trips() {
        for hw in [
            HwComponent::IAlu,
            HwComponent::Fpu,
            HwComponent::Sfu,
            HwComponent::Mem,
            HwComponent::RegisterFile,
            HwComponent::Scheduler,
        ] {
            for class in DataClass::ALL {
                let s = Stratum { hw, class };
                assert_eq!(Stratum::parse_key(&s.key()), Some(s), "{s}");
            }
        }
        assert_eq!(Stratum::parse_key("bogus"), None);
        assert_eq!(Stratum::parse_key("FPU/quaternion"), None);
        assert_eq!(Stratum::parse_key("TPU/integer"), None);
    }

    #[test]
    fn unit_ids_order_by_stratum_then_chunk() {
        let s = Stratum {
            hw: HwComponent::Fpu,
            class: DataClass::Float,
        };
        let a = WorkUnitId {
            stratum: s,
            chunk: 0,
        };
        let b = WorkUnitId {
            stratum: s,
            chunk: 3,
        };
        assert!(a < b);
        assert_eq!(format!("{b}"), "FPU/floating-point#3");
    }
}
