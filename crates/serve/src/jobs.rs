//! Job specifications, job state, and the per-job event log that feeds the
//! live progress stream.
//!
//! A job is one fault-injection campaign: a program (named benchmark or
//! ad-hoc KIR kernel text), a campaign kind, and sizing knobs. The spec is
//! parsed from untrusted JSON with an allow-listed key set — an unknown key
//! is a structured 400, not a silently ignored typo — and validated at
//! submit time (kernel parse + validation included), so everything that can
//! be rejected synchronously is rejected before the job enters the queue.

use hauberk::builds::FtOptions;
use hauberk::program::HostProgram;
use hauberk::textprog::{TextOptions, TextProgram};
use hauberk::translator::select::HardeningSelection;
use hauberk::units::Stratum;
use hauberk_benchmarks::{program_by_name, ProblemScale};
use hauberk_swifi::campaign::{CampaignConfig, CampaignKind};
use hauberk_swifi::mask::PAPER_BIT_COUNTS;
use hauberk_swifi::orchestrator::{ChaosConfig, OrchestratorConfig};
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::sampler::AdaptiveConfig;
use hauberk_telemetry::json::Json;
use hauberk_telemetry::{lock_recover, Event, TelemetrySink};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Queue priority lane of a submission. The bounded queue holds one lane
/// per level and workers always drain the highest non-empty lane first, so
/// an interactive `high` submission overtakes a backlog of `low` batch
/// sweeps without preempting the job already running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Interactive lane: drained before everything else.
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Batch lane: drained only when the other lanes are empty.
    Low,
}

impl Priority {
    /// Stable wire label (`"high"`, `"normal"`, `"low"`).
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parse a wire label.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }

    /// Queue lane index, highest priority first.
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// What to execute: a registered benchmark or ad-hoc kernel text.
#[derive(Debug, Clone)]
pub enum ProgramSpec {
    /// One of the bundled benchmark programs, by paper name (`"CP"`, ...).
    Named(String),
    /// Raw mini-CUDA kernel source, run via [`TextProgram`].
    Kir(String),
}

/// A validated campaign submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Program under test.
    pub program: ProgramSpec,
    /// `"sensitivity"` (baseline build) or `"coverage"` (FI&FT build).
    pub coverage: bool,
    /// Planning seed.
    pub seed: u64,
    /// Virtual variables to target.
    pub vars: usize,
    /// Masks per variable.
    pub masks: usize,
    /// Mask bit counts to cycle through.
    pub bit_counts: Vec<u32>,
    /// Range-widening factor (coverage campaigns).
    pub alpha: f64,
    /// Injections per orchestrator work unit (0 = default).
    pub shard_size: usize,
    /// Retry budget before a crashing work unit is quarantined.
    pub max_retries: u32,
    /// Optional adaptive early stopping.
    pub adaptive: Option<AdaptiveConfig>,
    /// Launch geometry for KIR submissions (ignored for named programs).
    pub launch: TextOptions,
    /// Operator fault-injection hook: sabotage one work unit to validate the
    /// daemon's retry → quarantine resilience end-to-end (tests and drills).
    pub chaos: Option<ChaosConfig>,
    /// Execution engine (`None` = the process-wide default). Validated at
    /// POST time and recorded in the campaign journal header, so a resumed
    /// or merged campaign can never silently mix engines.
    pub engine: Option<hauberk_sim::ExecEngine>,
    /// Correlation trace id. Usually assigned by the daemon from the
    /// submitting request (echoed back as `X-Hauberk-Trace`); a client may
    /// also pin its own. Stamped onto the campaign's root span so every
    /// span in the job's event log carries it.
    pub trace: Option<String>,
    /// Emit tracing spans into the job's event log (default `true`).
    /// `"spans": false` drops the span layer for latency-critical
    /// submissions; `serve_bench` uses it to price the layer.
    pub spans: bool,
    /// Run the campaign from a shared fault-free checkpoint (default
    /// `false`): one reference run captures per-block snapshots and every
    /// injection resumes from them. The result document is byte-identical
    /// either way; ineligible campaigns fall back to full re-execution.
    pub checkpoint: bool,
    /// `(index, modulus)`: execute only the strata this shard owns (the
    /// orchestrator's round-robin partition). The fleet coordinator sets
    /// this on the shard jobs it dispatches to worker daemons; a client may
    /// also shard by hand across independent daemons.
    pub shard: Option<(u32, u32)>,
    /// Queue priority lane (default [`Priority::Normal`]).
    pub priority: Priority,
    /// Client identity for per-client quotas: with `--client-quota N`, at
    /// most N non-terminal jobs per `client` value are admitted at once
    /// (anonymous submissions share one bucket).
    pub client: Option<String>,
    /// Push the finished orchestrator journal into the job's event log, one
    /// `{"ev":"journal","line":…}` event per record (default `false`). The
    /// fleet coordinator sets this on shard jobs so worker journals stream
    /// back over the existing `/events` endpoint — no extra transfer
    /// endpoint to secure or cache.
    pub emit_journal: bool,
    /// Selective detector placement for coverage campaigns: the
    /// `selection` object of a [`mod@hauberk_swifi::harden`] plan. `None`
    /// (the default) keeps the classic protect-everything build; a
    /// selection restricts the FT passes to exactly the named sites, so a
    /// daemon can re-measure a hardened placement without local tooling.
    pub hardening: Option<HardeningSelection>,
    /// Opt into the content-addressed result cache (default `false`): on
    /// completion the result document is stored under the spec's
    /// [`JobSpec::cache_key`], and a later identical submission with
    /// `"cache": true` returns the stored bytes instantly without
    /// re-executing. Sound because campaigns are deterministic per
    /// canonical spec.
    pub cache: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            program: ProgramSpec::Named("CP".to_string()),
            coverage: false,
            seed: CampaignConfig::default().seed,
            vars: 20,
            masks: 25,
            bit_counts: PAPER_BIT_COUNTS.to_vec(),
            alpha: 1.0,
            shard_size: 0,
            max_retries: OrchestratorConfig::DEFAULT_MAX_RETRIES,
            adaptive: None,
            launch: TextOptions::default(),
            chaos: None,
            engine: None,
            trace: None,
            spans: true,
            checkpoint: false,
            shard: None,
            priority: Priority::Normal,
            client: None,
            emit_journal: false,
            hardening: None,
            cache: false,
        }
    }
}

fn want_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.as_u64()
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

fn want_f64(j: &Json, key: &str) -> Result<f64, String> {
    j.as_f64()
        .ok_or_else(|| format!("`{key}` must be a number"))
}

impl JobSpec {
    /// Parse and validate a submission document. Errors are end-user
    /// messages for a 400 response.
    pub fn from_json(doc: &Json) -> Result<JobSpec, String> {
        let Json::Obj(map) = doc else {
            return Err("request body must be a JSON object".to_string());
        };
        const KNOWN: &[&str] = &[
            "program",
            "kernel",
            "kind",
            "seed",
            "vars",
            "masks",
            "bit_counts",
            "alpha",
            "shard_size",
            "max_retries",
            "adaptive",
            "launch",
            "chaos",
            "engine",
            "trace",
            "spans",
            "checkpoint",
            "shard",
            "priority",
            "client",
            "emit_journal",
            "hardening",
            "cache",
        ];
        if let Some(k) = map.keys().find(|k| !KNOWN.contains(&k.as_str())) {
            return Err(format!("unknown field `{k}` (known: {})", KNOWN.join(", ")));
        }

        let program = match (map.get("program"), map.get("kernel")) {
            (Some(_), Some(_)) => {
                return Err("`program` and `kernel` are mutually exclusive".to_string())
            }
            (Some(p), None) => {
                ProgramSpec::Named(p.as_str().ok_or("`program` must be a string")?.to_string())
            }
            (None, Some(k)) => {
                ProgramSpec::Kir(k.as_str().ok_or("`kernel` must be a string")?.to_string())
            }
            (None, None) => return Err("one of `program` or `kernel` is required".to_string()),
        };
        let mut spec = JobSpec {
            program,
            ..JobSpec::default()
        };
        if let Some(k) = map.get("kind") {
            spec.coverage = match k.as_str() {
                Some("sensitivity") => false,
                Some("coverage") => true,
                _ => return Err("`kind` must be \"sensitivity\" or \"coverage\"".to_string()),
            };
        }
        if let Some(v) = map.get("engine") {
            let name = v.as_str().ok_or("`engine` must be a string")?;
            spec.engine = Some(hauberk_sim::ExecEngine::parse(name).ok_or_else(|| {
                format!("`engine` must be one of tree-walk, bytecode, batch (got `{name}`)")
            })?);
        }
        if let Some(v) = map.get("trace") {
            let t = v.as_str().ok_or("`trace` must be a string")?;
            if t.is_empty() || t.len() > 128 || !t.chars().all(|c| c.is_ascii_graphic()) {
                return Err(
                    "`trace` must be 1..=128 printable ASCII characters (it is echoed \
                     as a response header)"
                        .to_string(),
                );
            }
            spec.trace = Some(t.to_string());
        }
        if let Some(v) = map.get("spans") {
            spec.spans = v.as_bool().ok_or("`spans` must be a boolean")?;
        }
        if let Some(v) = map.get("checkpoint") {
            spec.checkpoint = v.as_bool().ok_or("`checkpoint` must be a boolean")?;
        }
        if let Some(v) = map.get("shard") {
            let index = v
                .get("index")
                .and_then(|i| i.as_u64())
                .ok_or("`shard.index` must be a non-negative integer")?;
            let modulus = v
                .get("modulus")
                .and_then(|m| m.as_u64())
                .ok_or("`shard.modulus` must be a positive integer")?;
            if !(1..=64).contains(&modulus) {
                return Err("`shard.modulus` must be in 1..=64".to_string());
            }
            if index >= modulus {
                return Err("`shard.index` must be < `shard.modulus`".to_string());
            }
            spec.shard = Some((index as u32, modulus as u32));
        }
        if let Some(v) = map.get("priority") {
            let label = v.as_str().ok_or("`priority` must be a string")?;
            spec.priority = Priority::parse(label).ok_or_else(|| {
                format!("`priority` must be \"high\", \"normal\" or \"low\" (got `{label}`)")
            })?;
        }
        if let Some(v) = map.get("client") {
            let c = v.as_str().ok_or("`client` must be a string")?;
            if c.is_empty() || c.len() > 64 || !c.chars().all(|ch| ch.is_ascii_graphic()) {
                return Err("`client` must be 1..=64 printable ASCII characters".to_string());
            }
            spec.client = Some(c.to_string());
        }
        if let Some(v) = map.get("emit_journal") {
            spec.emit_journal = v.as_bool().ok_or("`emit_journal` must be a boolean")?;
        }
        if let Some(v) = map.get("hardening") {
            spec.hardening = Some(HardeningSelection::from_json(v).ok_or(
                "`hardening` must be a selection object with `nonloop_vars`, \
                 `loop_detectors` and `trip_checks` (a hardening plan's `selection` field)",
            )?);
        }
        if let Some(v) = map.get("cache") {
            spec.cache = v.as_bool().ok_or("`cache` must be a boolean")?;
        }
        if let Some(v) = map.get("seed") {
            spec.seed = want_u64(v, "seed")?;
        }
        if let Some(v) = map.get("vars") {
            spec.vars = want_u64(v, "vars")?.clamp(1, 1024) as usize;
        }
        if let Some(v) = map.get("masks") {
            spec.masks = want_u64(v, "masks")?.clamp(1, 1024) as usize;
        }
        if let Some(v) = map.get("alpha") {
            spec.alpha = want_f64(v, "alpha")?;
            if !(spec.alpha >= 1.0 && spec.alpha.is_finite()) {
                return Err("`alpha` must be a finite number >= 1".to_string());
            }
        }
        if let Some(v) = map.get("shard_size") {
            spec.shard_size = want_u64(v, "shard_size")?.min(1 << 16) as usize;
        }
        if let Some(v) = map.get("max_retries") {
            spec.max_retries = want_u64(v, "max_retries")?.min(16) as u32;
        }
        if let Some(v) = map.get("bit_counts") {
            let arr = v.as_arr().ok_or("`bit_counts` must be an array")?;
            if arr.is_empty() || arr.len() > 32 {
                return Err("`bit_counts` must hold 1..=32 entries".to_string());
            }
            spec.bit_counts = arr
                .iter()
                .map(|b| {
                    b.as_u64()
                        .filter(|b| (1..=32).contains(b))
                        .map(|b| b as u32)
                        .ok_or_else(|| {
                            "`bit_counts` entries must be integers in 1..=32".to_string()
                        })
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = map.get("adaptive") {
            let mut a = AdaptiveConfig::default();
            if let Some(w) = v.get("ci_width") {
                a.ci_width = want_f64(w, "adaptive.ci_width")?;
                if !(a.ci_width > 0.0 && a.ci_width < 1.0) {
                    return Err("`adaptive.ci_width` must be in (0, 1)".to_string());
                }
            }
            if let Some(n) = v.get("min_samples") {
                a.min_samples = want_u64(n, "adaptive.min_samples")?;
            }
            spec.adaptive = Some(a);
        }
        if let Some(v) = map.get("chaos") {
            let key = v
                .get("stratum")
                .and_then(|s| s.as_str())
                .ok_or("`chaos.stratum` (a stratum key like \"FPU/floating-point\") is required")?;
            let stratum = Stratum::parse_key(key)
                .ok_or_else(|| format!("`chaos.stratum`: unknown stratum key `{key}`"))?;
            let mut chaos = ChaosConfig {
                stratum,
                chunk: 0,
                fail_attempts: 1,
                panics: false,
            };
            if let Some(c) = v.get("chunk") {
                chaos.chunk = want_u64(c, "chaos.chunk")?.min(u32::MAX as u64) as u32;
            }
            if let Some(f) = v.get("fail_attempts") {
                chaos.fail_attempts =
                    want_u64(f, "chaos.fail_attempts")?.min(u32::MAX as u64) as u32;
            }
            if let Some(p) = v.get("panics") {
                chaos.panics = p.as_bool().ok_or("`chaos.panics` must be a boolean")?;
            }
            spec.chaos = Some(chaos);
        }
        if let Some(v) = map.get("launch") {
            if let Some(b) = v.get("blocks") {
                spec.launch.blocks = want_u64(b, "launch.blocks")? as u32;
            }
            if let Some(t) = v.get("threads") {
                spec.launch.threads_per_block = want_u64(t, "launch.threads")? as u32;
            }
            if let Some(e) = v.get("elems") {
                spec.launch.elems = want_u64(e, "launch.elems")? as u32;
            }
            if let Some(x) = v.get("exact") {
                spec.launch.exact = x.as_bool().ok_or("`launch.exact` must be a boolean")?;
            }
        }

        // Build the program once now so a bad submission fails at POST time
        // with a structured message, not inside a worker thread.
        spec.build_program()?;
        Ok(spec)
    }

    /// Canonical JSON form (round-trips through [`JobSpec::from_json`];
    /// persisted as `<id>.spec.json` so a restarted daemon can re-run the
    /// job against its journal).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![
            (
                "kind",
                Json::str(if self.coverage {
                    "coverage"
                } else {
                    "sensitivity"
                }),
            ),
            ("seed", Json::uint(self.seed)),
            ("vars", Json::uint(self.vars as u64)),
            ("masks", Json::uint(self.masks as u64)),
            (
                "bit_counts",
                Json::Arr(
                    self.bit_counts
                        .iter()
                        .map(|b| Json::uint(*b as u64))
                        .collect(),
                ),
            ),
            ("alpha", Json::Num(self.alpha)),
            ("shard_size", Json::uint(self.shard_size as u64)),
            ("max_retries", Json::uint(self.max_retries as u64)),
        ];
        if let Some(e) = self.engine {
            pairs.push(("engine", Json::str(e.name())));
        }
        if let Some(t) = &self.trace {
            pairs.push(("trace", Json::str(t.clone())));
        }
        if !self.spans {
            pairs.push(("spans", Json::Bool(false)));
        }
        if self.checkpoint {
            pairs.push(("checkpoint", Json::Bool(true)));
        }
        if let Some((index, modulus)) = self.shard {
            pairs.push((
                "shard",
                Json::obj([
                    ("index", Json::uint(index as u64)),
                    ("modulus", Json::uint(modulus as u64)),
                ]),
            ));
        }
        if self.priority != Priority::Normal {
            pairs.push(("priority", Json::str(self.priority.label())));
        }
        if let Some(c) = &self.client {
            pairs.push(("client", Json::str(c.clone())));
        }
        if self.emit_journal {
            pairs.push(("emit_journal", Json::Bool(true)));
        }
        if let Some(sel) = &self.hardening {
            pairs.push(("hardening", sel.to_json()));
        }
        if self.cache {
            pairs.push(("cache", Json::Bool(true)));
        }
        match &self.program {
            ProgramSpec::Named(n) => pairs.push(("program", Json::str(n.clone()))),
            ProgramSpec::Kir(src) => {
                pairs.push(("kernel", Json::str(src.clone())));
                pairs.push((
                    "launch",
                    Json::obj([
                        ("blocks", Json::uint(self.launch.blocks as u64)),
                        ("threads", Json::uint(self.launch.threads_per_block as u64)),
                        ("elems", Json::uint(self.launch.elems as u64)),
                        ("exact", Json::Bool(self.launch.exact)),
                    ]),
                ));
            }
        }
        if let Some(a) = &self.adaptive {
            pairs.push((
                "adaptive",
                Json::obj([
                    ("ci_width", Json::Num(a.ci_width)),
                    ("min_samples", Json::uint(a.min_samples)),
                ]),
            ));
        }
        if let Some(c) = &self.chaos {
            pairs.push((
                "chaos",
                Json::obj([
                    ("stratum", Json::str(c.stratum.key())),
                    ("chunk", Json::uint(c.chunk as u64)),
                    ("fail_attempts", Json::uint(c.fail_attempts as u64)),
                    ("panics", Json::Bool(c.panics)),
                ]),
            ));
        }
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Content-address of the result this spec deterministically produces:
    /// FNV-1a (16-hex, via [`hauberk::canon::fnv1a_hex`]) over the canonical
    /// JSON form with the observational fields stripped. Two specs share a
    /// key exactly when they produce byte-identical result documents, so the
    /// key set excludes everything that only shapes scheduling or telemetry
    /// (`trace`, `spans`, `priority`, `client`, `emit_journal`, `cache`) and
    /// includes everything result-affecting (program, kind, seed, sizing,
    /// engine, checkpoint, shard, ...).
    pub fn cache_key(&self) -> String {
        const OBSERVATIONAL: &[&str] = &[
            "trace",
            "spans",
            "priority",
            "client",
            "emit_journal",
            "cache",
        ];
        let mut doc = self.to_json();
        if let Json::Obj(map) = &mut doc {
            map.retain(|k, _| !OBSERVATIONAL.contains(&k.as_str()));
        }
        hauberk::canon::fnv1a_hex(doc.to_string().as_bytes())
    }

    /// Instantiate the program under test.
    pub fn build_program(&self) -> Result<Box<dyn HostProgram>, String> {
        match &self.program {
            ProgramSpec::Named(name) => program_by_name(name, ProblemScale::Quick)
                .ok_or_else(|| format!("unknown program `{name}` (try CP, MRI-Q, SAD, ...)")),
            ProgramSpec::Kir(src) => {
                Ok(Box::new(TextProgram::from_kir(src, self.launch)?) as Box<dyn HostProgram>)
            }
        }
    }

    /// The campaign kind this spec requests.
    pub fn campaign_kind(&self) -> CampaignKind {
        if self.coverage {
            CampaignKind::Coverage(FtOptions::default())
        } else {
            CampaignKind::Sensitivity
        }
    }

    /// The [`CampaignConfig`] this spec maps to. Exposed (and used by the
    /// e2e test) so "the same campaign run in-process" is definable
    /// byte-for-byte.
    pub fn campaign_config(&self) -> CampaignConfig {
        CampaignConfig {
            plan: PlanConfig {
                vars_per_program: self.vars,
                masks_per_var: self.masks,
                bit_counts: self.bit_counts.clone(),
                scheduler_per_mille: 60,
                register_per_mille: 60,
            },
            seed: self.seed,
            alpha: self.alpha,
            engine: self.engine,
            hardening: self.hardening.clone(),
            ..Default::default()
        }
    }

    /// Upper bound on the injections this spec plans: `vars × masks`
    /// variable experiments plus the 6% scheduler and 6% register-file
    /// riders [`Self::campaign_config`] adds on top. The real plan can only
    /// be smaller (kernels with fewer variables than `vars`), so the fleet
    /// coordinator uses this as its shard-sizing hint without having to
    /// profile the program first.
    pub fn planned_units_hint(&self) -> u64 {
        let base = (self.vars as u64).saturating_mul(self.masks as u64);
        base.saturating_mul(1000 + 60 + 60) / 1000
    }

    /// The orchestrator knobs this spec maps to (journal paths are the
    /// daemon's business, not the submitter's).
    pub fn orchestrator_config(&self) -> OrchestratorConfig {
        OrchestratorConfig {
            shard_size: self.shard_size,
            adaptive: self.adaptive.clone(),
            max_retries: self.max_retries,
            chaos: self.chaos,
            trace: self.trace.clone(),
            checkpoint: self.checkpoint,
            shard: self.shard,
            ..Default::default()
        }
    }
}

/// Job lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing the campaign.
    Running,
    /// Finished; the result document is available.
    Done,
    /// Execution failed (panic or journal error); the error is recorded.
    Failed,
    /// The daemon shut down before a worker picked the job up. Its spec is
    /// persisted, so a restarted daemon re-queues it.
    Canceled,
}

impl JobPhase {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
            JobPhase::Canceled => "canceled",
        }
    }

    /// Whether the phase is final.
    pub fn terminal(&self) -> bool {
        matches!(self, JobPhase::Done | JobPhase::Failed | JobPhase::Canceled)
    }

    /// Inverse of [`JobPhase::label`] (used by the fleet coordinator to
    /// interpret worker status documents).
    pub fn parse_label(s: &str) -> Option<JobPhase> {
        match s {
            "queued" => Some(JobPhase::Queued),
            "running" => Some(JobPhase::Running),
            "done" => Some(JobPhase::Done),
            "failed" => Some(JobPhase::Failed),
            "canceled" => Some(JobPhase::Canceled),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct JobState {
    phase: JobPhase,
    /// Final summary document (exact bytes served by `/result`).
    result: Option<String>,
    error: Option<String>,
}

#[derive(Debug, Default)]
struct EventBuf {
    lines: Vec<String>,
    dropped: u64,
}

/// One submitted campaign job: spec, lifecycle state, progress counters,
/// and the bounded event log backing the `/events` stream.
#[derive(Debug)]
pub struct Job {
    /// Job id (`"cj-<n>"`).
    pub id: String,
    /// The validated spec.
    pub spec: JobSpec,
    state: Mutex<JobState>,
    events: Mutex<EventBuf>,
    wake: Condvar,
    planned: AtomicU64,
    injections: AtomicU64,
    queued_at: std::time::Instant,
    stop: Arc<AtomicBool>,
}

/// Retained event lines per job; beyond this the log counts drops instead
/// of growing (the stream reports the gap).
pub const MAX_EVENT_LINES: usize = 100_000;

impl Job {
    /// New queued job.
    pub fn new(id: String, spec: JobSpec) -> Arc<Job> {
        let job = Arc::new(Job {
            id,
            spec,
            state: Mutex::new(JobState {
                phase: JobPhase::Queued,
                result: None,
                error: None,
            }),
            events: Mutex::new(EventBuf::default()),
            wake: Condvar::new(),
            planned: AtomicU64::new(0),
            injections: AtomicU64::new(0),
            queued_at: std::time::Instant::now(),
            stop: Arc::new(AtomicBool::new(false)),
        });
        job.push_lifecycle("queued");
        job
    }

    /// Time since the job was admitted (drives the `/metrics` queue-age
    /// gauge: how stale is the oldest queued job?).
    pub fn queued_for(&self) -> Duration {
        self.queued_at.elapsed()
    }

    /// A job recovered from a persisted result document (daemon restart).
    pub fn recovered(id: String, spec: JobSpec, result: Result<String, String>) -> Arc<Job> {
        let job = Job::new(id, spec);
        match result {
            Ok(summary) => job.finish(summary),
            Err(error) => job.fail(error),
        }
        job
    }

    /// Current phase.
    pub fn phase(&self) -> JobPhase {
        lock_recover(&self.state).phase
    }

    /// Final summary document, when done.
    pub fn result(&self) -> Option<String> {
        lock_recover(&self.state).result.clone()
    }

    /// Failure message, when failed.
    pub fn error(&self) -> Option<String> {
        lock_recover(&self.state).error.clone()
    }

    /// Status document for `GET /v1/campaigns/:id`.
    pub fn status_json(&self) -> Json {
        let st = lock_recover(&self.state);
        let mut pairs = vec![
            ("id".to_string(), Json::str(self.id.clone())),
            ("state".to_string(), Json::str(st.phase.label())),
            (
                "planned".to_string(),
                Json::uint(self.planned.load(Ordering::Relaxed)),
            ),
            (
                "injections_done".to_string(),
                Json::uint(self.injections.load(Ordering::Relaxed)),
            ),
        ];
        if let Some(e) = &st.error {
            pairs.push(("error".to_string(), Json::str(e.clone())));
        }
        Json::Obj(pairs.into_iter().collect())
    }

    /// Transition to `Running`.
    pub fn start(&self) {
        lock_recover(&self.state).phase = JobPhase::Running;
        self.push_lifecycle("running");
    }

    /// Transition to `Done` with the final summary document.
    pub fn finish(&self, summary: String) {
        {
            let mut st = lock_recover(&self.state);
            st.phase = JobPhase::Done;
            st.result = Some(summary);
        }
        self.push_lifecycle("done");
    }

    /// Transition to `Failed`.
    pub fn fail(&self, error: String) {
        {
            let mut st = lock_recover(&self.state);
            st.phase = JobPhase::Failed;
            st.error = Some(error);
        }
        self.push_lifecycle("failed");
    }

    /// Transition to `Canceled` (daemon shutdown before execution, or a
    /// client `DELETE` honored at a work-unit boundary).
    pub fn cancel(&self) {
        lock_recover(&self.state).phase = JobPhase::Canceled;
        self.push_lifecycle("canceled");
    }

    /// Request cooperative cancellation: a queued job is dropped by the
    /// worker that pops it; a running job observes the flag at its next
    /// work-unit boundary and stops there. Already-completed work stays in
    /// the journal, so re-submitting resumes rather than restarts.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    /// Whether cancellation has been requested.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The shared stop flag, for wiring into `OrchestratorConfig::stop`:
    /// the orchestrator holds only the flag, not the whole job, and sees
    /// every later [`Job::request_stop`].
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Push one raw orchestrator-journal line into the event log as a
    /// `{"ev":"journal","line":…}` event — the `emit_journal` transport a
    /// fleet coordinator reads shard journals back through.
    pub fn push_journal_line(&self, line: &str) {
        let ev = Json::obj([("ev", Json::str("journal")), ("line", Json::str(line))]);
        self.push_line(ev.to_string());
    }

    fn push_lifecycle(&self, state: &str) {
        let line = Json::obj([("ev", Json::str("job_state")), ("state", Json::str(state))]);
        self.push_line(line.to_string());
    }

    fn push_line(&self, line: String) {
        {
            let mut buf = lock_recover(&self.events);
            if buf.lines.len() < MAX_EVENT_LINES {
                buf.lines.push(line);
            } else {
                buf.dropped += 1;
            }
        }
        self.wake.notify_all();
    }

    /// Long-poll helper for `GET /v1/campaigns/:id?watch=<state>`: block
    /// until the phase differs from `seen` or `wait` elapses, returning the
    /// phase observed at wake-up. Piggybacks on the event-log condvar —
    /// every lifecycle transition pushes an event line, so a phase change
    /// always notifies.
    pub fn wait_phase_change(&self, seen: JobPhase, wait: Duration) -> JobPhase {
        let deadline = Instant::now() + wait;
        let mut buf = lock_recover(&self.events);
        loop {
            let phase = lock_recover(&self.state).phase;
            if phase != seen {
                return phase;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return phase;
            }
            let (b, _timeout) = self
                .wake
                .wait_timeout(buf, left)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            buf = b;
        }
    }

    /// Event lines after `from`, blocking up to `wait` for new ones.
    /// Returns `(new_lines, dropped_so_far, terminal)`; an empty batch with
    /// `terminal = true` means the stream is complete.
    pub fn events_since(&self, from: usize, wait: Duration) -> (Vec<String>, u64, bool) {
        let mut buf = lock_recover(&self.events);
        if buf.lines.len() <= from && !self.phase().terminal() {
            let (b, _timeout) = self
                .wake
                .wait_timeout(buf, wait)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            buf = b;
        }
        let lines = buf.lines.get(from..).unwrap_or(&[]).to_vec();
        let dropped = buf.dropped;
        drop(buf);
        (lines, dropped, self.phase().terminal())
    }
}

/// Telemetry sink wired into a job's campaign run: serializes every event
/// into the job's log (feeding `/events`) and keeps the cheap progress
/// counters behind `GET /v1/campaigns/:id` fresh.
#[derive(Debug)]
pub struct JobEventSink {
    job: Arc<Job>,
}

impl JobEventSink {
    /// Sink feeding `job`.
    pub fn new(job: Arc<Job>) -> Self {
        JobEventSink { job }
    }
}

impl TelemetrySink for JobEventSink {
    fn emit(&self, event: &Event) {
        match event {
            Event::CampaignStarted { runs, .. } => {
                self.job.planned.store(*runs, Ordering::Relaxed);
            }
            Event::InjectionRun { .. } => {
                self.job.injections.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        self.job.push_line(event.to_json().to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_telemetry::json::parse;

    #[test]
    fn spec_round_trips_through_json() {
        let doc = parse(
            r#"{"program":"CP","kind":"coverage","seed":7,"vars":4,"masks":3,
                "bit_counts":[1,3],"alpha":10.0,"engine":"batch","trace":"ht-cafe",
                "adaptive":{"ci_width":0.2,"min_samples":16}}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&doc).unwrap();
        assert!(spec.coverage);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.bit_counts, vec![1, 3]);
        assert_eq!(spec.engine, Some(hauberk_sim::ExecEngine::Batch));
        assert_eq!(spec.campaign_config().engine, spec.engine);
        assert_eq!(spec.trace.as_deref(), Some("ht-cafe"));
        assert_eq!(
            spec.orchestrator_config().trace.as_deref(),
            Some("ht-cafe"),
            "trace reaches the orchestrator (and so the root span)"
        );
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.to_json(), spec.to_json());
    }

    #[test]
    fn spans_toggle_defaults_on_and_round_trips_off() {
        let on = JobSpec::from_json(&parse(r#"{"program":"CP"}"#).unwrap()).unwrap();
        assert!(on.spans);
        assert!(!on.to_json().to_string().contains("spans"));
        let off = JobSpec::from_json(&parse(r#"{"program":"CP","spans":false}"#).unwrap()).unwrap();
        assert!(!off.spans);
        let back = JobSpec::from_json(&off.to_json()).unwrap();
        assert!(!back.spans);
    }

    #[test]
    fn checkpoint_toggle_defaults_off_and_round_trips_on() {
        let off = JobSpec::from_json(&parse(r#"{"program":"CP"}"#).unwrap()).unwrap();
        assert!(!off.checkpoint);
        assert!(!off.orchestrator_config().checkpoint);
        assert!(!off.to_json().to_string().contains("checkpoint"));
        let on =
            JobSpec::from_json(&parse(r#"{"program":"CP","checkpoint":true}"#).unwrap()).unwrap();
        assert!(on.checkpoint);
        assert!(on.orchestrator_config().checkpoint);
        let back = JobSpec::from_json(&on.to_json()).unwrap();
        assert!(back.checkpoint);
        let err =
            JobSpec::from_json(&parse(r#"{"program":"CP","checkpoint":1}"#).unwrap()).unwrap_err();
        assert!(err.contains("`checkpoint` must be a boolean"), "{err}");
    }

    #[test]
    fn unknown_and_invalid_fields_are_structured_errors() {
        for (body, needle) in [
            (r#"{"prorgam":"CP"}"#, "unknown field `prorgam`"),
            (r#"{"program":"NOPE"}"#, "unknown program"),
            (r#"{"program":"CP","kind":"both"}"#, "`kind` must be"),
            (r#"[1,2]"#, "must be a JSON object"),
            (
                r#"{"program":"CP","kernel":"kernel x() {}"}"#,
                "mutually exclusive",
            ),
            (r#"{"kernel":"kernel broken {"}"#, "parse error"),
            (r#"{}"#, "one of `program` or `kernel`"),
            (
                r#"{"program":"CP","engine":"warp-drive"}"#,
                "`engine` must be one of",
            ),
            (
                r#"{"program":"CP","trace":"bad header\r\n"}"#,
                "`trace` must be",
            ),
        ] {
            let err = JobSpec::from_json(&parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn fleet_fields_parse_validate_and_round_trip() {
        let doc = parse(
            r#"{"program":"CP","shard":{"index":1,"modulus":3},"priority":"high",
                "client":"ci-bot","emit_journal":true,"cache":true}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&doc).unwrap();
        assert_eq!(spec.shard, Some((1, 3)));
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.client.as_deref(), Some("ci-bot"));
        assert!(spec.emit_journal && spec.cache);
        assert_eq!(spec.orchestrator_config().shard, Some((1, 3)));
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.to_json(), spec.to_json());
        // Defaults stay off the wire.
        let plain = JobSpec::from_json(&parse(r#"{"program":"CP"}"#).unwrap()).unwrap();
        let s = plain.to_json().to_string();
        for absent in ["shard", "priority", "client", "emit_journal", "cache"] {
            assert!(
                !s.contains(&format!("\"{absent}\":")),
                "default `{absent}` must not serialize"
            );
        }
        for (body, needle) in [
            (
                r#"{"program":"CP","shard":{"index":3,"modulus":3}}"#,
                "`shard.index` must be <",
            ),
            (
                r#"{"program":"CP","shard":{"index":0,"modulus":65}}"#,
                "`shard.modulus` must be in 1..=64",
            ),
            (
                r#"{"program":"CP","priority":"urgent"}"#,
                "`priority` must be",
            ),
            (r#"{"program":"CP","client":""}"#, "`client` must be"),
        ] {
            let err = JobSpec::from_json(&parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn hardening_selection_parses_round_trips_and_keys_the_cache() {
        let doc = parse(
            r#"{"program":"CP","kind":"coverage","hardening":{
                "nonloop_vars":["xidx"],
                "loop_detectors":[{"loop":0,"var":"energyx2"}],
                "trip_checks":[0]}}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&doc).unwrap();
        let sel = spec.hardening.as_ref().expect("parsed selection");
        assert!(sel.selects_nl("xidx"));
        assert!(sel.selects_loop(0, "energyx2"));
        assert!(sel.selects_trip(0));
        assert_eq!(
            spec.campaign_config().hardening.as_ref(),
            Some(sel),
            "selection reaches the campaign config"
        );
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.to_json(), spec.to_json());
        // The placement changes the result document, so it must key the cache.
        let plain =
            JobSpec::from_json(&parse(r#"{"program":"CP","kind":"coverage"}"#).unwrap()).unwrap();
        assert_ne!(spec.cache_key(), plain.cache_key());
        assert!(!plain.to_json().to_string().contains("hardening"));
        let err =
            JobSpec::from_json(&parse(r#"{"program":"CP","hardening":7}"#).unwrap()).unwrap_err();
        assert!(err.contains("`hardening` must be"), "{err}");
    }

    #[test]
    fn cache_key_ignores_observational_fields_only() {
        let base = JobSpec::from_json(&parse(r#"{"program":"CP","seed":9}"#).unwrap()).unwrap();
        let dressed = JobSpec::from_json(
            &parse(
                r#"{"program":"CP","seed":9,"trace":"ht-1","spans":false,
                    "priority":"low","client":"alice","emit_journal":true,"cache":true}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(
            base.cache_key(),
            dressed.cache_key(),
            "observational fields must not change result identity"
        );
        let other = JobSpec::from_json(&parse(r#"{"program":"CP","seed":10}"#).unwrap()).unwrap();
        assert_ne!(base.cache_key(), other.cache_key());
        let sharded = JobSpec::from_json(
            &parse(r#"{"program":"CP","seed":9,"shard":{"index":0,"modulus":2}}"#).unwrap(),
        )
        .unwrap();
        assert_ne!(
            base.cache_key(),
            sharded.cache_key(),
            "a shard produces a different (partial) result document"
        );
        assert_eq!(base.cache_key().len(), 16, "16-hex FNV-1a form");
    }

    #[test]
    fn stop_flag_is_shared_and_phase_wait_wakes() {
        let job = Job::new("cj-9".into(), JobSpec::default());
        let flag = job.stop_flag();
        assert!(!flag.load(Ordering::SeqCst));
        job.request_stop();
        assert!(flag.load(Ordering::SeqCst), "orchestrator sees the DELETE");
        assert!(job.stop_requested());
        // Phase long-poll: returns immediately on a changed phase, times out
        // (returning the unchanged phase) otherwise.
        assert_eq!(
            job.wait_phase_change(JobPhase::Running, Duration::from_millis(1)),
            JobPhase::Queued
        );
        assert_eq!(
            job.wait_phase_change(JobPhase::Queued, Duration::from_millis(1)),
            JobPhase::Queued,
            "timeout returns the still-current phase"
        );
        assert_eq!(JobPhase::parse_label("done"), Some(JobPhase::Done));
        assert_eq!(JobPhase::parse_label("nope"), None);
    }

    #[test]
    fn job_event_log_streams_and_terminates() {
        let job = Job::new("cj-1".into(), JobSpec::default());
        let (lines, dropped, terminal) = job.events_since(0, Duration::from_millis(1));
        assert_eq!(lines.len(), 1, "queued lifecycle event");
        assert_eq!(dropped, 0);
        assert!(!terminal);
        job.start();
        job.finish("{}".to_string());
        let (lines, _, terminal) = job.events_since(1, Duration::from_millis(1));
        assert_eq!(lines.len(), 2, "running + done");
        assert!(terminal);
        assert_eq!(job.phase(), JobPhase::Done);
        assert_eq!(job.result().as_deref(), Some("{}"));
    }
}
