//! Job specifications, job state, and the per-job event log that feeds the
//! live progress stream.
//!
//! A job is one fault-injection campaign: a program (named benchmark or
//! ad-hoc KIR kernel text), a campaign kind, and sizing knobs. The spec is
//! parsed from untrusted JSON with an allow-listed key set — an unknown key
//! is a structured 400, not a silently ignored typo — and validated at
//! submit time (kernel parse + validation included), so everything that can
//! be rejected synchronously is rejected before the job enters the queue.

use hauberk::builds::FtOptions;
use hauberk::program::HostProgram;
use hauberk::textprog::{TextOptions, TextProgram};
use hauberk::units::Stratum;
use hauberk_benchmarks::{program_by_name, ProblemScale};
use hauberk_swifi::campaign::{CampaignConfig, CampaignKind};
use hauberk_swifi::mask::PAPER_BIT_COUNTS;
use hauberk_swifi::orchestrator::{ChaosConfig, OrchestratorConfig};
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::sampler::AdaptiveConfig;
use hauberk_telemetry::json::Json;
use hauberk_telemetry::{lock_recover, Event, TelemetrySink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What to execute: a registered benchmark or ad-hoc kernel text.
#[derive(Debug, Clone)]
pub enum ProgramSpec {
    /// One of the bundled benchmark programs, by paper name (`"CP"`, ...).
    Named(String),
    /// Raw mini-CUDA kernel source, run via [`TextProgram`].
    Kir(String),
}

/// A validated campaign submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Program under test.
    pub program: ProgramSpec,
    /// `"sensitivity"` (baseline build) or `"coverage"` (FI&FT build).
    pub coverage: bool,
    /// Planning seed.
    pub seed: u64,
    /// Virtual variables to target.
    pub vars: usize,
    /// Masks per variable.
    pub masks: usize,
    /// Mask bit counts to cycle through.
    pub bit_counts: Vec<u32>,
    /// Range-widening factor (coverage campaigns).
    pub alpha: f64,
    /// Injections per orchestrator work unit (0 = default).
    pub shard_size: usize,
    /// Retry budget before a crashing work unit is quarantined.
    pub max_retries: u32,
    /// Optional adaptive early stopping.
    pub adaptive: Option<AdaptiveConfig>,
    /// Launch geometry for KIR submissions (ignored for named programs).
    pub launch: TextOptions,
    /// Operator fault-injection hook: sabotage one work unit to validate the
    /// daemon's retry → quarantine resilience end-to-end (tests and drills).
    pub chaos: Option<ChaosConfig>,
    /// Execution engine (`None` = the process-wide default). Validated at
    /// POST time and recorded in the campaign journal header, so a resumed
    /// or merged campaign can never silently mix engines.
    pub engine: Option<hauberk_sim::ExecEngine>,
    /// Correlation trace id. Usually assigned by the daemon from the
    /// submitting request (echoed back as `X-Hauberk-Trace`); a client may
    /// also pin its own. Stamped onto the campaign's root span so every
    /// span in the job's event log carries it.
    pub trace: Option<String>,
    /// Emit tracing spans into the job's event log (default `true`).
    /// `"spans": false` drops the span layer for latency-critical
    /// submissions; `serve_bench` uses it to price the layer.
    pub spans: bool,
    /// Run the campaign from a shared fault-free checkpoint (default
    /// `false`): one reference run captures per-block snapshots and every
    /// injection resumes from them. The result document is byte-identical
    /// either way; ineligible campaigns fall back to full re-execution.
    pub checkpoint: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            program: ProgramSpec::Named("CP".to_string()),
            coverage: false,
            seed: CampaignConfig::default().seed,
            vars: 20,
            masks: 25,
            bit_counts: PAPER_BIT_COUNTS.to_vec(),
            alpha: 1.0,
            shard_size: 0,
            max_retries: OrchestratorConfig::DEFAULT_MAX_RETRIES,
            adaptive: None,
            launch: TextOptions::default(),
            chaos: None,
            engine: None,
            trace: None,
            spans: true,
            checkpoint: false,
        }
    }
}

fn want_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.as_u64()
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

fn want_f64(j: &Json, key: &str) -> Result<f64, String> {
    j.as_f64()
        .ok_or_else(|| format!("`{key}` must be a number"))
}

impl JobSpec {
    /// Parse and validate a submission document. Errors are end-user
    /// messages for a 400 response.
    pub fn from_json(doc: &Json) -> Result<JobSpec, String> {
        let Json::Obj(map) = doc else {
            return Err("request body must be a JSON object".to_string());
        };
        const KNOWN: &[&str] = &[
            "program",
            "kernel",
            "kind",
            "seed",
            "vars",
            "masks",
            "bit_counts",
            "alpha",
            "shard_size",
            "max_retries",
            "adaptive",
            "launch",
            "chaos",
            "engine",
            "trace",
            "spans",
            "checkpoint",
        ];
        if let Some(k) = map.keys().find(|k| !KNOWN.contains(&k.as_str())) {
            return Err(format!("unknown field `{k}` (known: {})", KNOWN.join(", ")));
        }

        let program = match (map.get("program"), map.get("kernel")) {
            (Some(_), Some(_)) => {
                return Err("`program` and `kernel` are mutually exclusive".to_string())
            }
            (Some(p), None) => {
                ProgramSpec::Named(p.as_str().ok_or("`program` must be a string")?.to_string())
            }
            (None, Some(k)) => {
                ProgramSpec::Kir(k.as_str().ok_or("`kernel` must be a string")?.to_string())
            }
            (None, None) => return Err("one of `program` or `kernel` is required".to_string()),
        };
        let mut spec = JobSpec {
            program,
            ..JobSpec::default()
        };
        if let Some(k) = map.get("kind") {
            spec.coverage = match k.as_str() {
                Some("sensitivity") => false,
                Some("coverage") => true,
                _ => return Err("`kind` must be \"sensitivity\" or \"coverage\"".to_string()),
            };
        }
        if let Some(v) = map.get("engine") {
            let name = v.as_str().ok_or("`engine` must be a string")?;
            spec.engine = Some(hauberk_sim::ExecEngine::parse(name).ok_or_else(|| {
                format!("`engine` must be one of tree-walk, bytecode, batch (got `{name}`)")
            })?);
        }
        if let Some(v) = map.get("trace") {
            let t = v.as_str().ok_or("`trace` must be a string")?;
            if t.is_empty() || t.len() > 128 || !t.chars().all(|c| c.is_ascii_graphic()) {
                return Err(
                    "`trace` must be 1..=128 printable ASCII characters (it is echoed \
                     as a response header)"
                        .to_string(),
                );
            }
            spec.trace = Some(t.to_string());
        }
        if let Some(v) = map.get("spans") {
            spec.spans = v.as_bool().ok_or("`spans` must be a boolean")?;
        }
        if let Some(v) = map.get("checkpoint") {
            spec.checkpoint = v.as_bool().ok_or("`checkpoint` must be a boolean")?;
        }
        if let Some(v) = map.get("seed") {
            spec.seed = want_u64(v, "seed")?;
        }
        if let Some(v) = map.get("vars") {
            spec.vars = want_u64(v, "vars")?.clamp(1, 1024) as usize;
        }
        if let Some(v) = map.get("masks") {
            spec.masks = want_u64(v, "masks")?.clamp(1, 1024) as usize;
        }
        if let Some(v) = map.get("alpha") {
            spec.alpha = want_f64(v, "alpha")?;
            if !(spec.alpha >= 1.0 && spec.alpha.is_finite()) {
                return Err("`alpha` must be a finite number >= 1".to_string());
            }
        }
        if let Some(v) = map.get("shard_size") {
            spec.shard_size = want_u64(v, "shard_size")?.min(1 << 16) as usize;
        }
        if let Some(v) = map.get("max_retries") {
            spec.max_retries = want_u64(v, "max_retries")?.min(16) as u32;
        }
        if let Some(v) = map.get("bit_counts") {
            let arr = v.as_arr().ok_or("`bit_counts` must be an array")?;
            if arr.is_empty() || arr.len() > 32 {
                return Err("`bit_counts` must hold 1..=32 entries".to_string());
            }
            spec.bit_counts = arr
                .iter()
                .map(|b| {
                    b.as_u64()
                        .filter(|b| (1..=32).contains(b))
                        .map(|b| b as u32)
                        .ok_or_else(|| {
                            "`bit_counts` entries must be integers in 1..=32".to_string()
                        })
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = map.get("adaptive") {
            let mut a = AdaptiveConfig::default();
            if let Some(w) = v.get("ci_width") {
                a.ci_width = want_f64(w, "adaptive.ci_width")?;
                if !(a.ci_width > 0.0 && a.ci_width < 1.0) {
                    return Err("`adaptive.ci_width` must be in (0, 1)".to_string());
                }
            }
            if let Some(n) = v.get("min_samples") {
                a.min_samples = want_u64(n, "adaptive.min_samples")?;
            }
            spec.adaptive = Some(a);
        }
        if let Some(v) = map.get("chaos") {
            let key = v
                .get("stratum")
                .and_then(|s| s.as_str())
                .ok_or("`chaos.stratum` (a stratum key like \"FPU/floating-point\") is required")?;
            let stratum = Stratum::parse_key(key)
                .ok_or_else(|| format!("`chaos.stratum`: unknown stratum key `{key}`"))?;
            let mut chaos = ChaosConfig {
                stratum,
                chunk: 0,
                fail_attempts: 1,
                panics: false,
            };
            if let Some(c) = v.get("chunk") {
                chaos.chunk = want_u64(c, "chaos.chunk")?.min(u32::MAX as u64) as u32;
            }
            if let Some(f) = v.get("fail_attempts") {
                chaos.fail_attempts =
                    want_u64(f, "chaos.fail_attempts")?.min(u32::MAX as u64) as u32;
            }
            if let Some(p) = v.get("panics") {
                chaos.panics = p.as_bool().ok_or("`chaos.panics` must be a boolean")?;
            }
            spec.chaos = Some(chaos);
        }
        if let Some(v) = map.get("launch") {
            if let Some(b) = v.get("blocks") {
                spec.launch.blocks = want_u64(b, "launch.blocks")? as u32;
            }
            if let Some(t) = v.get("threads") {
                spec.launch.threads_per_block = want_u64(t, "launch.threads")? as u32;
            }
            if let Some(e) = v.get("elems") {
                spec.launch.elems = want_u64(e, "launch.elems")? as u32;
            }
            if let Some(x) = v.get("exact") {
                spec.launch.exact = x.as_bool().ok_or("`launch.exact` must be a boolean")?;
            }
        }

        // Build the program once now so a bad submission fails at POST time
        // with a structured message, not inside a worker thread.
        spec.build_program()?;
        Ok(spec)
    }

    /// Canonical JSON form (round-trips through [`JobSpec::from_json`];
    /// persisted as `<id>.spec.json` so a restarted daemon can re-run the
    /// job against its journal).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![
            (
                "kind",
                Json::str(if self.coverage {
                    "coverage"
                } else {
                    "sensitivity"
                }),
            ),
            ("seed", Json::uint(self.seed)),
            ("vars", Json::uint(self.vars as u64)),
            ("masks", Json::uint(self.masks as u64)),
            (
                "bit_counts",
                Json::Arr(
                    self.bit_counts
                        .iter()
                        .map(|b| Json::uint(*b as u64))
                        .collect(),
                ),
            ),
            ("alpha", Json::Num(self.alpha)),
            ("shard_size", Json::uint(self.shard_size as u64)),
            ("max_retries", Json::uint(self.max_retries as u64)),
        ];
        if let Some(e) = self.engine {
            pairs.push(("engine", Json::str(e.name())));
        }
        if let Some(t) = &self.trace {
            pairs.push(("trace", Json::str(t.clone())));
        }
        if !self.spans {
            pairs.push(("spans", Json::Bool(false)));
        }
        if self.checkpoint {
            pairs.push(("checkpoint", Json::Bool(true)));
        }
        match &self.program {
            ProgramSpec::Named(n) => pairs.push(("program", Json::str(n.clone()))),
            ProgramSpec::Kir(src) => {
                pairs.push(("kernel", Json::str(src.clone())));
                pairs.push((
                    "launch",
                    Json::obj([
                        ("blocks", Json::uint(self.launch.blocks as u64)),
                        ("threads", Json::uint(self.launch.threads_per_block as u64)),
                        ("elems", Json::uint(self.launch.elems as u64)),
                        ("exact", Json::Bool(self.launch.exact)),
                    ]),
                ));
            }
        }
        if let Some(a) = &self.adaptive {
            pairs.push((
                "adaptive",
                Json::obj([
                    ("ci_width", Json::Num(a.ci_width)),
                    ("min_samples", Json::uint(a.min_samples)),
                ]),
            ));
        }
        if let Some(c) = &self.chaos {
            pairs.push((
                "chaos",
                Json::obj([
                    ("stratum", Json::str(c.stratum.key())),
                    ("chunk", Json::uint(c.chunk as u64)),
                    ("fail_attempts", Json::uint(c.fail_attempts as u64)),
                    ("panics", Json::Bool(c.panics)),
                ]),
            ));
        }
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Instantiate the program under test.
    pub fn build_program(&self) -> Result<Box<dyn HostProgram>, String> {
        match &self.program {
            ProgramSpec::Named(name) => program_by_name(name, ProblemScale::Quick)
                .ok_or_else(|| format!("unknown program `{name}` (try CP, MRI-Q, SAD, ...)")),
            ProgramSpec::Kir(src) => {
                Ok(Box::new(TextProgram::from_kir(src, self.launch)?) as Box<dyn HostProgram>)
            }
        }
    }

    /// The campaign kind this spec requests.
    pub fn campaign_kind(&self) -> CampaignKind {
        if self.coverage {
            CampaignKind::Coverage(FtOptions::default())
        } else {
            CampaignKind::Sensitivity
        }
    }

    /// The [`CampaignConfig`] this spec maps to. Exposed (and used by the
    /// e2e test) so "the same campaign run in-process" is definable
    /// byte-for-byte.
    pub fn campaign_config(&self) -> CampaignConfig {
        CampaignConfig {
            plan: PlanConfig {
                vars_per_program: self.vars,
                masks_per_var: self.masks,
                bit_counts: self.bit_counts.clone(),
                scheduler_per_mille: 60,
                register_per_mille: 60,
            },
            seed: self.seed,
            alpha: self.alpha,
            engine: self.engine,
            ..Default::default()
        }
    }

    /// The orchestrator knobs this spec maps to (journal paths are the
    /// daemon's business, not the submitter's).
    pub fn orchestrator_config(&self) -> OrchestratorConfig {
        OrchestratorConfig {
            shard_size: self.shard_size,
            adaptive: self.adaptive.clone(),
            max_retries: self.max_retries,
            chaos: self.chaos,
            trace: self.trace.clone(),
            checkpoint: self.checkpoint,
            ..Default::default()
        }
    }
}

/// Job lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing the campaign.
    Running,
    /// Finished; the result document is available.
    Done,
    /// Execution failed (panic or journal error); the error is recorded.
    Failed,
    /// The daemon shut down before a worker picked the job up. Its spec is
    /// persisted, so a restarted daemon re-queues it.
    Canceled,
}

impl JobPhase {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
            JobPhase::Canceled => "canceled",
        }
    }

    /// Whether the phase is final.
    pub fn terminal(&self) -> bool {
        matches!(self, JobPhase::Done | JobPhase::Failed | JobPhase::Canceled)
    }
}

#[derive(Debug)]
struct JobState {
    phase: JobPhase,
    /// Final summary document (exact bytes served by `/result`).
    result: Option<String>,
    error: Option<String>,
}

#[derive(Debug, Default)]
struct EventBuf {
    lines: Vec<String>,
    dropped: u64,
}

/// One submitted campaign job: spec, lifecycle state, progress counters,
/// and the bounded event log backing the `/events` stream.
#[derive(Debug)]
pub struct Job {
    /// Job id (`"cj-<n>"`).
    pub id: String,
    /// The validated spec.
    pub spec: JobSpec,
    state: Mutex<JobState>,
    events: Mutex<EventBuf>,
    wake: Condvar,
    planned: AtomicU64,
    injections: AtomicU64,
    queued_at: std::time::Instant,
}

/// Retained event lines per job; beyond this the log counts drops instead
/// of growing (the stream reports the gap).
pub const MAX_EVENT_LINES: usize = 100_000;

impl Job {
    /// New queued job.
    pub fn new(id: String, spec: JobSpec) -> Arc<Job> {
        let job = Arc::new(Job {
            id,
            spec,
            state: Mutex::new(JobState {
                phase: JobPhase::Queued,
                result: None,
                error: None,
            }),
            events: Mutex::new(EventBuf::default()),
            wake: Condvar::new(),
            planned: AtomicU64::new(0),
            injections: AtomicU64::new(0),
            queued_at: std::time::Instant::now(),
        });
        job.push_lifecycle("queued");
        job
    }

    /// Time since the job was admitted (drives the `/metrics` queue-age
    /// gauge: how stale is the oldest queued job?).
    pub fn queued_for(&self) -> Duration {
        self.queued_at.elapsed()
    }

    /// A job recovered from a persisted result document (daemon restart).
    pub fn recovered(id: String, spec: JobSpec, result: Result<String, String>) -> Arc<Job> {
        let job = Job::new(id, spec);
        match result {
            Ok(summary) => job.finish(summary),
            Err(error) => job.fail(error),
        }
        job
    }

    /// Current phase.
    pub fn phase(&self) -> JobPhase {
        lock_recover(&self.state).phase
    }

    /// Final summary document, when done.
    pub fn result(&self) -> Option<String> {
        lock_recover(&self.state).result.clone()
    }

    /// Failure message, when failed.
    pub fn error(&self) -> Option<String> {
        lock_recover(&self.state).error.clone()
    }

    /// Status document for `GET /v1/campaigns/:id`.
    pub fn status_json(&self) -> Json {
        let st = lock_recover(&self.state);
        let mut pairs = vec![
            ("id".to_string(), Json::str(self.id.clone())),
            ("state".to_string(), Json::str(st.phase.label())),
            (
                "planned".to_string(),
                Json::uint(self.planned.load(Ordering::Relaxed)),
            ),
            (
                "injections_done".to_string(),
                Json::uint(self.injections.load(Ordering::Relaxed)),
            ),
        ];
        if let Some(e) = &st.error {
            pairs.push(("error".to_string(), Json::str(e.clone())));
        }
        Json::Obj(pairs.into_iter().collect())
    }

    /// Transition to `Running`.
    pub fn start(&self) {
        lock_recover(&self.state).phase = JobPhase::Running;
        self.push_lifecycle("running");
    }

    /// Transition to `Done` with the final summary document.
    pub fn finish(&self, summary: String) {
        {
            let mut st = lock_recover(&self.state);
            st.phase = JobPhase::Done;
            st.result = Some(summary);
        }
        self.push_lifecycle("done");
    }

    /// Transition to `Failed`.
    pub fn fail(&self, error: String) {
        {
            let mut st = lock_recover(&self.state);
            st.phase = JobPhase::Failed;
            st.error = Some(error);
        }
        self.push_lifecycle("failed");
    }

    /// Transition to `Canceled` (daemon shutdown before execution).
    pub fn cancel(&self) {
        lock_recover(&self.state).phase = JobPhase::Canceled;
        self.push_lifecycle("canceled");
    }

    fn push_lifecycle(&self, state: &str) {
        let line = Json::obj([("ev", Json::str("job_state")), ("state", Json::str(state))]);
        self.push_line(line.to_string());
    }

    fn push_line(&self, line: String) {
        {
            let mut buf = lock_recover(&self.events);
            if buf.lines.len() < MAX_EVENT_LINES {
                buf.lines.push(line);
            } else {
                buf.dropped += 1;
            }
        }
        self.wake.notify_all();
    }

    /// Event lines after `from`, blocking up to `wait` for new ones.
    /// Returns `(new_lines, dropped_so_far, terminal)`; an empty batch with
    /// `terminal = true` means the stream is complete.
    pub fn events_since(&self, from: usize, wait: Duration) -> (Vec<String>, u64, bool) {
        let mut buf = lock_recover(&self.events);
        if buf.lines.len() <= from && !self.phase().terminal() {
            let (b, _timeout) = self
                .wake
                .wait_timeout(buf, wait)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            buf = b;
        }
        let lines = buf.lines.get(from..).unwrap_or(&[]).to_vec();
        let dropped = buf.dropped;
        drop(buf);
        (lines, dropped, self.phase().terminal())
    }
}

/// Telemetry sink wired into a job's campaign run: serializes every event
/// into the job's log (feeding `/events`) and keeps the cheap progress
/// counters behind `GET /v1/campaigns/:id` fresh.
#[derive(Debug)]
pub struct JobEventSink {
    job: Arc<Job>,
}

impl JobEventSink {
    /// Sink feeding `job`.
    pub fn new(job: Arc<Job>) -> Self {
        JobEventSink { job }
    }
}

impl TelemetrySink for JobEventSink {
    fn emit(&self, event: &Event) {
        match event {
            Event::CampaignStarted { runs, .. } => {
                self.job.planned.store(*runs, Ordering::Relaxed);
            }
            Event::InjectionRun { .. } => {
                self.job.injections.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        self.job.push_line(event.to_json().to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_telemetry::json::parse;

    #[test]
    fn spec_round_trips_through_json() {
        let doc = parse(
            r#"{"program":"CP","kind":"coverage","seed":7,"vars":4,"masks":3,
                "bit_counts":[1,3],"alpha":10.0,"engine":"batch","trace":"ht-cafe",
                "adaptive":{"ci_width":0.2,"min_samples":16}}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&doc).unwrap();
        assert!(spec.coverage);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.bit_counts, vec![1, 3]);
        assert_eq!(spec.engine, Some(hauberk_sim::ExecEngine::Batch));
        assert_eq!(spec.campaign_config().engine, spec.engine);
        assert_eq!(spec.trace.as_deref(), Some("ht-cafe"));
        assert_eq!(
            spec.orchestrator_config().trace.as_deref(),
            Some("ht-cafe"),
            "trace reaches the orchestrator (and so the root span)"
        );
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.to_json(), spec.to_json());
    }

    #[test]
    fn spans_toggle_defaults_on_and_round_trips_off() {
        let on = JobSpec::from_json(&parse(r#"{"program":"CP"}"#).unwrap()).unwrap();
        assert!(on.spans);
        assert!(!on.to_json().to_string().contains("spans"));
        let off = JobSpec::from_json(&parse(r#"{"program":"CP","spans":false}"#).unwrap()).unwrap();
        assert!(!off.spans);
        let back = JobSpec::from_json(&off.to_json()).unwrap();
        assert!(!back.spans);
    }

    #[test]
    fn checkpoint_toggle_defaults_off_and_round_trips_on() {
        let off = JobSpec::from_json(&parse(r#"{"program":"CP"}"#).unwrap()).unwrap();
        assert!(!off.checkpoint);
        assert!(!off.orchestrator_config().checkpoint);
        assert!(!off.to_json().to_string().contains("checkpoint"));
        let on =
            JobSpec::from_json(&parse(r#"{"program":"CP","checkpoint":true}"#).unwrap()).unwrap();
        assert!(on.checkpoint);
        assert!(on.orchestrator_config().checkpoint);
        let back = JobSpec::from_json(&on.to_json()).unwrap();
        assert!(back.checkpoint);
        let err =
            JobSpec::from_json(&parse(r#"{"program":"CP","checkpoint":1}"#).unwrap()).unwrap_err();
        assert!(err.contains("`checkpoint` must be a boolean"), "{err}");
    }

    #[test]
    fn unknown_and_invalid_fields_are_structured_errors() {
        for (body, needle) in [
            (r#"{"prorgam":"CP"}"#, "unknown field `prorgam`"),
            (r#"{"program":"NOPE"}"#, "unknown program"),
            (r#"{"program":"CP","kind":"both"}"#, "`kind` must be"),
            (r#"[1,2]"#, "must be a JSON object"),
            (
                r#"{"program":"CP","kernel":"kernel x() {}"}"#,
                "mutually exclusive",
            ),
            (r#"{"kernel":"kernel broken {"}"#, "parse error"),
            (r#"{}"#, "one of `program` or `kernel`"),
            (
                r#"{"program":"CP","engine":"warp-drive"}"#,
                "`engine` must be one of",
            ),
            (
                r#"{"program":"CP","trace":"bad header\r\n"}"#,
                "`trace` must be",
            ),
        ] {
            let err = JobSpec::from_json(&parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn job_event_log_streams_and_terminates() {
        let job = Job::new("cj-1".into(), JobSpec::default());
        let (lines, dropped, terminal) = job.events_since(0, Duration::from_millis(1));
        assert_eq!(lines.len(), 1, "queued lifecycle event");
        assert_eq!(dropped, 0);
        assert!(!terminal);
        job.start();
        job.finish("{}".to_string());
        let (lines, _, terminal) = job.events_since(1, Duration::from_millis(1));
        assert_eq!(lines.len(), 2, "running + done");
        assert!(terminal);
        assert_eq!(job.phase(), JobPhase::Done);
        assert_eq!(job.result().as_deref(), Some("{}"));
    }
}
