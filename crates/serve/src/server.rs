//! The daemon: listener, bounded job queue, worker pool, and route handlers.
//!
//! The flow is `TcpListener → per-connection thread (capped) → route →
//! bounded queue → worker pool → swifi orchestrator → journal/result files`.
//! Every stage is bounded: connections beyond [`ServerConfig::max_connections`]
//! get 503, submissions beyond [`ServerConfig::queue_capacity`] get 429 with
//! `Retry-After`, bodies beyond [`ServerConfig::max_body_bytes`] get 413
//! before being read, and a worker that panics inside a campaign marks the
//! job failed and keeps serving.
//!
//! With a state directory configured, every accepted job persists its spec,
//! its orchestrator journal, and (on completion) the exact result bytes, so
//! a restarted daemon serves finished results immediately and resumes
//! interrupted jobs from their journals.

use crate::fleet::{run_fleet_campaign, FleetEnv};
use crate::http::{self, ChunkedWriter, Limits, RecvError, Request};
use crate::jobs::{Job, JobEventSink, JobPhase, JobSpec};
use hauberk_swifi::orchestrator::{run_orchestrated_campaign_traced, CANCELED};
use hauberk_telemetry::json::{parse_with_limits, Json, ParseLimits};
use hauberk_telemetry::metrics::{to_prometheus, Registry};
use hauberk_telemetry::{lock_recover, Telemetry};
use std::collections::{BTreeMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Campaign worker threads.
    pub workers: usize,
    /// Jobs admitted beyond the running ones; the backpressure bound.
    pub queue_capacity: usize,
    /// Request body cap (shared by the HTTP layer and the JSON parser).
    pub max_body_bytes: usize,
    /// Per-connection socket read timeout (slow-loris bound).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout (stuck-client bound).
    pub write_timeout: Duration,
    /// Concurrent connection threads; beyond this, 503.
    pub max_connections: usize,
    /// Where specs/journals/results persist. `None` = fully in-memory.
    pub state_dir: Option<PathBuf>,
    /// `Retry-After` seconds advertised on 429.
    pub retry_after_secs: u64,
    /// Start with the worker pool paused (tests use this to fill the queue
    /// deterministically); release with [`ServerHandle::resume`].
    pub start_paused: bool,
    /// Peer daemon addresses. Non-empty makes this daemon a fleet
    /// coordinator: plain submissions are split into `peers + 1` shard jobs
    /// and dispatched (see [`crate::fleet`]).
    pub peers: Vec<String>,
    /// Per-client admission cap: at most this many non-terminal jobs per
    /// `client` value at once (`0` = unlimited). Anonymous submissions
    /// share one bucket.
    pub client_quota: usize,
    /// Result-cache entry cap (`0` = uncapped). Beyond it the least
    /// recently *hit* entry is evicted, and its persisted
    /// `<key>.cache.json` is removed from the state directory.
    pub cache_max_entries: usize,
    /// Result-cache byte cap over stored result bodies (`0` = uncapped);
    /// same LRU eviction as [`ServerConfig::cache_max_entries`].
    pub cache_max_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(30),
            max_connections: 64,
            state_dir: None,
            retry_after_secs: 2,
            start_paused: false,
            peers: Vec::new(),
            client_quota: 0,
            cache_max_entries: 256,
            cache_max_bytes: 16 << 20,
        }
    }
}

/// One cached result document with its LRU stamp.
#[derive(Debug)]
struct CacheEntry {
    body: String,
    last_hit: u64,
}

/// The content-addressed result cache behind `"cache": true` submissions,
/// bounded by an entry-count and a byte cap. Eviction is LRU by last hit
/// (a hit refreshes the stamp); evicted keys are returned to the caller,
/// which owns deleting the persisted `<key>.cache.json` files.
#[derive(Debug, Default)]
struct ResultCache {
    entries: BTreeMap<String, CacheEntry>,
    bytes: usize,
    clock: u64,
}

impl ResultCache {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn bytes(&self) -> usize {
        self.bytes
    }

    /// Look up a key, refreshing its LRU stamp on a hit.
    fn get(&mut self, key: &str) -> Option<String> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|e| {
            e.last_hit = clock;
            e.body.clone()
        })
    }

    /// Store a result body and evict down to the caps (`0` = uncapped),
    /// returning the evicted keys (possibly including the one just stored,
    /// if it alone exceeds the byte cap).
    fn insert(
        &mut self,
        key: String,
        body: String,
        max_entries: usize,
        max_bytes: usize,
    ) -> Vec<String> {
        self.clock += 1;
        let entry = CacheEntry {
            body,
            last_hit: self.clock,
        };
        self.bytes += entry.body.len();
        if let Some(old) = self.entries.insert(key, entry) {
            self.bytes -= old.body.len();
        }
        let mut evicted = Vec::new();
        let over = |c: &ResultCache| {
            (max_entries > 0 && c.entries.len() > max_entries)
                || (max_bytes > 0 && c.bytes > max_bytes)
        };
        while over(self) {
            let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_hit)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = self.entries.remove(&lru) {
                self.bytes -= e.body.len();
            }
            evicted.push(lru);
        }
        evicted
    }
}

/// The bounded submission queue: one FIFO lane per [`crate::jobs::Priority`]
/// level, drained highest lane first. The capacity bound spans all lanes —
/// priority changes *order*, never admission.
#[derive(Debug, Default)]
struct Lanes {
    lanes: [VecDeque<Arc<Job>>; 3],
}

impl Lanes {
    fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    fn push(&mut self, job: Arc<Job>) {
        self.lanes[job.spec.priority.lane()].push_back(job);
    }

    fn pop(&mut self) -> Option<Arc<Job>> {
        self.lanes.iter_mut().find_map(VecDeque::pop_front)
    }

    fn drain_all(&mut self) -> Vec<Arc<Job>> {
        self.lanes.iter_mut().flat_map(|l| l.drain(..)).collect()
    }

    /// Age of the stalest queued job across all lanes (the queue-age gauge).
    fn oldest_age_secs(&self) -> f64 {
        self.lanes
            .iter()
            .filter_map(|l| l.front())
            .map(|j| j.queued_for().as_secs_f64())
            .fold(0.0, f64::max)
    }
}

/// Shared daemon state.
struct Inner {
    cfg: ServerConfig,
    jobs: Mutex<BTreeMap<String, Arc<Job>>>,
    queue: Mutex<Lanes>,
    /// Wakes workers on enqueue, pause-release, and shutdown.
    work: Condvar,
    shutdown: AtomicBool,
    paused: AtomicBool,
    next_id: AtomicU64,
    conns: AtomicUsize,
    metrics: Registry,
    /// Daemon start (uptime gauge).
    started: Instant,
    /// Workers currently executing a campaign (occupancy gauge).
    busy: AtomicUsize,
    /// Trace-id sequence; mixed with `trace_seed` per request.
    next_trace: AtomicU64,
    /// Process-unique salt so trace ids differ across daemon restarts.
    trace_seed: u64,
    /// Content-addressed result cache: [`JobSpec::cache_key`] → the exact
    /// result bytes. Only `"cache": true` submissions read or write it.
    cache: Mutex<ResultCache>,
    /// Max `Retry-After` seconds seen from backpressuring workers; folded
    /// into this daemon's own 429s so the advertised horizon is coherent
    /// across the fleet.
    worker_retry_after: AtomicU64,
    /// Process-wide daemon ordinal. Job ids restart at `cj-1` per daemon,
    /// so anything keyed on (pid, job id) — the temp journal paths — must
    /// also mix this in when several daemons share one process (tests,
    /// loopback fleets).
    instance: u64,
}

/// Source of [`Inner::instance`].
static INSTANCES: AtomicU64 = AtomicU64::new(0);

impl Inner {
    fn job(&self, id: &str) -> Option<Arc<Job>> {
        lock_recover(&self.jobs).get(id).cloned()
    }

    /// A fresh request trace id (`ht-<16 hex>`): a splitmix64 step over a
    /// per-process seed and a counter — unique within the process, very
    /// unlikely to collide across restarts, and requiring no RNG dependency.
    fn fresh_trace(&self) -> String {
        let n = self.next_trace.fetch_add(1, Ordering::Relaxed);
        let mut z = self
            .trace_seed
            .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        format!("ht-{:016x}", z ^ (z >> 31))
    }

    fn state_path(&self, id: &str, suffix: &str) -> Option<PathBuf> {
        self.cfg
            .state_dir
            .as_ref()
            .map(|d| d.join(format!("{id}.{suffix}")))
    }

    fn persist(&self, id: &str, suffix: &str, contents: &str) {
        if let Some(path) = self.state_path(id, suffix) {
            // Write-then-rename so a crash mid-write never leaves a torn
            // document where the recovery scan expects valid JSON.
            let tmp = path.with_extension("tmp");
            if std::fs::write(&tmp, contents).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }

    /// Insert into the result cache under the configured caps, deleting the
    /// persisted `<key>.cache.json` of anything the insert evicted so a
    /// restart cannot resurrect entries the caps already expelled.
    fn cache_store(&self, key: String, body: String) {
        let evicted = lock_recover(&self.cache).insert(
            key,
            body,
            self.cfg.cache_max_entries,
            self.cfg.cache_max_bytes,
        );
        if !evicted.is_empty() {
            self.metrics.incr("cache_evicted", evicted.len() as u64);
            for k in evicted {
                if let Some(path) = self.state_path(&k, "cache.json") {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }

    fn enqueue(&self, job: Arc<Job>) {
        lock_recover(&self.queue).push(job);
        self.work.notify_all();
    }

    /// The `Retry-After` this daemon advertises on 429: never shorter than
    /// what its own workers last advertised to it (fleet coherence).
    fn retry_after(&self) -> u64 {
        self.cfg
            .retry_after_secs
            .max(self.worker_retry_after.load(Ordering::SeqCst))
    }

    /// Worker loop: pop → run → record, until shutdown drains the queue.
    /// A job canceled while still queued is skipped here, not executed.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = lock_recover(&self.queue);
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if !self.paused.load(Ordering::SeqCst) {
                        if let Some(job) = q.pop() {
                            break job;
                        }
                    }
                    let (g, _) = self
                        .work
                        .wait_timeout(q, Duration::from_millis(100))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    q = g;
                }
            };
            if job.phase().terminal() {
                continue; // canceled while queued
            }
            self.busy.fetch_add(1, Ordering::SeqCst);
            self.run_job(&job);
            self.busy.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Execute one campaign. Panics inside the campaign (hostile kernel,
    /// simulator divergence past the retry budget) are caught here so the
    /// worker — and the daemon — outlive the job. A coordinator daemon
    /// (non-empty `peers`) runs un-sharded submissions through the fleet
    /// fabric instead of its own orchestrator.
    fn run_job(&self, job: &Arc<Job>) {
        if job.stop_requested() {
            // DELETE raced the worker pop: honor it without starting.
            job.cancel();
            self.metrics.incr("jobs_canceled", 1);
            return;
        }
        job.start();
        self.metrics.incr("jobs_started", 1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if !self.cfg.peers.is_empty() && job.spec.shard.is_none() {
                let scratch = self.state_path(&job.id, "fleet").unwrap_or_else(|| {
                    std::env::temp_dir().join(format!(
                        "hauberk-fleet-{}-{}-{}",
                        std::process::id(),
                        self.instance,
                        job.id
                    ))
                });
                return run_fleet_campaign(
                    job,
                    &FleetEnv {
                        peers: &self.cfg.peers,
                        scratch,
                        metrics: &self.metrics,
                        worker_retry_after: &self.worker_retry_after,
                        http_timeout: self.cfg.read_timeout.max(Duration::from_secs(2)),
                    },
                );
            }
            // `emit_journal` needs a journal file even on a stateless
            // daemon; a temp path (cleaned up below) serves the transport.
            let journal = self.state_path(&job.id, "journal.jsonl").or_else(|| {
                job.spec.emit_journal.then(|| {
                    std::env::temp_dir().join(format!(
                        "hauberk-{}-{}-{}.journal.jsonl",
                        std::process::id(),
                        self.instance,
                        job.id
                    ))
                })
            });
            let tele =
                Telemetry::new(Arc::new(JobEventSink::new(job.clone()))).with_spans(job.spec.spans);
            let prog = job.spec.build_program()?;
            let cfg = job.spec.campaign_config();
            let mut orch = job.spec.orchestrator_config();
            orch.journal_path = journal.clone();
            orch.resume_from = journal.clone().filter(|p| p.exists());
            orch.stop = Some(job.stop_flag());
            let summary = run_orchestrated_campaign_traced(
                prog.as_ref(),
                job.spec.campaign_kind(),
                &cfg,
                &orch,
                tele,
            )
            .map(|res| res.summary_json().to_string())?;
            // Journal transport: push the finished journal into the event
            // log *before* the job turns terminal, so a coordinator that
            // sees "done" is guaranteed the complete stream.
            if job.spec.emit_journal {
                if let Some(path) = &journal {
                    if let Ok(raw) = std::fs::read_to_string(path) {
                        for line in raw.lines().filter(|l| !l.trim().is_empty()) {
                            job.push_journal_line(line);
                        }
                    }
                    if self.cfg.state_dir.is_none() {
                        let _ = std::fs::remove_file(path);
                    }
                }
            }
            Ok(summary)
        }));
        match outcome {
            Ok(Ok(summary)) => {
                self.persist(&job.id, "result.json", &summary);
                if job.spec.cache {
                    let key = job.spec.cache_key();
                    self.persist(&key, "cache.json", &summary);
                    self.cache_store(key, summary.clone());
                    self.metrics.incr("cache_stored", 1);
                }
                job.finish(summary);
                self.metrics.incr("jobs_done", 1);
            }
            Ok(Err(err)) if err.contains(CANCELED) => {
                // Cancellation is not failure: no `failed.json` is written,
                // so a restarted daemon re-queues the job and its journal
                // resumes from the units that already ran.
                job.cancel();
                self.metrics.incr("jobs_canceled", 1);
            }
            Ok(Err(err)) => {
                self.record_failure(job, err);
            }
            Err(panic) => {
                let msg = panic_message(panic);
                self.record_failure(job, format!("campaign panicked: {msg}"));
            }
        }
    }

    fn record_failure(&self, job: &Arc<Job>, err: String) {
        let doc = Json::obj([("error", Json::str(err.clone()))]).to_string();
        // Persisting the failure prevents a crash-loop: the recovery scan
        // sees `<id>.failed.json` and does NOT re-enqueue the job.
        self.persist(&job.id, "failed.json", &doc);
        job.fail(err);
        self.metrics.incr("jobs_failed", 1);
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// A bound daemon, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

/// Control handle for a daemon running on background threads.
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: std::net::SocketAddr,
    join: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Release a [`ServerConfig::start_paused`] worker pool.
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::SeqCst);
        self.inner.work.notify_all();
    }

    /// Pause the worker pool again: running jobs finish, queued jobs wait.
    /// Tests use resume/pause pairs to stage the queue deterministically.
    pub fn pause(&self) {
        self.inner.paused.store(true, Ordering::SeqCst);
    }

    /// Request shutdown and wait for in-flight jobs to drain.
    pub fn shutdown(self) {
        self.inner.request_shutdown();
        for j in self.join {
            let _ = j.join();
        }
    }
}

impl Inner {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.work.notify_all();
        // Jobs still queued will not run in this process lifetime; their
        // specs are on disk (when persistence is on), so a restart re-queues
        // them. Mark them so clients polling status see a truthful state.
        let canceled: Vec<Arc<Job>> = lock_recover(&self.queue).drain_all();
        for job in canceled {
            job.cancel();
        }
    }
}

impl Server {
    /// Bind the listener, recover persisted jobs, and prepare the pool.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            paused: AtomicBool::new(cfg.start_paused),
            cfg,
            jobs: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(Lanes::default()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            conns: AtomicUsize::new(0),
            metrics: Registry::new(),
            started: Instant::now(),
            busy: AtomicUsize::new(0),
            next_trace: AtomicU64::new(0),
            trace_seed: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0)
                ^ (std::process::id() as u64) << 32,
            cache: Mutex::new(ResultCache::default()),
            worker_retry_after: AtomicU64::new(0),
            instance: INSTANCES.fetch_add(1, Ordering::SeqCst),
        });
        recover_state(&inner);
        Ok(Server { listener, inner })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// External shutdown trigger for [`Server::run`] (the binary connects
    /// its signal handler to this).
    pub fn shutdown_flag(&self) -> Arc<dyn Fn() + Send + Sync> {
        let inner = self.inner.clone();
        Arc::new(move || inner.request_shutdown())
    }

    /// Run the daemon on background threads; returns a control handle.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let Server { listener, inner } = self;
        let mut join = spawn_workers(&inner);
        let accept_inner = inner.clone();
        join.push(std::thread::spawn(move || {
            accept_loop(&listener, &accept_inner);
        }));
        Ok(ServerHandle { inner, addr, join })
    }

    /// Run the daemon on the calling thread until shutdown is requested
    /// (via the closure from [`Server::shutdown_flag`]), then drain.
    pub fn run(self) {
        let workers = spawn_workers(&self.inner);
        accept_loop(&self.listener, &self.inner);
        for j in workers {
            let _ = j.join();
        }
    }
}

fn spawn_workers(inner: &Arc<Inner>) -> Vec<std::thread::JoinHandle<()>> {
    (0..inner.cfg.workers.max(1))
        .map(|_| {
            let inner = inner.clone();
            std::thread::spawn(move || inner.worker_loop())
        })
        .collect()
}

/// Poll-accept until shutdown. Nonblocking + sleep keeps the loop able to
/// observe the shutdown flag without platform-specific socket tricks.
fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.conns.load(Ordering::SeqCst) >= inner.cfg.max_connections {
                    inner.metrics.incr("http_rejected_overload", 1);
                    let mut s = stream;
                    let _ = http::write_response(
                        &mut s,
                        503,
                        "application/json",
                        &[],
                        br#"{"error":"connection limit reached"}"#,
                    );
                    continue;
                }
                inner.conns.fetch_add(1, Ordering::SeqCst);
                let inner = inner.clone();
                std::thread::spawn(move || {
                    handle_connection(stream, &inner);
                    inner.conns.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Recovery scan over the state directory: finished jobs serve their
/// persisted results, failed jobs stay failed (no crash-loop), and jobs
/// with only a spec re-enter the queue, where the orchestrator journal
/// replays whatever already ran.
fn recover_state(inner: &Arc<Inner>) {
    let Some(dir) = inner.cfg.state_dir.clone() else {
        return;
    };
    let _ = std::fs::create_dir_all(&dir);
    // Cache entries persist as `<fnv1a-key>.cache.json`; reloading them
    // lets a restarted daemon keep answering hits without re-execution.
    // Reloading goes through `cache_store` so a cap lowered across the
    // restart immediately trims the persisted backlog.
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            let Some(key) = name.strip_suffix(".cache.json") else {
                continue;
            };
            if key.len() == 16 && key.chars().all(|c| c.is_ascii_hexdigit()) {
                if let Ok(body) = std::fs::read_to_string(entry.path()) {
                    inner.cache_store(key.to_string(), body);
                }
            }
        }
    }
    let mut max_id = 0u64;
    let mut specs: Vec<(u64, String, PathBuf)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            let Some(id) = name.strip_suffix(".spec.json") else {
                continue;
            };
            let Some(n) = id.strip_prefix("cj-").and_then(|n| n.parse::<u64>().ok()) else {
                continue;
            };
            max_id = max_id.max(n);
            specs.push((n, id.to_string(), entry.path()));
        }
    }
    specs.sort();
    inner.next_id.store(max_id + 1, Ordering::SeqCst);
    for (_, id, spec_path) in specs {
        let Ok(raw) = std::fs::read_to_string(&spec_path) else {
            continue;
        };
        let spec = parse_with_limits(&raw, ParseLimits::default())
            .map_err(|e| e.to_string())
            .and_then(|doc| JobSpec::from_json(&doc));
        let spec = match spec {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "serve: skipping unreadable spec {}: {e}",
                    spec_path.display()
                );
                continue;
            }
        };
        let result = inner
            .state_path(&id, "result.json")
            .and_then(|p| std::fs::read_to_string(p).ok());
        let failed = inner
            .state_path(&id, "failed.json")
            .and_then(|p| std::fs::read_to_string(p).ok());
        let job = if let Some(summary) = result {
            Job::recovered(id.clone(), spec, Ok(summary))
        } else if let Some(doc) = failed {
            let msg = parse_with_limits(&doc, ParseLimits::default())
                .ok()
                .and_then(|j| j.get("error").and_then(|e| e.as_str().map(String::from)))
                .unwrap_or(doc);
            Job::recovered(id.clone(), spec, Err(msg))
        } else {
            let job = Job::new(id.clone(), spec);
            inner.enqueue(job.clone());
            inner.metrics.incr("jobs_recovered", 1);
            job
        };
        lock_recover(&inner.jobs).insert(id, job);
    }
}

/// The `X-Hauberk-Trace` header every response carries.
fn trace_header(trace: &str) -> (&'static str, String) {
    ("X-Hauberk-Trace", trace.to_string())
}

fn respond_json(stream: &mut TcpStream, status: u16, doc: &Json, trace: &str) {
    let _ = http::write_response(
        stream,
        status,
        "application/json",
        &[trace_header(trace)],
        doc.to_string().as_bytes(),
    );
}

fn error_json(stream: &mut TcpStream, status: u16, msg: &str, trace: &str) {
    respond_json(
        stream,
        status,
        &Json::obj([("error", Json::str(msg))]),
        trace,
    );
}

fn handle_connection(mut stream: TcpStream, inner: &Arc<Inner>) {
    let t_req = Instant::now();
    let trace = inner.fresh_trace();
    let _ = stream.set_read_timeout(Some(inner.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
    let limits = Limits {
        max_body_bytes: inner.cfg.max_body_bytes,
        ..Limits::default()
    };
    let req = match http::read_request(&mut stream, &limits) {
        Ok(req) => req,
        Err(RecvError::Closed) => return,
        Err(RecvError::Timeout) => {
            inner.metrics.incr("http_timeouts", 1);
            return error_json(&mut stream, 408, "request timed out", &trace);
        }
        Err(RecvError::BodyTooLarge { limit }) => {
            inner.metrics.incr("http_oversized", 1);
            return error_json(
                &mut stream,
                413,
                &format!("body exceeds the {limit}-byte limit"),
                &trace,
            );
        }
        Err(RecvError::Malformed(msg)) => {
            inner.metrics.incr("http_malformed", 1);
            return error_json(&mut stream, 400, &msg, &trace);
        }
    };
    // A client may pin its own trace id; anything unfit for a response
    // header falls back to the generated one.
    let trace = match req.header("x-hauberk-trace") {
        Some(t) if !t.is_empty() && t.len() <= 128 && t.chars().all(|c| c.is_ascii_graphic()) => {
            t.to_string()
        }
        _ => trace,
    };
    inner.metrics.incr("http_requests", 1);
    let endpoint = route(&mut stream, &req, inner, &trace);
    inner.metrics.observe(
        &format!("http_latency_us.{endpoint}"),
        t_req.elapsed().as_micros() as u64,
    );
}

/// Dispatch one request; returns the endpoint label used as the per-endpoint
/// latency histogram key.
fn route(stream: &mut TcpStream, req: &Request, inner: &Arc<Inner>, trace: &str) -> &'static str {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            handle_healthz(stream, inner, trace);
            "healthz"
        }
        ("GET", ["metrics"]) => {
            handle_metrics(stream, req, inner, trace);
            "metrics"
        }
        ("POST", ["v1", "campaigns"]) => {
            handle_submit(stream, req, inner, trace);
            "submit"
        }
        ("GET", ["v1", "campaigns", id]) => {
            match inner.job(id) {
                Some(job) => handle_status(stream, req, &job, inner, trace),
                None => error_json(stream, 404, "no such campaign", trace),
            }
            "status"
        }
        ("DELETE", ["v1", "campaigns", id]) => {
            match inner.job(id) {
                Some(job) => handle_cancel(stream, &job, inner, trace),
                None => error_json(stream, 404, "no such campaign", trace),
            }
            "cancel"
        }
        ("GET", ["v1", "campaigns", id, "events"]) => {
            match inner.job(id) {
                Some(job) => handle_events(stream, &job, inner, trace),
                None => error_json(stream, 404, "no such campaign", trace),
            }
            "events"
        }
        ("GET", ["v1", "campaigns", id, "result"]) => {
            match inner.job(id) {
                Some(job) => handle_result(stream, &job, trace),
                None => error_json(stream, 404, "no such campaign", trace),
            }
            "result"
        }
        (_, ["healthz" | "metrics"]) | (_, ["v1", "campaigns", ..]) => {
            error_json(stream, 405, "method not allowed", trace);
            "other"
        }
        _ => {
            error_json(stream, 404, "no such route", trace);
            "other"
        }
    }
}

/// `GET /healthz`: liveness plus enough occupancy detail for a one-glance
/// triage — build version, uptime, worker/queue saturation.
fn handle_healthz(stream: &mut TcpStream, inner: &Arc<Inner>, trace: &str) {
    let doc = Json::obj([
        ("status", Json::str("ok")),
        ("version", Json::str(env!("CARGO_PKG_VERSION"))),
        ("uptime_secs", Json::uint(inner.started.elapsed().as_secs())),
        ("workers", Json::uint(inner.cfg.workers.max(1) as u64)),
        (
            "busy_workers",
            Json::uint(inner.busy.load(Ordering::SeqCst) as u64),
        ),
        (
            "queue_depth",
            Json::uint(lock_recover(&inner.queue).len() as u64),
        ),
        (
            "queue_capacity",
            Json::uint(inner.cfg.queue_capacity as u64),
        ),
        ("peers", Json::uint(inner.cfg.peers.len() as u64)),
    ]);
    let _ = http::write_response(
        stream,
        200,
        "application/json",
        &[
            ("Cache-Control", "no-store".to_string()),
            trace_header(trace),
        ],
        doc.to_string().as_bytes(),
    );
}

fn handle_submit(stream: &mut TcpStream, req: &Request, inner: &Arc<Inner>, trace: &str) {
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return error_json(stream, 400, "body is not UTF-8", trace),
    };
    let parse_limits = ParseLimits {
        max_bytes: inner.cfg.max_body_bytes,
        ..ParseLimits::default()
    };
    let doc = match parse_with_limits(body, parse_limits) {
        Ok(doc) => doc,
        Err(e) => return error_json(stream, 400, &format!("invalid JSON: {e}"), trace),
    };
    let mut spec = match JobSpec::from_json(&doc) {
        Ok(spec) => spec,
        Err(e) => {
            inner.metrics.incr("submit_rejected", 1);
            return error_json(stream, 400, &e, trace);
        }
    };
    // The request's trace id follows the job: it is persisted in the spec
    // and stamped onto the campaign's root span, so the response header, the
    // job spec, and every span in the event stream correlate.
    if spec.trace.is_none() {
        spec.trace = Some(trace.to_string());
    }

    // Content-addressed cache: an identical opted-in spec already ran, so
    // answer with the stored bytes as an instantly-done job — no queue slot,
    // no execution. Soundness rests on campaign determinism (DESIGN §18).
    if spec.cache {
        let key = spec.cache_key();
        // `get` refreshes the entry's LRU stamp, keeping hot entries alive
        // under the entry-count / byte caps.
        let hit = lock_recover(&inner.cache).get(&key);
        if let Some(body) = hit {
            inner.metrics.incr("cache_hits", 1);
            let id = format!("cj-{}", inner.next_id.fetch_add(1, Ordering::SeqCst));
            let job = Job::new(id, spec);
            inner.persist(&job.id, "spec.json", &job.spec.to_json().to_string());
            inner.persist(&job.id, "result.json", &body);
            job.finish(body);
            lock_recover(&inner.jobs).insert(job.id.clone(), job.clone());
            inner.metrics.incr("submit_accepted", 1);
            return respond_json(
                stream,
                201,
                &Json::obj([
                    ("id", Json::str(job.id.clone())),
                    ("state", Json::str(job.phase().label())),
                    ("cached", Json::Bool(true)),
                    (
                        "trace",
                        Json::str(job.spec.trace.clone().unwrap_or_default()),
                    ),
                ]),
                trace,
            );
        }
        inner.metrics.incr("cache_misses", 1);
    }

    // Per-client quota: bound how much of the daemon one identity can hold
    // at once (non-terminal jobs; anonymous submissions share a bucket).
    if inner.cfg.client_quota > 0 {
        let bucket = spec.client.clone().unwrap_or_default();
        let held = lock_recover(&inner.jobs)
            .values()
            .filter(|j| {
                j.spec.client.clone().unwrap_or_default() == bucket && !j.phase().terminal()
            })
            .count();
        if held >= inner.cfg.client_quota {
            inner.metrics.incr("submit_quota_rejected", 1);
            let doc = Json::obj([(
                "error",
                Json::str(format!(
                    "client quota reached ({} active jobs); retry later",
                    inner.cfg.client_quota
                )),
            )]);
            let _ = http::write_response(
                stream,
                429,
                "application/json",
                &[
                    ("Retry-After", inner.retry_after().to_string()),
                    trace_header(trace),
                ],
                doc.to_string().as_bytes(),
            );
            return;
        }
    }

    // Admission control under the queue lock so capacity is exact: two
    // racing submissions cannot both squeeze into the last slot.
    let job = {
        let mut q = lock_recover(&inner.queue);
        if q.len() >= inner.cfg.queue_capacity {
            inner.metrics.incr("submit_backpressured", 1);
            drop(q);
            let retry = inner.retry_after().to_string();
            let doc = Json::obj([("error", Json::str("job queue is full; retry later"))]);
            let _ = http::write_response(
                stream,
                429,
                "application/json",
                &[("Retry-After", retry), trace_header(trace)],
                doc.to_string().as_bytes(),
            );
            return;
        }
        let id = format!("cj-{}", inner.next_id.fetch_add(1, Ordering::SeqCst));
        let job = Job::new(id, spec);
        q.push(job.clone());
        job
    };
    inner.work.notify_all();
    inner.persist(&job.id, "spec.json", &job.spec.to_json().to_string());
    lock_recover(&inner.jobs).insert(job.id.clone(), job.clone());
    inner.metrics.incr("submit_accepted", 1);
    respond_json(
        stream,
        201,
        &Json::obj([
            ("id", Json::str(job.id.clone())),
            ("state", Json::str(job.phase().label())),
            (
                "trace",
                Json::str(job.spec.trace.clone().unwrap_or_default()),
            ),
        ]),
        trace,
    );
}

/// `GET /v1/campaigns/:id[?watch=<state>&timeout_ms=<n>]`: status counters,
/// optionally long-polling — with `watch`, the response is deferred until
/// the phase differs from the given label or the timeout (default 10 s,
/// capped at 30 s) elapses. Status is always `Cache-Control: no-store`: a
/// cached "running" is a wrong "running".
fn handle_status(
    stream: &mut TcpStream,
    req: &Request,
    job: &Arc<Job>,
    inner: &Arc<Inner>,
    trace: &str,
) {
    if let Some(watch) = req.query_param("watch") {
        let Some(seen) = JobPhase::parse_label(watch) else {
            return error_json(
                stream,
                400,
                "`watch` must be a job state label (queued, running, ...)",
                trace,
            );
        };
        let timeout_ms = req
            .query_param("timeout_ms")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(10_000)
            .min(30_000);
        inner.metrics.incr("status_longpolls", 1);
        job.wait_phase_change(seen, Duration::from_millis(timeout_ms));
    }
    let _ = http::write_response(
        stream,
        200,
        "application/json",
        &[
            ("Cache-Control", "no-store".to_string()),
            trace_header(trace),
        ],
        job.status_json().to_string().as_bytes(),
    );
}

/// `DELETE /v1/campaigns/:id`: cooperative cancellation. A queued job is
/// canceled immediately; a running one gets its stop flag set and stops at
/// the next work-unit boundary (202 — the cancel is underway, poll status).
/// Terminal jobs answer 200 with their (unchanged) state. Responses carry
/// `Cache-Control: no-store` — cancellation state must never be stale.
fn handle_cancel(stream: &mut TcpStream, job: &Arc<Job>, inner: &Arc<Inner>, trace: &str) {
    let phase = job.phase();
    let status = if phase.terminal() {
        200
    } else {
        job.request_stop();
        if phase == JobPhase::Queued {
            // Cancel in place; the worker pop skips terminal jobs.
            job.cancel();
        }
        inner.metrics.incr("jobs_cancel_requested", 1);
        inner.work.notify_all();
        202
    };
    let _ = http::write_response(
        stream,
        status,
        "application/json",
        &[
            ("Cache-Control", "no-store".to_string()),
            trace_header(trace),
        ],
        job.status_json().to_string().as_bytes(),
    );
}

/// Stream the job's event log as chunked JSONL until the job reaches a
/// terminal phase and the log is drained (or the client goes away, or the
/// daemon shuts down — either truncates the stream, which is the honest
/// signal).
fn handle_events(stream: &mut TcpStream, job: &Arc<Job>, inner: &Arc<Inner>, trace: &str) {
    let mut w = match ChunkedWriter::start(stream, 200, "application/jsonl", &[trace_header(trace)])
    {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut cursor = 0usize;
    let mut reported_drops = 0u64;
    loop {
        let (lines, dropped, terminal) = job.events_since(cursor, Duration::from_millis(250));
        let mut batch = String::new();
        for line in &lines {
            batch.push_str(line);
            batch.push('\n');
        }
        cursor += lines.len();
        if dropped > reported_drops {
            batch.push_str(
                &Json::obj([
                    ("ev", Json::str("events_dropped")),
                    ("count", Json::uint(dropped - reported_drops)),
                ])
                .to_string(),
            );
            batch.push('\n');
            reported_drops = dropped;
        }
        if w.chunk(batch.as_bytes()).is_err() {
            return; // client went away
        }
        if (terminal && lines.is_empty()) || inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    let _ = w.finish();
}

fn handle_result(stream: &mut TcpStream, job: &Arc<Job>, trace: &str) {
    match job.phase() {
        JobPhase::Done => {
            let body = job.result().unwrap_or_default();
            let _ = http::write_response(
                stream,
                200,
                "application/json",
                &[trace_header(trace)],
                body.as_bytes(),
            );
        }
        JobPhase::Failed => {
            error_json(stream, 500, &job.error().unwrap_or_default(), trace);
        }
        JobPhase::Canceled => {
            error_json(
                stream,
                503,
                "job was canceled by daemon shutdown; it resumes on restart",
                trace,
            );
        }
        JobPhase::Queued | JobPhase::Running => {
            respond_json(stream, 202, &job.status_json(), trace);
        }
    }
}

/// `GET /metrics`: JSON snapshot by default; Prometheus text exposition
/// (format 0.0.4) when the `Accept` header asks for `text/plain`. Both are
/// marked `Cache-Control: no-store` — a cached scrape is a wrong scrape.
fn handle_metrics(stream: &mut TcpStream, req: &Request, inner: &Arc<Inner>, trace: &str) {
    let queue_depth;
    let queue_age_secs;
    {
        let q = lock_recover(&inner.queue);
        queue_depth = q.len() as u64;
        queue_age_secs = q.oldest_age_secs();
    }
    let (cache_entries, cache_bytes) = {
        let c = lock_recover(&inner.cache);
        (c.len() as u64, c.bytes() as u64)
    };
    let mut phases: BTreeMap<String, u64> = BTreeMap::new();
    for job in lock_recover(&inner.jobs).values() {
        *phases.entry(job.phase().label().to_string()).or_insert(0) += 1;
    }
    let wants_prometheus = req
        .header("accept")
        .is_some_and(|a| a.contains("text/plain"));
    if wants_prometheus {
        // Scrape-time gauges ride on a snapshot copy, not the live registry:
        // the JSON document's metric set stays exactly what the counters
        // recorded.
        let mut snap = inner.metrics.snapshot();
        snap.gauges
            .insert("queue_depth".to_string(), queue_depth as f64);
        snap.gauges.insert(
            "queue_capacity".to_string(),
            inner.cfg.queue_capacity as f64,
        );
        snap.gauges
            .insert("queue_oldest_age_seconds".to_string(), queue_age_secs);
        snap.gauges.insert(
            "busy_workers".to_string(),
            inner.busy.load(Ordering::SeqCst) as f64,
        );
        snap.gauges.insert(
            "uptime_seconds".to_string(),
            inner.started.elapsed().as_secs_f64(),
        );
        snap.gauges
            .insert("fleet_peers".to_string(), inner.cfg.peers.len() as f64);
        snap.gauges
            .insert("cache_entries".to_string(), cache_entries as f64);
        snap.gauges
            .insert("cache_bytes".to_string(), cache_bytes as f64);
        for (phase, n) in &phases {
            snap.gauges.insert(format!("jobs_phase.{phase}"), *n as f64);
        }
        let _ = http::write_response(
            stream,
            200,
            "text/plain; version=0.0.4",
            &[
                ("Cache-Control", "no-store".to_string()),
                trace_header(trace),
            ],
            to_prometheus(&snap).as_bytes(),
        );
        return;
    }
    let doc = Json::obj([
        ("metrics", inner.metrics.snapshot().to_json()),
        ("queue_depth", Json::uint(queue_depth)),
        (
            "queue_capacity",
            Json::uint(inner.cfg.queue_capacity as u64),
        ),
        ("fleet_peers", Json::uint(inner.cfg.peers.len() as u64)),
        ("cache_entries", Json::uint(cache_entries)),
        ("cache_bytes", Json::uint(cache_bytes)),
        (
            "jobs",
            Json::Obj(
                phases
                    .into_iter()
                    .map(|(k, v)| (k, Json::uint(v)))
                    .collect(),
            ),
        ),
    ]);
    let _ = http::write_response(
        stream,
        200,
        "application/json",
        &[
            ("Cache-Control", "no-store".to_string()),
            trace_header(trace),
        ],
        doc.to_string().as_bytes(),
    );
}

#[cfg(test)]
mod tests {
    use super::ResultCache;

    #[test]
    fn result_cache_evicts_lru_by_last_hit_under_the_entry_cap() {
        let mut c = ResultCache::default();
        assert!(c.insert("a".into(), "1".into(), 2, 0).is_empty());
        assert!(c.insert("b".into(), "2".into(), 2, 0).is_empty());
        // Hitting `a` makes `b` the least recently used entry.
        assert_eq!(c.get("a").as_deref(), Some("1"));
        let evicted = c.insert("c".into(), "3".into(), 2, 0);
        assert_eq!(evicted, vec!["b".to_string()]);
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none());
        assert_eq!(c.get("a").as_deref(), Some("1"));
        assert_eq!(c.get("c").as_deref(), Some("3"));
    }

    #[test]
    fn result_cache_byte_cap_tracks_body_sizes_and_replacements() {
        let mut c = ResultCache::default();
        assert!(c.insert("a".into(), "xxxx".into(), 0, 10).is_empty());
        assert_eq!(c.bytes(), 4);
        // Replacing a body must not double-count its bytes.
        assert!(c.insert("a".into(), "xxxxxx".into(), 0, 10).is_empty());
        assert_eq!(c.bytes(), 6);
        // 6 + 6 = 12 > 10: the older entry goes.
        let evicted = c.insert("b".into(), "yyyyyy".into(), 0, 10);
        assert_eq!(evicted, vec!["a".to_string()]);
        assert_eq!(c.bytes(), 6);
        // A single over-cap body evicts everything, itself included.
        let evicted = c.insert("big".into(), "z".repeat(11), 0, 10);
        assert_eq!(evicted, vec!["b".to_string(), "big".to_string()]);
        assert_eq!(c.len(), 0);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn result_cache_zero_caps_mean_uncapped() {
        let mut c = ResultCache::default();
        for i in 0..64 {
            assert!(c.insert(format!("k{i}"), "v".repeat(64), 0, 0).is_empty());
        }
        assert_eq!(c.len(), 64);
    }
}
