//! Fleet coordination: split one campaign across peer daemons and merge
//! the pieces back into a byte-identical result.
//!
//! A daemon started with `--peer` flags (or `--peers-file`) becomes a
//! *coordinator*: a plain `POST /v1/campaigns` is split into at most
//! `M = peers + 1` shard jobs over the orchestrator's round-robin stratum
//! partition (`ordinal % M == i`). Splitting is size-aware: a campaign
//! planning fewer than [`MIN_UNITS_PER_SHARD`] injections per shard gets
//! fewer shards — a small job degenerates to the coordinator running it
//! alone, because shipping journals around costs more than the shard saves.
//! Shard 0 runs locally on the coordinator's own
//! worker thread; shards `1..M` are dispatched to peer daemons over the
//! same public HTTP API a human client uses — `POST` the shard spec, poll
//! status (long-poll), then read the shard's orchestrator journal back out
//! of the existing `/events` stream (`emit_journal` makes the worker push
//! one `{"ev":"journal","line":…}` event per journal record). The
//! coordinator heals the received lines into per-shard journal files,
//! merges them with [`merge_journals`], and finalizes by *resume-replaying*
//! the merged journal under the full un-sharded spec: zero re-execution,
//! and — because adaptive stopping depends only on a stratum's own unit
//! prefix — a summary document byte-identical to a single-daemon run.
//!
//! Failure policy per remote shard: a `GET /healthz` probe gates every
//! dispatch (a dead peer is skipped with a `shard_skipped_unhealthy` event
//! instead of burning a submit timeout), then one transport retry against
//! the same peer, then re-dispatch around the ring of remaining peers, then
//! local fallback on the coordinator itself. A `429` from a saturated worker is
//! honored (sleep, bounded) and its `Retry-After` is recorded so the
//! coordinator's *own* backpressure responses never advertise a shorter
//! horizon than the fleet's. Cancellation propagates: a `DELETE` on the
//! coordinator job sets the shared stop flag, which the dispatch threads
//! observe between polls (forwarding the `DELETE` to their peer) and the
//! local shards observe at work-unit boundaries.

use crate::http::client_call;
use crate::jobs::{Job, JobEventSink, JobPhase, JobSpec, Priority};
use hauberk_swifi::journal::{merge_journals, write_journal_lines};
use hauberk_swifi::orchestrator::{run_orchestrated_campaign_traced, CANCELED};
use hauberk_telemetry::json::{parse_with_limits, ParseLimits};
use hauberk_telemetry::metrics::Registry;
use hauberk_telemetry::{Event, Telemetry, TelemetrySink};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything a coordinator needs beyond the job itself. Borrowed from the
/// daemon's shared state; a test can also construct one directly.
pub struct FleetEnv<'a> {
    /// Worker daemon addresses (`host:port`), in ring order.
    pub peers: &'a [String],
    /// Directory for the per-shard and merged journal files of one job.
    pub scratch: PathBuf,
    /// The daemon's metric registry (`fleet_*` counters).
    pub metrics: &'a Registry,
    /// Running maximum of `Retry-After` seconds seen from backpressuring
    /// workers; the daemon folds it into its own 429 responses.
    pub worker_retry_after: &'a AtomicU64,
    /// Per-request socket timeout for peer calls.
    pub http_timeout: Duration,
}

/// Parse a peers file: one `host:port` per line, blank lines and `#`
/// comments ignored.
pub fn parse_peers_file(path: &Path) -> Result<Vec<String>, String> {
    let raw =
        std::fs::read_to_string(path).map_err(|e| format!("peers file {}: {e}", path.display()))?;
    let mut peers = Vec::new();
    for line in raw.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        peers.push(validate_peer(line)?);
    }
    Ok(peers)
}

/// Validate one peer address (`host:port`, printable ASCII).
pub fn validate_peer(addr: &str) -> Result<String, String> {
    let addr = addr.trim();
    if addr.is_empty()
        || addr.len() > 256
        || !addr.contains(':')
        || !addr.chars().all(|c| c.is_ascii_graphic())
    {
        return Err(format!("peer address `{addr}` is not a host:port"));
    }
    Ok(addr.to_string())
}

/// The spec a shard job runs under: same campaign identity, restricted to
/// the strata `index` owns, journal streamed back over `/events`. Shards
/// ride the high-priority lane on workers — they execute on behalf of a
/// campaign the fleet already admitted, so they must not starve behind a
/// worker's own batch backlog. Observational/cache fields are reset: the
/// shard result is an internal intermediate, never cached or re-sharded.
fn shard_spec(spec: &JobSpec, index: u32, modulus: u32) -> JobSpec {
    JobSpec {
        shard: Some((index, modulus)),
        emit_journal: true,
        cache: false,
        spans: false,
        priority: Priority::High,
        client: None,
        ..spec.clone()
    }
}

/// Minimum planned injections a shard must be worth before the coordinator
/// splits it out to a peer: below this, journal transfer and resume-replay
/// dominate the shard's own execution time, so small campaigns run on fewer
/// shards — down to the coordinator alone.
pub const MIN_UNITS_PER_SHARD: u64 = 16;

/// How many ways to split a campaign of `units` planned injections across
/// `peers` workers: never more shards than keep each one at
/// [`MIN_UNITS_PER_SHARD`] units, never fewer than 1 (coordinator-only),
/// and never more than the 64 the journal merge is specified for.
fn shard_modulus(peers: usize, units: u64) -> u32 {
    let by_peers = u32::try_from(peers + 1).unwrap_or(u32::MAX);
    let by_units = u32::try_from((units / MIN_UNITS_PER_SHARD).max(1)).unwrap_or(u32::MAX);
    by_peers.min(by_units).min(64)
}

/// Run one campaign across the fleet; returns the final summary document
/// (byte-identical to a single-daemon run of the same spec).
pub fn run_fleet_campaign(job: &Arc<Job>, env: &FleetEnv) -> Result<String, String> {
    let modulus = shard_modulus(env.peers.len(), job.spec.planned_units_hint());
    env.metrics.incr("fleet_shards_planned", modulus as u64);
    std::fs::create_dir_all(&env.scratch)
        .map_err(|e| format!("fleet scratch {}: {e}", env.scratch.display()))?;
    let shard_path = |i: u32| env.scratch.join(format!("shard-{i}.jsonl"));

    // Shard 0 runs inline on this worker thread while the dispatch threads
    // drive shards 1..M on the peers; the scope is the barrier.
    let remote: Vec<Result<(), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..modulus)
            .map(|i| {
                let path = shard_path(i);
                s.spawn(move || dispatch_shard(job, env, i, modulus, &path))
            })
            .collect();
        let local = run_local_shard(job, 0, modulus, &shard_path(0));
        let mut results = vec![local];
        results.extend(handles.into_iter().map(|h| {
            h.join()
                .unwrap_or_else(|_| Err("shard dispatch thread panicked".to_string()))
        }));
        results
    });
    if let Some(err) = remote.into_iter().find_map(Result::err) {
        return Err(err);
    }
    if job.stop_requested() {
        return Err(CANCELED.to_string());
    }

    // Merge the shard journals and finalize by resume-replay: every work
    // unit is already recorded, so this executes zero injections and emits
    // the same summary bytes a single daemon would have.
    let merged = env.scratch.join("merged.jsonl");
    let paths: Vec<PathBuf> = (0..modulus).map(shard_path).collect();
    merge_journals(&merged, &paths)?;
    let prog = job.spec.build_program()?;
    let cfg = job.spec.campaign_config();
    let mut orch = job.spec.orchestrator_config();
    orch.journal_path = Some(merged.clone());
    orch.resume_from = Some(merged);
    orch.stop = Some(job.stop_flag());
    let tele = Telemetry::new(Arc::new(JobEventSink::new(job.clone()))).with_spans(job.spec.spans);
    let res = run_orchestrated_campaign_traced(
        prog.as_ref(),
        job.spec.campaign_kind(),
        &cfg,
        &orch,
        tele,
    )?;
    env.metrics.incr("fleet_campaigns_done", 1);
    Ok(res.summary_json().to_string())
}

/// Execute one shard locally (shard 0, and any shard whose peers are all
/// down). Span events are suppressed — shard telemetry is progress noise
/// inside the coordinator job's event log, not a trace of its own.
fn run_local_shard(job: &Arc<Job>, index: u32, modulus: u32, path: &Path) -> Result<(), String> {
    let spec = shard_spec(&job.spec, index, modulus);
    let prog = spec.build_program()?;
    let cfg = spec.campaign_config();
    let mut orch = spec.orchestrator_config();
    orch.journal_path = Some(path.to_path_buf());
    orch.resume_from = Some(path.to_path_buf()).filter(|p| p.exists());
    orch.stop = Some(job.stop_flag());
    let tele = Telemetry::new(Arc::new(JobEventSink::new(job.clone()))).with_spans(false);
    run_orchestrated_campaign_traced(prog.as_ref(), spec.campaign_kind(), &cfg, &orch, tele)
        .map(|_| ())
}

/// Drive one remote shard to a journal file on disk: ring of peers starting
/// at `index - 1`, one transport retry per peer, local fallback last.
fn dispatch_shard(
    job: &Arc<Job>,
    env: &FleetEnv,
    index: u32,
    modulus: u32,
    path: &Path,
) -> Result<(), String> {
    let sink = JobEventSink::new(job.clone());
    let spec_json = shard_spec(&job.spec, index, modulus).to_json().to_string();
    let n = env.peers.len();
    for k in 0..n {
        if job.stop_requested() {
            return Err(CANCELED.to_string());
        }
        let peer = &env.peers[(index as usize - 1 + k) % n];
        // Probe before dispatch: a dead peer fails in one cheap round-trip
        // here instead of a full submit + retry cycle, and the skip is
        // visible in the event log rather than disguised as a transport
        // error.
        if !peer_healthy(env, peer) {
            env.metrics.incr("fleet_shards_skipped_unhealthy", 1);
            sink.emit(&Event::ShardSkippedUnhealthy {
                shard: index as u64,
                peer: peer.clone(),
            });
            continue;
        }
        sink.emit(&Event::ShardDispatched {
            shard: index as u64,
            total: modulus as u64,
            peer: peer.clone(),
        });
        env.metrics.incr("fleet_shards_dispatched", 1);
        match run_on_peer(job, env, peer, &spec_json, path) {
            Ok(()) => return Ok(()),
            Err(e) if e == CANCELED => return Err(e),
            Err(reason) => {
                env.metrics.incr("fleet_shard_redispatches", 1);
                sink.emit(&Event::ShardRedispatched {
                    shard: index as u64,
                    peer: peer.clone(),
                    reason,
                });
            }
        }
    }
    // Every peer declined or died: the coordinator executes the shard
    // itself, so a fleet degrades to a single daemon rather than failing.
    sink.emit(&Event::ShardDispatched {
        shard: index as u64,
        total: modulus as u64,
        peer: "local".to_string(),
    });
    env.metrics.incr("fleet_local_fallbacks", 1);
    run_local_shard(job, index, modulus, path)
}

/// One `GET /healthz` round-trip: anything but a 200 within the timeout
/// means the peer is not worth offering a shard to right now.
fn peer_healthy(env: &FleetEnv, peer: &str) -> bool {
    client_call(peer, "GET", "/healthz", &[], b"", env.http_timeout)
        .map(|resp| resp.status == 200)
        .unwrap_or(false)
}

/// Submit a shard to one peer, wait for it, and write its journal lines to
/// `path`. Any error here means "try the next peer".
fn run_on_peer(
    job: &Arc<Job>,
    env: &FleetEnv,
    peer: &str,
    spec_json: &str,
    path: &Path,
) -> Result<(), String> {
    let headers = [("Content-Type", "application/json".to_string())];
    let mut id: Option<String> = None;
    for attempt in 0..2u32 {
        if job.stop_requested() {
            return Err(CANCELED.to_string());
        }
        match client_call(
            peer,
            "POST",
            "/v1/campaigns",
            &headers,
            spec_json.as_bytes(),
            env.http_timeout,
        ) {
            Ok(resp) if resp.status == 201 => {
                let doc = parse_with_limits(&resp.text(), ParseLimits::default())
                    .map_err(|e| format!("peer {peer}: unparseable submit response: {e}"))?;
                id = doc.get("id").and_then(|i| i.as_str()).map(String::from);
                break;
            }
            Ok(resp) if resp.status == 429 => {
                // A saturated worker: honor (bounded) and record its horizon
                // so the coordinator's own 429s stay coherent with the
                // fleet's. The sleep counts as the retry.
                let secs: u64 = resp
                    .header("retry-after")
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(1);
                env.worker_retry_after.fetch_max(secs, Ordering::SeqCst);
                if attempt == 0 {
                    std::thread::sleep(Duration::from_millis((secs * 1000).min(2_000)));
                }
            }
            Ok(resp) => {
                return Err(format!(
                    "peer {peer} answered {} to the shard submit",
                    resp.status
                ))
            }
            Err(e) => {
                if attempt == 0 {
                    std::thread::sleep(Duration::from_millis(50));
                } else {
                    return Err(format!("peer {peer} unreachable: {e}"));
                }
            }
        }
    }
    let Some(id) = id else {
        return Err(format!("peer {peer} kept backpressuring the shard"));
    };

    // Long-poll the shard to a terminal phase; forward cancellation.
    let mut seen = "queued".to_string();
    loop {
        if job.stop_requested() {
            let _ = client_call(
                peer,
                "DELETE",
                &format!("/v1/campaigns/{id}"),
                &[],
                b"",
                env.http_timeout,
            );
            return Err(CANCELED.to_string());
        }
        let resp = client_call(
            peer,
            "GET",
            &format!("/v1/campaigns/{id}?watch={seen}&timeout_ms=500"),
            &[],
            b"",
            env.http_timeout,
        )
        .map_err(|e| format!("peer {peer} lost mid-shard: {e}"))?;
        if resp.status != 200 {
            return Err(format!("peer {peer} answered {} to status", resp.status));
        }
        let doc = parse_with_limits(&resp.text(), ParseLimits::default())
            .map_err(|e| format!("peer {peer}: unparseable status: {e}"))?;
        let state = doc
            .get("state")
            .and_then(|s| s.as_str())
            .unwrap_or("")
            .to_string();
        match JobPhase::parse_label(&state) {
            Some(p) if p.terminal() => {
                if p != JobPhase::Done {
                    let err = doc
                        .get("error")
                        .and_then(|e| e.as_str())
                        .unwrap_or("no detail");
                    return Err(format!("peer {peer} shard ended {state}: {err}"));
                }
                break;
            }
            Some(_) => seen = state,
            None => return Err(format!("peer {peer} reported unknown state `{state}`")),
        }
    }

    // The finished worker has already pushed its whole journal into the
    // event log, so this read returns promptly with the complete stream.
    let resp = client_call(
        peer,
        "GET",
        &format!("/v1/campaigns/{id}/events"),
        &[],
        b"",
        env.http_timeout,
    )
    .map_err(|e| format!("peer {peer} died before the journal transfer: {e}"))?;
    let mut lines: Vec<String> = Vec::new();
    for line in resp.text().lines() {
        let Ok(doc) = parse_with_limits(line, ParseLimits::default()) else {
            continue;
        };
        if doc.get("ev").and_then(|e| e.as_str()) == Some("journal") {
            if let Some(l) = doc.get("line").and_then(|l| l.as_str()) {
                lines.push(l.to_string());
            }
        }
    }
    if lines.is_empty() {
        return Err(format!("peer {peer} returned no journal lines"));
    }
    let (written, _dropped) = write_journal_lines(path, lines.iter().map(String::as_str))?;
    if written == 0 {
        return Err(format!("peer {peer}: every journal line was invalid"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peers_file_parses_and_validates() {
        let dir = std::env::temp_dir().join(format!("hauberk-peers-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("peers.txt");
        std::fs::write(&path, "# fleet\n127.0.0.1:7001\n\n  127.0.0.1:7002  \n").unwrap();
        assert_eq!(
            parse_peers_file(&path).unwrap(),
            vec!["127.0.0.1:7001".to_string(), "127.0.0.1:7002".to_string()]
        );
        std::fs::write(&path, "not an address\n").unwrap();
        assert!(parse_peers_file(&path).unwrap_err().contains("host:port"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_modulus_scales_with_planned_units() {
        // Plenty of work: every peer gets a shard (capped at 64).
        assert_eq!(shard_modulus(3, 10_000), 4);
        assert_eq!(shard_modulus(100, 1_000_000), 64);
        // 48 units over MIN_UNITS_PER_SHARD=16 → only 3 shards are worth
        // their transfer cost, even with 7 peers idle.
        assert_eq!(shard_modulus(7, 48), 3);
        // Tiny campaign: coordinator-only, no matter the fleet size.
        assert_eq!(shard_modulus(7, 10), 1);
        assert_eq!(shard_modulus(7, 0), 1);
        // No peers: always exactly one shard.
        assert_eq!(shard_modulus(0, 1 << 20), 1);
    }

    #[test]
    fn shard_spec_keeps_identity_and_strips_observational_fields() {
        let spec = JobSpec {
            cache: true,
            client: Some("alice".into()),
            ..JobSpec::default()
        };
        let s = shard_spec(&spec, 2, 3);
        assert_eq!(s.shard, Some((2, 3)));
        assert!(s.emit_journal && !s.cache && !s.spans);
        assert_eq!(s.priority, Priority::High);
        assert_eq!(s.client, None);
        assert_eq!(s.seed, spec.seed, "campaign identity is preserved");
    }
}
