//! A minimal, defensive HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! The workspace is fully offline — no tokio, no hyper — so the daemon
//! carries its own request/response code. It implements exactly what the
//! job API needs and treats every byte from the socket as hostile:
//!
//! * the request head is capped ([`Limits::max_head_bytes`]) and the body
//!   is capped *before* it is read ([`Limits::max_body_bytes`] against the
//!   declared `Content-Length`), so an oversized upload is rejected with
//!   413 without buffering it;
//! * all reads run under the socket's read timeout, so a slow-loris client
//!   that dribbles one byte a minute is cut off, not accumulated;
//! * responses are `Connection: close` — one request per connection keeps
//!   the state machine trivial and leaks nothing between clients;
//! * progress streams use `Transfer-Encoding: chunked` via
//!   [`ChunkedWriter`], one JSONL event per chunk.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Read-side limits for one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum declared (and read) body size.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 << 10,
            max_body_bytes: 1 << 20,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target with any query string stripped.
    pub path: String,
    /// Query-string `key=value` pairs, in request order (no percent
    /// decoding: the daemon's parameters are plain ASCII tokens).
    pub query: Vec<(String, String)>,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query-string value by exact name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The peer closed before sending anything (a health-checker probe, a
    /// cancelled client) — not worth a response.
    Closed,
    /// The socket read timeout expired mid-request (slow-loris defense).
    Timeout,
    /// The declared body exceeds the limit; respond 413.
    BodyTooLarge {
        /// The configured cap the declaration exceeded.
        limit: usize,
    },
    /// Anything else unparseable; respond 400.
    Malformed(String),
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read and parse one request from `stream`. The caller is responsible for
/// having set the stream's read timeout; expiry surfaces as
/// [`RecvError::Timeout`].
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, RecvError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut tmp = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(RecvError::Malformed("request head too large".to_string()));
        }
        match stream.read(&mut tmp) {
            Ok(0) if buf.is_empty() => return Err(RecvError::Closed),
            Ok(0) => return Err(RecvError::Malformed("truncated request head".to_string())),
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if is_timeout(&e) => return Err(RecvError::Timeout),
            Err(e) => return Err(RecvError::Malformed(e.to_string())),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RecvError::Malformed("request head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(RecvError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed(format!("bad version `{version}`")));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((k, v)) = line.split_once(':') else {
            return Err(RecvError::Malformed(format!("bad header line `{line}`")));
        };
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| RecvError::Malformed(format!("bad Content-Length `{v}`")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(RecvError::BodyTooLarge {
            limit: limits.max_body_bytes,
        });
    }

    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(RecvError::Malformed(
            "body longer than declared".to_string(),
        ));
    }
    while body.len() < content_length {
        match stream.read(&mut tmp) {
            Ok(0) => return Err(RecvError::Malformed("truncated body".to_string())),
            Ok(n) => body.extend_from_slice(&tmp[..n.min(content_length - body.len())]),
            Err(e) if is_timeout(&e) => return Err(RecvError::Timeout),
            Err(e) => return Err(RecvError::Malformed(e.to_string())),
        }
    }

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// Canonical reason phrase for the status codes this daemon emits.
pub fn status_reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one complete `Connection: close` response.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// One parsed response, as read by the fleet dispatch client.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes, de-chunked when the response was chunked.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy — a hostile peer cannot poison the coordinator
    /// with invalid bytes, only with wrong text, which the JSON layer then
    /// rejects).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issue one request to a peer daemon and read the complete `Connection:
/// close` response. This is the coordinator's half of the wire protocol:
/// like the server side it is hand-rolled on `std::net` (offline workspace)
/// and defensive — the peer's response is read under `timeout` per socket
/// read and de-chunked tolerantly (a truncated chunked stream yields the
/// bytes that did arrive, which is the honest signal for a peer that died
/// mid-stream).
pub fn client_call(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, String)],
    body: &[u8],
    timeout: std::time::Duration,
) -> Result<ClientResponse, String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("{addr}: connect: {e}"))?;
    let _ = s.set_read_timeout(Some(timeout));
    let _ = s.set_write_timeout(Some(timeout));
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    for (k, v) in headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    if !body.is_empty() {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    s.write_all(head.as_bytes())
        .and_then(|_| s.write_all(body))
        .map_err(|e| format!("{addr}: send: {e}"))?;

    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    loop {
        match s.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if is_timeout(&e) => return Err(format!("{addr}: read timed out")),
            // A peer that rejects mid-upload closes with bytes in flight;
            // treat the reset as end-of-stream and parse what arrived.
            Err(_) => break,
        }
    }
    let head_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| format!("{addr}: truncated response head"))?;
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| format!("{addr}: response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("{addr}: bad status line"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let mut body = buf[head_end + 4..].to_vec();
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked")
    {
        body = dechunk(&body);
    }
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Decode a chunked body; a truncated stream yields the bytes that arrived.
fn dechunk(mut b: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let Some(eol) = b.windows(2).position(|w| w == b"\r\n") else {
            return out;
        };
        let Ok(size) = std::str::from_utf8(&b[..eol])
            .map(str::trim)
            .map_err(|_| ())
            .and_then(|s| usize::from_str_radix(s, 16).map_err(|_| ()))
        else {
            return out;
        };
        if size == 0 || b.len() < eol + 2 + size {
            return out;
        }
        out.extend_from_slice(&b[eol + 2..eol + 2 + size]);
        b = b.get(eol + 2 + size + 2..).unwrap_or(&[]);
    }
}

/// An in-progress `Transfer-Encoding: chunked` response (the progress
/// stream). Dropping it without [`ChunkedWriter::finish`] leaves the
/// response truncated, which clients observe as a broken stream — the
/// honest signal for an aborted job or a daemon shutdown.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Write the response head and switch to chunked framing.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, String)],
    ) -> std::io::Result<Self> {
        let mut head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
            status_reason(status)
        );
        for (k, v) in extra_headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Write one chunk (skipped when empty: an empty chunk would terminate
    /// the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the stream cleanly.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let c = TcpStream::connect(addr).unwrap();
        let (s, _) = l.accept().unwrap();
        s.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        (c, s)
    }

    #[test]
    fn parses_a_post_with_body() {
        let (mut c, mut s) = pair();
        c.write_all(b"POST /v1/campaigns?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        let r = read_request(&mut s, &Limits::default()).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/campaigns");
        assert_eq!(r.query_param("x"), Some("1"));
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn query_strings_parse_into_pairs() {
        let (mut c, mut s) = pair();
        c.write_all(b"GET /v1/campaigns/cj-1?watch=queued&timeout_ms=250&flag HTTP/1.1\r\n\r\n")
            .unwrap();
        let r = read_request(&mut s, &Limits::default()).unwrap();
        assert_eq!(r.path, "/v1/campaigns/cj-1");
        assert_eq!(r.query_param("watch"), Some("queued"));
        assert_eq!(r.query_param("timeout_ms"), Some("250"));
        assert_eq!(r.query_param("flag"), Some(""));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn oversized_declaration_is_rejected_before_reading() {
        let (mut c, mut s) = pair();
        c.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
            .unwrap();
        let err = read_request(
            &mut s,
            &Limits {
                max_body_bytes: 1024,
                ..Limits::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, RecvError::BodyTooLarge { limit: 1024 });
    }

    #[test]
    fn slow_loris_times_out() {
        let (mut c, mut s) = pair();
        c.write_all(b"GET /healthz HT").unwrap(); // never finishes the head
        let err = read_request(&mut s, &Limits::default()).unwrap_err();
        assert_eq!(err, RecvError::Timeout);
    }

    #[test]
    fn garbage_is_malformed() {
        let (mut c, mut s) = pair();
        c.write_all(b"NONSENSE\r\n\r\n").unwrap();
        assert!(matches!(
            read_request(&mut s, &Limits::default()),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn immediate_close_is_quiet() {
        let (c, mut s) = pair();
        drop(c);
        assert_eq!(
            read_request(&mut s, &Limits::default()).unwrap_err(),
            RecvError::Closed
        );
    }
}
