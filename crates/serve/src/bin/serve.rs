//! `serve` — run the Hauberk campaign daemon.
//!
//! ```text
//! serve [--addr 127.0.0.1:7070] [--workers N] [--queue N]
//!       [--state-dir DIR] [--max-body BYTES] [--read-timeout-ms MS]
//!       [--peer HOST:PORT]... [--peers-file FILE] [--client-quota N]
//!       [--cache-entries N] [--cache-bytes BYTES]
//! ```
//!
//! Any `--peer` (repeatable) or `--peers-file` (one `host:port` per line,
//! `#` comments) makes this daemon a fleet coordinator: submissions are
//! split across the peers and merged back byte-identically (DESIGN §18).
//! `--client-quota N` caps concurrent non-terminal jobs per `client` value.
//!
//! SIGINT/SIGTERM drain in-flight jobs and flush journals before exit;
//! queued-but-unstarted jobs are canceled (and, with `--state-dir`,
//! re-queued by the next start).

use hauberk_serve::fleet::{parse_peers_file, validate_peer};
use hauberk_serve::{Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    // libc isn't in the dependency tree (offline workspace); `signal(2)` is
    // enough here — the handler only flips an AtomicBool.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--state-dir DIR] [--max-body BYTES] [--read-timeout-ms MS] \
         [--peer HOST:PORT]... [--peers-file FILE] [--client-quota N] \
         [--cache-entries N] [--cache-bytes BYTES]"
    );
    std::process::exit(2);
}

/// Every `--peer` value plus the `--peers-file` contents, validated.
fn peer_args(args: &[String]) -> Vec<String> {
    let mut peers = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--peer" {
            let Some(v) = args.get(i + 1) else {
                eprintln!("serve: --peer needs a HOST:PORT value");
                usage()
            };
            match validate_peer(v) {
                Ok(p) => peers.push(p),
                Err(e) => {
                    eprintln!("serve: {e}");
                    usage()
                }
            }
        }
    }
    if let Some(path) = arg_value(args, "--peers-file") {
        match parse_peers_file(std::path::Path::new(&path)) {
            Ok(mut p) => peers.append(&mut p),
            Err(e) => {
                eprintln!("serve: {e}");
                usage()
            }
        }
    }
    peers
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match arg_value(args, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("serve: bad value for {name}: `{v}`");
            usage()
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let mut cfg = ServerConfig {
        addr: arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string()),
        ..ServerConfig::default()
    };
    cfg.workers = parsed(&args, "--workers", cfg.workers);
    cfg.queue_capacity = parsed(&args, "--queue", cfg.queue_capacity);
    cfg.max_body_bytes = parsed(&args, "--max-body", cfg.max_body_bytes);
    cfg.read_timeout = Duration::from_millis(parsed(
        &args,
        "--read-timeout-ms",
        cfg.read_timeout.as_millis() as u64,
    ));
    cfg.state_dir = arg_value(&args, "--state-dir").map(Into::into);
    cfg.peers = peer_args(&args);
    cfg.client_quota = parsed(&args, "--client-quota", cfg.client_quota);
    cfg.cache_max_entries = parsed(&args, "--cache-entries", cfg.cache_max_entries);
    cfg.cache_max_bytes = parsed(&args, "--cache-bytes", cfg.cache_max_bytes);
    if !cfg.peers.is_empty() {
        eprintln!(
            "serve: fleet coordinator over {} peer(s): {}",
            cfg.peers.len(),
            cfg.peers.join(", ")
        );
    }

    install_signal_handlers();
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!("serve: listening on http://{addr}"),
        Err(e) => eprintln!("serve: listening (addr unavailable: {e})"),
    }

    // Bridge the async-signal flag into the server's shutdown path.
    let trigger = server.shutdown_flag();
    std::thread::spawn(move || {
        while !STOP.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("serve: shutdown requested, draining in-flight jobs");
        trigger();
    });

    server.run();
    eprintln!("serve: drained, exiting");
}
