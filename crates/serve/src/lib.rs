//! hauberk-serve: campaign-as-a-service daemon for the Hauberk stack.
//!
//! The rest of the workspace runs SWIFI campaigns as batch CLI invocations;
//! this crate wraps the same orchestrator in a long-running HTTP daemon so
//! campaigns can be submitted, watched, and collected remotely:
//!
//! * `POST /v1/campaigns` — submit a named benchmark or ad-hoc KIR kernel
//!   text plus campaign knobs; returns a job id, or 429 + `Retry-After`
//!   when the bounded queue is full (backpressure instead of collapse).
//! * `GET /v1/campaigns/:id` — cheap status/progress counters.
//! * `GET /v1/campaigns/:id/events` — live chunked JSONL stream of the
//!   campaign's telemetry events.
//! * `GET /v1/campaigns/:id/result` — the final summary document, exactly
//!   the bytes `ShardedCampaignResult::summary_json()` produced (the e2e
//!   test asserts byte-equality against an in-process run).
//! * `GET /metrics`, `GET /healthz` — operational surface.
//!
//! The workspace is offline, so the HTTP layer ([`http`]) is hand-rolled on
//! `std::net` with explicit limits everywhere: head/body caps, read/write
//! timeouts, a connection cap, and a bounded queue. Determinism contract:
//! telemetry fan-out is observation-only, so a campaign run through the
//! daemon produces a summary byte-identical to the same campaign run
//! in-process — see `DESIGN.md` §14.

pub mod http;
pub mod jobs;
pub mod server;

pub use jobs::{Job, JobPhase, JobSpec, ProgramSpec};
pub use server::{Server, ServerConfig, ServerHandle};
