//! hauberk-serve: campaign-as-a-service daemon for the Hauberk stack.
//!
//! The rest of the workspace runs SWIFI campaigns as batch CLI invocations;
//! this crate wraps the same orchestrator in a long-running HTTP daemon so
//! campaigns can be submitted, watched, and collected remotely:
//!
//! * `POST /v1/campaigns` — submit a named benchmark or ad-hoc KIR kernel
//!   text plus campaign knobs; returns a job id, or 429 + `Retry-After`
//!   when the bounded queue is full (backpressure instead of collapse).
//! * `GET /v1/campaigns/:id` — cheap status/progress counters.
//! * `GET /v1/campaigns/:id/events` — live chunked JSONL stream of the
//!   campaign's telemetry events.
//! * `GET /v1/campaigns/:id/result` — the final summary document, exactly
//!   the bytes `ShardedCampaignResult::summary_json()` produced (the e2e
//!   test asserts byte-equality against an in-process run).
//! * `DELETE /v1/campaigns/:id` — cooperative cancellation: queued jobs are
//!   dropped, running jobs stop at their next work-unit boundary, and the
//!   journal keeps what already ran.
//! * `GET /metrics`, `GET /healthz` — operational surface.
//!
//! A daemon started with `--peer` flags is a fleet *coordinator* ([`fleet`]):
//! one submission is split into per-daemon shard jobs, the shard journals
//! stream back over `/events`, and the merged result is byte-identical to a
//! single-daemon run — see `DESIGN.md` §18.
//!
//! The workspace is offline, so the HTTP layer ([`http`]) is hand-rolled on
//! `std::net` with explicit limits everywhere: head/body caps, read/write
//! timeouts, a connection cap, and a bounded queue. Determinism contract:
//! telemetry fan-out is observation-only, so a campaign run through the
//! daemon produces a summary byte-identical to the same campaign run
//! in-process — see `DESIGN.md` §14.

pub mod fleet;
pub mod http;
pub mod jobs;
pub mod server;

pub use fleet::{parse_peers_file, run_fleet_campaign, FleetEnv};
pub use jobs::{Job, JobPhase, JobSpec, Priority, ProgramSpec};
pub use server::{Server, ServerConfig, ServerHandle};
