//! Loopback end-to-end tests for the campaign daemon.
//!
//! Each test binds a real [`Server`] on an ephemeral port and drives it with
//! raw HTTP over `TcpStream` — no client library, so the bytes on the wire
//! are exactly what an external tool would send. Covered here, per the
//! acceptance criteria: result byte-identity against an in-process run,
//! deterministic 429 backpressure, 400/413/timeout hostile-input handling,
//! a genuinely panicking job, and state-directory recovery across restarts.

use hauberk_serve::jobs::JobSpec;
use hauberk_serve::{Server, ServerConfig, ServerHandle};
use hauberk_swifi::orchestrator::run_orchestrated_campaign;
use hauberk_telemetry::json::parse;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A small, fast campaign (sub-second in release) used throughout.
const SMALL_CAMPAIGN: &str = r#"{"program":"CP","vars":6,"masks":8,"bit_counts":[1]}"#;

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    fn json_field(&self, key: &str) -> String {
        let doc =
            parse(&self.body).unwrap_or_else(|e| panic!("bad JSON body {:?}: {e}", self.body));
        doc.get(key)
            .and_then(|v| v.as_str().map(String::from))
            .unwrap_or_else(|| panic!("no `{key}` in {}", self.body))
    }
}

/// Send `raw` and read the full `Connection: close` response.
fn raw_request(addr: SocketAddr, raw: &[u8]) -> Response {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    // Write and read are best-effort: a server that rejects mid-upload (413)
    // closes while bytes are still in flight, which surfaces as EPIPE/RST on
    // this side even though a complete response was sent first.
    let _ = s.write_all(raw);
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    loop {
        match s.read(&mut tmp) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
        }
    }
    parse_response(&buf)
}

fn parse_response(buf: &[u8]) -> Response {
    let head_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response head");
    let head = std::str::from_utf8(&buf[..head_end]).unwrap();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split(' ')
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let mut body = buf[head_end + 4..].to_vec();
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked")
    {
        body = dechunk(&body);
    }
    Response {
        status,
        headers,
        body: String::from_utf8_lossy(&body).into_owned(),
    }
}

/// Decode a chunked body (sizes are hex, one chunk per line).
fn dechunk(mut b: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let Some(eol) = b.windows(2).position(|w| w == b"\r\n") else {
            return out; // truncated stream: return what arrived
        };
        let size = usize::from_str_radix(std::str::from_utf8(&b[..eol]).unwrap().trim(), 16)
            .expect("chunk size");
        if size == 0 {
            return out;
        }
        out.extend_from_slice(&b[eol + 2..eol + 2 + size]);
        b = &b[eol + 2 + size + 2..];
    }
}

fn get(addr: SocketAddr, path: &str) -> Response {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    raw_request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn spawn(cfg: ServerConfig) -> (ServerHandle, SocketAddr) {
    let handle = Server::bind(cfg).unwrap().spawn().unwrap();
    let addr = handle.addr();
    (handle, addr)
}

/// Poll status until the job reaches a terminal phase.
fn wait_terminal(addr: SocketAddr, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let st = get(addr, &format!("/v1/campaigns/{id}"));
        assert_eq!(st.status, 200, "{}", st.body);
        let state = st.json_field("state");
        if ["done", "failed", "canceled"].contains(&state.as_str()) {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} stuck: {}", st.body);
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hauberk-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn submitted_campaign_matches_in_process_run_byte_for_byte() {
    let (handle, addr) = spawn(ServerConfig::default());

    assert_eq!(get(addr, "/healthz").status, 200);
    let sub = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let id = sub.json_field("id");
    assert_eq!(wait_terminal(addr, &id), "done");

    let res = get(addr, &format!("/v1/campaigns/{id}/result"));
    assert_eq!(res.status, 200, "{}", res.body);

    // The same spec, run in-process through the same orchestrator entry
    // point, must serialize to the identical bytes: the daemon adds
    // observation, never perturbation.
    let spec = JobSpec::from_json(&parse(SMALL_CAMPAIGN).unwrap()).unwrap();
    let prog = spec.build_program().unwrap();
    let local = run_orchestrated_campaign(
        prog.as_ref(),
        spec.campaign_kind(),
        &spec.campaign_config(),
        &spec.orchestrator_config(),
    )
    .unwrap();
    assert_eq!(res.body, local.summary_json().to_string());

    // The event stream replays the whole campaign log and terminates.
    let ev = get(addr, &format!("/v1/campaigns/{id}/events"));
    assert_eq!(ev.status, 200);
    assert!(ev.body.contains("\"ev\":\"job_state\""), "{}", ev.body);
    assert!(ev.body.contains("campaign_started"), "{}", ev.body);
    assert!(ev.body.lines().last().unwrap().contains("done"));

    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("\"jobs_done\":1"), "{}", metrics.body);

    handle.shutdown();
}

#[test]
fn hardened_coverage_job_runs_selectively_and_matches_in_process() {
    let (handle, addr) = spawn(ServerConfig::default());

    // A coverage campaign under a selective placement (one NL variable, one
    // loop detector with its trip check) — the `"hardening"` field carries a
    // `HardeningPlan`'s `selection` object verbatim.
    let base = r#""program":"CP","kind":"coverage","vars":6,"masks":8,"bit_counts":[1]"#;
    let hardened_spec = format!(
        r#"{{{base},"hardening":{{"nonloop_vars":["xidx"],"loop_detectors":[{{"loop":0,"var":"energyx2"}}],"trip_checks":[0]}}}}"#
    );
    let sub = post(addr, "/v1/campaigns", &hardened_spec);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let id = sub.json_field("id");
    assert_eq!(wait_terminal(addr, &id), "done");
    let res = get(addr, &format!("/v1/campaigns/{id}/result"));
    assert_eq!(res.status, 200, "{}", res.body);

    // Byte-identical to the same hardened spec run in-process.
    let spec = JobSpec::from_json(&parse(&hardened_spec).unwrap()).unwrap();
    let prog = spec.build_program().unwrap();
    let local = run_orchestrated_campaign(
        prog.as_ref(),
        spec.campaign_kind(),
        &spec.campaign_config(),
        &spec.orchestrator_config(),
    )
    .unwrap();
    assert_eq!(res.body, local.summary_json().to_string());

    // The placement is load-bearing: full protection (no `hardening`)
    // produces a different result document for the same campaign identity.
    let full_spec = format!("{{{base}}}");
    let sub2 = post(addr, "/v1/campaigns", &full_spec);
    assert_eq!(sub2.status, 201, "{}", sub2.body);
    let id2 = sub2.json_field("id");
    assert_eq!(wait_terminal(addr, &id2), "done");
    let res2 = get(addr, &format!("/v1/campaigns/{id2}/result"));
    assert_ne!(
        res.body, res2.body,
        "selective placement must change measured coverage"
    );

    handle.shutdown();
}

#[test]
fn trace_id_follows_the_job_and_spans_form_a_single_tree() {
    let (handle, addr) = spawn(ServerConfig::default());

    // Every response carries X-Hauberk-Trace; probes are uncacheable.
    let h = get(addr, "/healthz");
    assert_eq!(h.status, 200);
    assert!(
        h.header("x-hauberk-trace")
            .is_some_and(|t| t.starts_with("ht-")),
        "{:?}",
        h.headers
    );
    assert_eq!(h.header("cache-control"), Some("no-store"));
    let health = parse(&h.body).unwrap();
    assert_eq!(
        health.get("version").and_then(|v| v.as_str()),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(health.get("uptime_secs").and_then(|v| v.as_u64()).is_some());
    assert!(health.get("workers").and_then(|v| v.as_u64()).is_some());
    assert!(health
        .get("queue_capacity")
        .and_then(|v| v.as_u64())
        .is_some());

    // A client-pinned trace id is echoed verbatim on the response header.
    let pinned = raw_request(
        addr,
        b"GET /healthz HTTP/1.1\r\nHost: t\r\nX-Hauberk-Trace: ht-pinned-42\r\n\r\n",
    );
    assert_eq!(pinned.header("x-hauberk-trace"), Some("ht-pinned-42"));

    // Submit: the request's trace id lands in the job spec and on the 201.
    let sub = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let trace = sub.header("x-hauberk-trace").unwrap().to_string();
    assert_eq!(sub.json_field("trace"), trace);
    let id = sub.json_field("id");
    assert_eq!(wait_terminal(addr, &id), "done");

    // Rebuild the span tree from the job's event log.
    let ev = get(addr, &format!("/v1/campaigns/{id}/events"));
    assert_eq!(ev.status, 200);
    assert!(ev.header("x-hauberk-trace").is_some());
    struct Span {
        name: String,
        id: u64,
        parent: u64,
        trace: Option<String>,
    }
    let spans: Vec<Span> = ev
        .body
        .lines()
        .filter_map(|l| parse(l).ok())
        .filter(|j| j.get("ev").and_then(|e| e.as_str()) == Some("span"))
        .map(|j| Span {
            name: j.get("name").and_then(|v| v.as_str()).unwrap().to_string(),
            id: j.get("id").and_then(|v| v.as_u64()).unwrap(),
            parent: j.get("parent").and_then(|v| v.as_u64()).unwrap(),
            trace: j.get("trace").and_then(|v| v.as_str()).map(String::from),
        })
        .collect();

    // Exactly one root: the campaign span, stamped with the request trace.
    let roots: Vec<&Span> = spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "one rooted tree per campaign");
    assert_eq!(roots[0].name, "campaign");
    assert_eq!(roots[0].trace.as_deref(), Some(trace.as_str()));

    // Every non-root span's parent id is another recorded span.
    let by_id: std::collections::BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    assert_eq!(by_id.len(), spans.len(), "span ids are unique");
    for s in spans.iter().filter(|s| s.parent != 0) {
        assert!(
            by_id.contains_key(&s.parent),
            "span {} has unknown parent {}",
            s.name,
            s.parent
        );
    }

    // The hierarchy is campaign → stratum → unit → launch, end to end.
    let launch = spans
        .iter()
        .find(|s| s.name == "launch")
        .expect("launch spans recorded");
    let unit = by_id[&launch.parent];
    assert_eq!(unit.name, "unit");
    let stratum = by_id[&unit.parent];
    assert_eq!(stratum.name, "stratum");
    let campaign = by_id[&stratum.parent];
    assert_eq!(campaign.name, "campaign");
    assert_eq!(campaign.id, roots[0].id);
    for name in ["plan", "stratum", "unit", "launch"] {
        assert!(spans.iter().any(|s| s.name == name), "missing {name} spans");
    }

    handle.shutdown();
}

#[test]
fn prometheus_exposition_is_served_on_accept_text_plain() {
    let (handle, addr) = spawn(ServerConfig::default());
    let sub = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(sub.status, 201, "{}", sub.body);
    assert_eq!(wait_terminal(addr, &sub.json_field("id")), "done");

    // Default stays JSON (existing dashboards keep working).
    let json = get(addr, "/metrics");
    assert_eq!(json.header("content-type"), Some("application/json"));
    assert_eq!(json.header("cache-control"), Some("no-store"));
    assert!(json.body.contains("\"jobs_done\":1"), "{}", json.body);

    // Accept: text/plain → Prometheus 0.0.4 exposition.
    let prom = raw_request(
        addr,
        b"GET /metrics HTTP/1.1\r\nHost: t\r\nAccept: text/plain\r\n\r\n",
    );
    assert_eq!(prom.status, 200);
    assert!(
        prom.header("content-type")
            .is_some_and(|t| t.starts_with("text/plain")),
        "{:?}",
        prom.headers
    );
    assert_eq!(prom.header("cache-control"), Some("no-store"));
    let body = &prom.body;
    assert!(body.contains("jobs_done_total 1"), "{body}");
    assert!(body.contains("# TYPE queue_depth gauge"), "{body}");
    assert!(body.contains("queue_capacity "), "{body}");
    assert!(body.contains("busy_workers "), "{body}");
    assert!(body.contains("uptime_seconds "), "{body}");
    assert!(body.contains("jobs_phase_done 1"), "{body}");
    // Per-endpoint HTTP latency histograms with a terminating +Inf bucket.
    assert!(
        body.contains("# TYPE http_latency_us_submit histogram"),
        "{body}"
    );
    assert!(
        body.contains("http_latency_us_submit_bucket{le=\"+Inf\"}"),
        "{body}"
    );
    assert!(body.contains("http_latency_us_submit_count 1"), "{body}");

    handle.shutdown();
}

#[test]
fn kir_kernel_submission_runs_a_campaign() {
    let (handle, addr) = spawn(ServerConfig::default());
    let body = r#"{"kernel":"kernel scale(out: *global f32, x: *global f32, n: i32) {
        let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
        if (tid < n) { store(out, tid, load(x, tid) * 2.0); }
    }","launch":{"blocks":2,"threads":16,"elems":32},"vars":4,"masks":4,"bit_counts":[1]}"#
        .replace('\n', " ");
    let sub = post(addr, "/v1/campaigns", &body);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let id = sub.json_field("id");
    assert_eq!(wait_terminal(addr, &id), "done");
    let res = get(addr, &format!("/v1/campaigns/{id}/result"));
    assert_eq!(res.status, 200);
    let doc = parse(&res.body).unwrap();
    assert!(doc.get("campaign").is_some(), "{}", res.body);
    handle.shutdown();
}

#[test]
fn queue_overflow_returns_deterministic_429_with_retry_after() {
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        start_paused: true, // nothing drains until we say so
        retry_after_secs: 7,
        ..ServerConfig::default()
    });

    let a = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    let b = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!((a.status, b.status), (201, 201));
    // Queue full: every further submission is 429 + Retry-After, exactly.
    for _ in 0..3 {
        let r = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
        assert_eq!(r.status, 429, "{}", r.body);
        assert_eq!(r.header("retry-after"), Some("7"));
        assert!(r.body.contains("queue is full"), "{}", r.body);
    }
    // Rejected submissions consume no ids and leave no ghost jobs.
    let metrics = get(addr, "/metrics");
    assert!(
        metrics.body.contains("\"submit_backpressured\":3"),
        "{}",
        metrics.body
    );

    // Released, the queue drains and capacity frees up again.
    handle.resume();
    assert_eq!(wait_terminal(addr, &a.json_field("id")), "done");
    assert_eq!(wait_terminal(addr, &b.json_field("id")), "done");
    let c = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(c.status, 201, "{}", c.body);
    assert_eq!(wait_terminal(addr, &c.json_field("id")), "done");
    handle.shutdown();
}

#[test]
fn hostile_requests_get_structured_errors_and_the_daemon_keeps_serving() {
    let (handle, addr) = spawn(ServerConfig {
        max_body_bytes: 4096,
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });

    // Malformed JSON → 400 with a parse message.
    let r = post(addr, "/v1/campaigns", "{not json");
    assert_eq!(r.status, 400);
    assert!(r.body.contains("invalid JSON"), "{}", r.body);

    // Well-formed JSON, bad spec → 400 naming the field.
    let r = post(addr, "/v1/campaigns", r#"{"program":"CP","bogus":1}"#);
    assert_eq!(r.status, 400);
    assert!(r.body.contains("unknown field `bogus`"), "{}", r.body);

    // Malformed kernel → 400 carrying the parse error, not a worker panic.
    let r = post(addr, "/v1/campaigns", r#"{"kernel":"kernel broken {"}"#);
    assert_eq!(r.status, 400);
    assert!(r.body.contains("parse error"), "{}", r.body);

    // Oversized body → 413 from the declared length alone; the server never
    // waits for (or buffers) the payload.
    let r = raw_request(
        addr,
        b"POST /v1/campaigns HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999\r\n\r\n",
    );
    assert_eq!(r.status, 413);
    assert!(r.body.contains("byte limit"), "{}", r.body);

    // Slow-loris: a head that never finishes is timed out, not accumulated.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"POST /v1/campaigns HT").unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    assert_eq!(parse_response(&buf).status, 408);

    // Unknown routes and methods.
    assert_eq!(get(addr, "/v1/campaigns/cj-999").status, 404);
    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(
        raw_request(addr, b"DELETE /healthz HTTP/1.1\r\nHost: t\r\n\r\n").status,
        405
    );

    // After all of that, the daemon still takes real work.
    assert_eq!(get(addr, "/healthz").status, 200);
    let sub = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(sub.status, 201, "{}", sub.body);
    assert_eq!(wait_terminal(addr, &sub.json_field("id")), "done");
    handle.shutdown();
}

#[test]
fn panicking_job_is_quarantined_and_the_daemon_survives() {
    let (handle, addr) = spawn(ServerConfig::default());

    // Sabotage one work unit so it panics on every attempt: the retry →
    // quarantine path must absorb it and still complete the campaign.
    let body = r#"{"program":"CP","vars":6,"masks":8,"bit_counts":[1],"max_retries":1,
        "chaos":{"stratum":"FPU/floating-point","chunk":0,"fail_attempts":99,"panics":true}}"#;
    let sub = post(addr, "/v1/campaigns", body);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let id = sub.json_field("id");
    assert_eq!(wait_terminal(addr, &id), "done");

    let res = get(addr, &format!("/v1/campaigns/{id}/result"));
    assert_eq!(res.status, 200);
    assert!(
        res.body.contains("injected work-unit panic"),
        "quarantine record carries the panic message: {}",
        res.body
    );

    // The worker thread outlived the panic: a clean follow-up job runs fine.
    let sub = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(sub.status, 201, "{}", sub.body);
    assert_eq!(wait_terminal(addr, &sub.json_field("id")), "done");
    handle.shutdown();
}

#[test]
fn state_dir_recovers_results_and_requeues_unstarted_jobs() {
    let dir = tmp_dir("recovery");

    // First daemon: finish one job, leave a second queued (workers paused),
    // then shut down.
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let sub = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let done_id = sub.json_field("id");
    assert_eq!(wait_terminal(addr, &done_id), "done");
    let first_result = get(addr, &format!("/v1/campaigns/{done_id}/result")).body;
    handle.shutdown();

    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        start_paused: true,
        ..ServerConfig::default()
    });
    // The finished job is served from disk, without re-running (workers are
    // paused, so a re-run could never have produced this).
    let res = get(addr, &format!("/v1/campaigns/{done_id}/result"));
    assert_eq!(res.status, 200);
    assert_eq!(
        res.body, first_result,
        "recovered bytes are the persisted bytes"
    );

    // Queue a job the paused pool never starts; shutdown cancels it but its
    // spec persists.
    let sub = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let queued_id = sub.json_field("id");
    handle.shutdown();

    // Third daemon: the canceled job is re-queued and runs to completion.
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    assert_eq!(wait_terminal(addr, &queued_id), "done");
    let res = get(addr, &format!("/v1/campaigns/{queued_id}/result"));
    assert_eq!(res.status, 200);
    assert_eq!(
        res.body, first_result,
        "same spec, same bytes, restart or not"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
