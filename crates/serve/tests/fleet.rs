//! Loopback end-to-end tests for the fleet fabric: coordinator + worker
//! daemons on ephemeral ports, driven with raw HTTP like `e2e.rs`.
//!
//! Covered, per the acceptance criteria: the merged fleet result is
//! byte-identical to a single-daemon run, a worker killed mid-campaign is
//! survived by re-dispatch with an identical result, a cache hit answers
//! from storage without re-execution, cancellation semantics with
//! `Cache-Control: no-store`, status long-polling, priority lanes, client
//! quotas, and `Retry-After` coherence through the coordinator.

use hauberk_serve::jobs::JobSpec;
use hauberk_serve::{Server, ServerConfig, ServerHandle};
use hauberk_swifi::orchestrator::run_orchestrated_campaign;
use hauberk_telemetry::json::parse;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A small, fast campaign (sub-second in release) used throughout.
const SMALL_CAMPAIGN: &str = r#"{"program":"CP","vars":6,"masks":8,"bit_counts":[1]}"#;

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    fn json_field(&self, key: &str) -> String {
        let doc =
            parse(&self.body).unwrap_or_else(|e| panic!("bad JSON body {:?}: {e}", self.body));
        doc.get(key)
            .and_then(|v| v.as_str().map(String::from))
            .unwrap_or_else(|| panic!("no `{key}` in {}", self.body))
    }
}

fn raw_request(addr: SocketAddr, raw: &[u8]) -> Response {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let _ = s.write_all(raw);
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    loop {
        match s.read(&mut tmp) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
        }
    }
    parse_response(&buf)
}

fn parse_response(buf: &[u8]) -> Response {
    let head_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response head");
    let head = std::str::from_utf8(&buf[..head_end]).unwrap();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split(' ')
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let mut body = buf[head_end + 4..].to_vec();
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked")
    {
        body = dechunk(&body);
    }
    Response {
        status,
        headers,
        body: String::from_utf8_lossy(&body).into_owned(),
    }
}

fn dechunk(mut b: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let Some(eol) = b.windows(2).position(|w| w == b"\r\n") else {
            return out;
        };
        let size = usize::from_str_radix(std::str::from_utf8(&b[..eol]).unwrap().trim(), 16)
            .expect("chunk size");
        if size == 0 {
            return out;
        }
        out.extend_from_slice(&b[eol + 2..eol + 2 + size]);
        b = &b[eol + 2 + size + 2..];
    }
}

fn get(addr: SocketAddr, path: &str) -> Response {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    raw_request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn delete(addr: SocketAddr, path: &str) -> Response {
    raw_request(
        addr,
        format!("DELETE {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn spawn(cfg: ServerConfig) -> (ServerHandle, SocketAddr) {
    let handle = Server::bind(cfg).unwrap().spawn().unwrap();
    let addr = handle.addr();
    (handle, addr)
}

/// A worker daemon: plain config, no peers.
fn spawn_worker() -> (ServerHandle, SocketAddr) {
    spawn(ServerConfig::default())
}

/// A coordinator over `peers`.
fn coordinator_cfg(peers: &[SocketAddr]) -> ServerConfig {
    ServerConfig {
        peers: peers.iter().map(|a| a.to_string()).collect(),
        ..ServerConfig::default()
    }
}

fn wait_terminal(addr: SocketAddr, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let st = get(addr, &format!("/v1/campaigns/{id}"));
        assert_eq!(st.status, 200, "{}", st.body);
        let state = st.json_field("state");
        if ["done", "failed", "canceled"].contains(&state.as_str()) {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} stuck: {}", st.body);
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The same spec run in-process: the byte-identity reference.
fn in_process_summary(spec_json: &str) -> String {
    let spec = JobSpec::from_json(&parse(spec_json).unwrap()).unwrap();
    let prog = spec.build_program().unwrap();
    run_orchestrated_campaign(
        prog.as_ref(),
        spec.campaign_kind(),
        &spec.campaign_config(),
        &spec.orchestrator_config(),
    )
    .unwrap()
    .summary_json()
    .to_string()
}

/// Read one metric counter out of a daemon's JSON `/metrics` document.
fn metric(addr: SocketAddr, name: &str) -> u64 {
    let m = get(addr, "/metrics");
    assert_eq!(m.status, 200);
    parse(&m.body)
        .unwrap()
        .get("metrics")
        .and_then(|ms| ms.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

#[test]
fn fleet_merge_is_byte_identical_and_cache_answers_without_rerun() {
    let (wa, wa_addr) = spawn_worker();
    let (wb, wb_addr) = spawn_worker();
    let (coord, addr) = spawn(coordinator_cfg(&[wa_addr, wb_addr]));

    // Coordinator advertises its fleet on the operational surface.
    let h = get(addr, "/healthz");
    assert_eq!(h.status, 200);
    assert!(h.body.contains("\"peers\":2"), "{}", h.body);

    // One submission, three-way sharded, merged back byte-identically.
    let cached_spec = r#"{"program":"CP","vars":6,"masks":8,"bit_counts":[1],"cache":true}"#;
    let sub = post(addr, "/v1/campaigns", cached_spec);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let id = sub.json_field("id");
    assert_eq!(wait_terminal(addr, &id), "done");
    let res = get(addr, &format!("/v1/campaigns/{id}/result"));
    assert_eq!(res.status, 200, "{}", res.body);
    assert_eq!(
        res.body,
        in_process_summary(SMALL_CAMPAIGN),
        "fleet merge must reproduce the single-daemon bytes"
    );

    // Both workers actually executed shards (shard 0 ran on the coordinator).
    assert_eq!(metric(wa_addr, "jobs_done"), 1, "worker A ran a shard");
    assert_eq!(metric(wb_addr, "jobs_done"), 1, "worker B ran a shard");
    let ev = get(addr, &format!("/v1/campaigns/{id}/events"));
    assert!(
        ev.body.contains("\"ev\":\"shard_dispatched\""),
        "{}",
        ev.body
    );

    // Identical resubmission: answered from the content-addressed cache —
    // instantly done, marked `cached`, no new work on any daemon.
    let hit = post(addr, "/v1/campaigns", cached_spec);
    assert_eq!(hit.status, 201, "{}", hit.body);
    assert_eq!(hit.json_field("state"), "done");
    assert!(hit.body.contains("\"cached\":true"), "{}", hit.body);
    let hit_id = hit.json_field("id");
    let hit_res = get(addr, &format!("/v1/campaigns/{hit_id}/result"));
    assert_eq!(hit_res.body, res.body, "cache serves the stored bytes");
    assert_eq!(metric(addr, "cache_hits"), 1);
    assert_eq!(metric(wa_addr, "jobs_done"), 1, "no re-execution on A");
    assert_eq!(metric(wb_addr, "jobs_done"), 1, "no re-execution on B");

    // A spec differing only in observational fields still hits.
    let dressed = r#"{"program":"CP","vars":6,"masks":8,"bit_counts":[1],"cache":true,
                      "priority":"low","client":"alice"}"#;
    let hit2 = post(addr, "/v1/campaigns", dressed);
    assert_eq!(hit2.status, 201, "{}", hit2.body);
    assert!(hit2.body.contains("\"cached\":true"), "{}", hit2.body);

    coord.shutdown();
    wa.shutdown();
    wb.shutdown();
}

#[test]
fn fleet_survives_a_worker_killed_mid_campaign() {
    // Worker A accepts its shard but never runs it (paused); killing A
    // forces the coordinator down the re-dispatch path to B / local.
    let (wa, wa_addr) = spawn(ServerConfig {
        start_paused: true,
        ..ServerConfig::default()
    });
    let (wb, wb_addr) = spawn_worker();
    let (coord, addr) = spawn(coordinator_cfg(&[wa_addr, wb_addr]));

    let sub = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let id = sub.json_field("id");

    // Wait until A has actually been handed a shard, then kill it.
    let deadline = Instant::now() + Duration::from_secs(30);
    while metric(wa_addr, "submit_accepted") == 0 {
        assert!(Instant::now() < deadline, "shard never reached worker A");
        std::thread::sleep(Duration::from_millis(10));
    }
    wa.shutdown();

    assert_eq!(wait_terminal(addr, &id), "done");
    let res = get(addr, &format!("/v1/campaigns/{id}/result"));
    assert_eq!(
        res.body,
        in_process_summary(SMALL_CAMPAIGN),
        "re-dispatched fleet result must still be byte-identical"
    );
    let ev = get(addr, &format!("/v1/campaigns/{id}/events"));
    assert!(
        ev.body.contains("\"ev\":\"shard_redispatched\""),
        "the failover must be visible in the event log: {}",
        ev.body
    );

    coord.shutdown();
    wb.shutdown();
}

#[test]
fn tiny_campaign_runs_coordinator_only() {
    let (wa, wa_addr) = spawn_worker();
    let (coord, addr) = spawn(coordinator_cfg(&[wa_addr]));

    // 2 vars × 4 masks plans ~9 injections — under MIN_UNITS_PER_SHARD,
    // so the size-aware split degenerates to one local shard and the peer
    // is never bothered.
    let tiny = r#"{"program":"CP","vars":2,"masks":4,"bit_counts":[1]}"#;
    let sub = post(addr, "/v1/campaigns", tiny);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let id = sub.json_field("id");
    assert_eq!(wait_terminal(addr, &id), "done");
    let res = get(addr, &format!("/v1/campaigns/{id}/result"));
    assert_eq!(
        res.body,
        in_process_summary(tiny),
        "coordinator-only fleet run must match the in-process bytes"
    );
    assert_eq!(
        metric(wa_addr, "submit_accepted"),
        0,
        "no shard may reach the worker for a sub-threshold campaign"
    );

    coord.shutdown();
    wa.shutdown();
}

#[test]
fn dead_peer_is_skipped_by_the_health_probe() {
    let (wa, wa_addr) = spawn_worker();
    let (wb, wb_addr) = spawn_worker();
    // Kill B before the coordinator ever dispatches: its address stays in
    // the peer list but `/healthz` no longer answers.
    wb.shutdown();
    let (coord, addr) = spawn(coordinator_cfg(&[wa_addr, wb_addr]));

    let sub = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let id = sub.json_field("id");
    assert_eq!(wait_terminal(addr, &id), "done");
    let res = get(addr, &format!("/v1/campaigns/{id}/result"));
    assert_eq!(
        res.body,
        in_process_summary(SMALL_CAMPAIGN),
        "losing a peer must not perturb the merged bytes"
    );

    // The dead peer was skipped by the probe — visible as telemetry and a
    // counter — and its shard ran elsewhere without a submit-and-fail cycle.
    assert!(metric(addr, "fleet_shards_skipped_unhealthy") >= 1);
    assert_eq!(metric(addr, "fleet_shard_redispatches"), 0);
    let ev = get(addr, &format!("/v1/campaigns/{id}/events"));
    assert!(
        ev.body.contains("\"ev\":\"shard_skipped_unhealthy\""),
        "the probe skip must be visible in the event log: {}",
        ev.body
    );

    coord.shutdown();
    wa.shutdown();
}

#[test]
fn delete_cancels_with_no_store_and_the_worker_skips_the_corpse() {
    let (handle, addr) = spawn(ServerConfig {
        start_paused: true,
        workers: 1,
        ..ServerConfig::default()
    });

    let sub = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let id = sub.json_field("id");

    // Queued job: DELETE cancels immediately with 202 + no-store.
    let del = delete(addr, &format!("/v1/campaigns/{id}"));
    assert_eq!(del.status, 202, "{}", del.body);
    assert_eq!(del.header("cache-control"), Some("no-store"));
    assert_eq!(del.json_field("state"), "canceled");

    // A second DELETE is idempotent: 200, still no-store.
    let again = delete(addr, &format!("/v1/campaigns/{id}"));
    assert_eq!(again.status, 200, "{}", again.body);
    assert_eq!(again.header("cache-control"), Some("no-store"));

    // DELETE on a missing id is a 404; on /healthz still 405.
    assert_eq!(delete(addr, "/v1/campaigns/cj-999").status, 404);
    assert_eq!(delete(addr, "/healthz").status, 405);

    // The canceled job must not be executed: resume the pool, run another
    // job to completion, and check exactly one job ever ran.
    handle.resume();
    let sub2 = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    let id2 = sub2.json_field("id");
    assert_eq!(wait_terminal(addr, &id2), "done");
    assert_eq!(metric(addr, "jobs_started"), 1, "corpse was skipped");
    assert_eq!(wait_terminal(addr, &id), "canceled");

    handle.shutdown();
}

#[test]
fn status_long_poll_defers_until_phase_change() {
    let (handle, addr) = spawn(ServerConfig {
        start_paused: true,
        ..ServerConfig::default()
    });
    let sub = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    let id = sub.json_field("id");

    // Phase doesn't change: the poll holds for the full timeout.
    let t0 = Instant::now();
    let st = get(
        addr,
        &format!("/v1/campaigns/{id}?watch=queued&timeout_ms=300"),
    );
    assert_eq!(st.status, 200);
    assert_eq!(st.json_field("state"), "queued");
    assert_eq!(st.header("cache-control"), Some("no-store"));
    assert!(
        t0.elapsed() >= Duration::from_millis(250),
        "long-poll returned in {:?}, before its timeout",
        t0.elapsed()
    );

    // Phase changes mid-poll: the response arrives without the full wait.
    let t1 = Instant::now();
    let poller = std::thread::spawn({
        let path = format!("/v1/campaigns/{id}?watch=queued&timeout_ms=20000");
        move || get(addr, &path)
    });
    std::thread::sleep(Duration::from_millis(50));
    handle.resume();
    let st = poller.join().unwrap();
    assert_eq!(st.status, 200);
    assert_ne!(st.json_field("state"), "queued", "{}", st.body);
    assert!(
        t1.elapsed() < Duration::from_secs(20),
        "woke before timeout"
    );

    // A bad watch label is a structured 400.
    let bad = get(addr, &format!("/v1/campaigns/{id}?watch=sideways"));
    assert_eq!(bad.status, 400, "{}", bad.body);

    let _ = wait_terminal(addr, &id);
    handle.shutdown();
}

#[test]
fn high_priority_lane_overtakes_queued_batch_jobs() {
    let (handle, addr) = spawn(ServerConfig {
        start_paused: true,
        workers: 1,
        ..ServerConfig::default()
    });

    // Three batch jobs enqueued first, then one interactive job.
    let low = r#"{"program":"CP","vars":6,"masks":8,"bit_counts":[1],"priority":"low","seed":1}"#;
    let low_id = post(addr, "/v1/campaigns", low).json_field("id");
    for seed in 2..4 {
        let body = low.replace("\"seed\":1", &format!("\"seed\":{seed}"));
        assert_eq!(post(addr, "/v1/campaigns", &body).status, 201);
    }
    let high = r#"{"program":"CP","vars":6,"masks":8,"bit_counts":[1],"priority":"high"}"#;
    let high_id = post(addr, "/v1/campaigns", high).json_field("id");

    handle.resume();
    // The first job to leave "queued" must be the high-priority one, even
    // though it was submitted last.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let high_state = get(addr, &format!("/v1/campaigns/{high_id}")).json_field("state");
        let low_state = get(addr, &format!("/v1/campaigns/{low_id}")).json_field("state");
        if high_state != "queued" {
            assert_eq!(
                low_state, "queued",
                "high lane must drain before the first low job starts"
            );
            break;
        }
        assert_eq!(low_state, "queued", "low job overtook the high lane");
        assert!(Instant::now() < deadline, "nothing ever started");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(wait_terminal(addr, &high_id), "done");
    handle.shutdown();
}

#[test]
fn client_quota_bounds_admissions_per_identity() {
    let (handle, addr) = spawn(ServerConfig {
        start_paused: true,
        client_quota: 1,
        ..ServerConfig::default()
    });
    let alice = r#"{"program":"CP","vars":6,"masks":8,"bit_counts":[1],"client":"alice"}"#;
    assert_eq!(post(addr, "/v1/campaigns", alice).status, 201);
    let over = post(addr, "/v1/campaigns", alice);
    assert_eq!(over.status, 429, "{}", over.body);
    assert!(over.header("retry-after").is_some(), "{:?}", over.headers);
    assert!(over.body.contains("client quota"), "{}", over.body);

    // A different identity (and the anonymous bucket) are unaffected.
    let bob = alice.replace("alice", "bob");
    assert_eq!(post(addr, "/v1/campaigns", &bob).status, 201);
    assert_eq!(post(addr, "/v1/campaigns", SMALL_CAMPAIGN).status, 201);

    handle.shutdown();
}

#[test]
fn worker_retry_after_propagates_through_the_coordinator() {
    // A worker that always backpressures with a 9-second horizon.
    let (worker, w_addr) = spawn(ServerConfig {
        queue_capacity: 0,
        retry_after_secs: 9,
        ..ServerConfig::default()
    });
    // Coordinator with a shorter native horizon and a 1-slot queue.
    let (coord, addr) = spawn(ServerConfig {
        queue_capacity: 1,
        retry_after_secs: 2,
        workers: 1,
        peers: vec![w_addr.to_string()],
        ..ServerConfig::default()
    });

    // The fleet campaign still completes: every shard the worker refuses
    // falls back to local execution on the coordinator.
    let sub = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(sub.status, 201, "{}", sub.body);
    let id = sub.json_field("id");
    assert_eq!(wait_terminal(addr, &id), "done");
    let res = get(addr, &format!("/v1/campaigns/{id}/result"));
    assert_eq!(res.body, in_process_summary(SMALL_CAMPAIGN));
    assert!(metric(addr, "fleet_local_fallbacks") >= 1);

    // The coordinator has now learned the fleet's horizon: its own 429s
    // advertise the worker's 9 seconds, not its native 2.
    coord.pause();
    assert_eq!(post(addr, "/v1/campaigns", SMALL_CAMPAIGN).status, 201);
    let full = post(addr, "/v1/campaigns", SMALL_CAMPAIGN);
    assert_eq!(full.status, 429, "{}", full.body);
    assert_eq!(full.header("retry-after"), Some("9"), "{:?}", full.headers);

    coord.shutdown();
    worker.shutdown();
}
