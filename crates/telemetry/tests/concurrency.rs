//! Sinks and the metrics registry are shared across rayon workers during
//! SWIFI campaigns; hammer them from many threads and check nothing is
//! lost or torn.

use hauberk_telemetry::metrics::Registry;
use hauberk_telemetry::{Event, MemorySink, Telemetry};
use rayon::prelude::*;
use std::sync::Arc;

const THREADS: u64 = 64;
const EVENTS_PER_THREAD: u64 = 100;

#[test]
fn memory_sink_keeps_every_event_under_contention() {
    let sink = Arc::new(MemorySink::unbounded());
    let tele = Telemetry::new(sink.clone());

    let ids: Vec<u64> = (0..THREADS).collect();
    ids.par_iter().for_each(|&t| {
        for i in 0..EVENTS_PER_THREAD {
            tele.emit(&Event::InjectionRun {
                index: t * EVENTS_PER_THREAD + i,
                outcome: "masked".to_string(),
                delivered: true,
                latency: Some(i),
            });
        }
    });

    assert_eq!(sink.dropped(), 0);
    assert_eq!(sink.count("injection_run"), THREADS * EVENTS_PER_THREAD);
    // Every (thread, i) pair must appear exactly once.
    let mut seen: Vec<u64> = sink
        .events()
        .iter()
        .map(|e| match e {
            Event::InjectionRun { index, .. } => *index,
            other => panic!("unexpected event {other:?}"),
        })
        .collect();
    seen.sort_unstable();
    let expect: Vec<u64> = (0..THREADS * EVENTS_PER_THREAD).collect();
    assert_eq!(seen, expect);
}

#[test]
fn bounded_sink_never_counts_more_than_it_drops() {
    let sink = Arc::new(MemorySink::with_capacity(50));
    let tele = Telemetry::new(sink.clone());
    let ids: Vec<u64> = (0..THREADS).collect();
    ids.par_iter().for_each(|&t| {
        for _ in 0..EVENTS_PER_THREAD {
            tele.emit(&Event::CampaignStarted {
                program: format!("p{t}"),
                runs: 1,
            });
        }
    });
    let kept = sink.events().len() as u64;
    assert_eq!(kept, 50);
    assert_eq!(sink.dropped(), THREADS * EVENTS_PER_THREAD - kept);
    // The kind counter tracks arrivals, not retention.
    assert_eq!(sink.count("campaign_started"), THREADS * EVENTS_PER_THREAD);
}

#[test]
fn registry_counters_and_histograms_merge_losslessly() {
    let reg = Registry::new();
    let ids: Vec<u64> = (0..THREADS).collect();
    ids.par_iter().for_each(|&t| {
        for i in 0..EVENTS_PER_THREAD {
            reg.incr("runs", 1);
            reg.observe("latency", t * EVENTS_PER_THREAD + i);
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.counter("runs"), THREADS * EVENTS_PER_THREAD);
    let h = snap.histogram("latency").expect("histogram recorded");
    assert_eq!(h.count, THREADS * EVENTS_PER_THREAD);
    let n = THREADS * EVENTS_PER_THREAD;
    assert_eq!(h.sum, n * (n - 1) / 2);
    assert_eq!(h.min, 0);
    assert_eq!(h.max, n - 1);
}
