//! Metrics registry: named monotonic counters and log2-bucketed histograms.
//!
//! Campaigns use this to derive detection-latency-in-cycles and per-detector
//! firing-rate distributions from the event stream. The registry is
//! `Sync` (one mutex, coarse) — hot paths should batch into a local
//! [`Histogram`]/count and merge, which is what the campaign driver does.

use crate::json::Json;
use crate::report::Table;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k` (k ≥ 1)
/// holds values with `floor(log2(v)) == k - 1`, i.e. `[2^(k-1), 2^k)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest observed sample.
    pub min: u64,
    /// Largest observed sample.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a sample: 0 for the value 0, otherwise
/// `floor(log2(v)) + 1`.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Lower bound of bucket `i` ( inclusive ).
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate quantile (bucket lower bound of the q-th sample),
    /// `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(bucket_lo(i));
            }
        }
        Some(self.max)
    }

    /// JSON form (non-empty buckets only, keyed by lower bound).
    pub fn to_json(&self) -> Json {
        let mut buckets = BTreeMap::new();
        for (i, b) in self.buckets.iter().enumerate() {
            if *b > 0 {
                buckets.insert(bucket_lo(i).to_string(), Json::uint(*b));
            }
        }
        Json::obj([
            ("count", Json::uint(self.count)),
            ("sum", Json::uint(self.sum)),
            (
                "min",
                if self.count == 0 {
                    Json::Null
                } else {
                    Json::uint(self.min)
                },
            ),
            (
                "max",
                if self.count == 0 {
                    Json::Null
                } else {
                    Json::uint(self.max)
                },
            ),
            ("buckets", Json::Obj(buckets)),
        ])
    }
}

/// A point-in-time copy of the registry contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → histogram.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Render as report tables: one for counters, one row per histogram.
    pub fn tables(&self) -> Vec<Table> {
        let mut out = Vec::new();
        if !self.counters.is_empty() {
            let mut t = Table::new("counters", &["counter", "value"]);
            for (k, v) in &self.counters {
                t.row(vec![k.clone(), v.to_string()]);
            }
            out.push(t);
        }
        if !self.histograms.is_empty() {
            let mut t = Table::new(
                "histograms",
                &["histogram", "count", "mean", "p50", "p99", "max"],
            );
            for (k, h) in &self.histograms {
                t.row(vec![
                    k.clone(),
                    h.count.to_string(),
                    h.mean().map_or("-".into(), |m| format!("{m:.1}")),
                    h.quantile(0.5).map_or("-".into(), |v| v.to_string()),
                    h.quantile(0.99).map_or("-".into(), |v| v.to_string()),
                    if h.count == 0 {
                        "-".into()
                    } else {
                        h.max.to_string()
                    },
                ]);
            }
            out.push(t);
        }
        out
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::uint(*v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        Json::obj([
            ("counters", Json::Obj(counters)),
            ("histograms", Json::Obj(histograms)),
        ])
    }
}

/// Thread-safe registry of counters and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<MetricsSnapshot>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `by` to counter `name`.
    pub fn incr(&self, name: &str, by: u64) {
        let mut g = crate::lock_recover(&self.inner);
        *g.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Record `v` into histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        let mut g = crate::lock_recover(&self.inner);
        g.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Merge a pre-aggregated histogram into histogram `name`.
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        let mut g = crate::lock_recover(&self.inner);
        g.histograms.entry(name.to_string()).or_default().merge(h);
    }

    /// Copy out the current contents.
    pub fn snapshot(&self) -> MetricsSnapshot {
        crate::lock_recover(&self.inner).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lo(i);
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i}");
        }
    }

    #[test]
    fn observe_and_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2,3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[10], 1); // 1000 in [512,1024)
        assert!((h.mean().unwrap() - 1010.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_move_with_mass() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.observe(8);
        }
        h.observe(1 << 20);
        assert_eq!(h.quantile(0.5), Some(8));
        assert_eq!(h.quantile(1.0), Some(1 << 20));
        assert_eq!(Histogram::default().quantile(0.5), None);
    }

    #[test]
    fn merge_equals_combined_observe() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut c = Histogram::default();
        for v in [1u64, 5, 9] {
            a.observe(v);
            c.observe(v);
        }
        for v in [0u64, 1 << 30] {
            b.observe(v);
            c.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn registry_roundtrip() {
        let r = Registry::new();
        r.incr("runs", 2);
        r.incr("runs", 3);
        r.observe("latency", 100);
        let s = r.snapshot();
        assert_eq!(s.counter("runs"), 5);
        assert_eq!(s.histogram("latency").unwrap().count, 1);
        let j = s.to_json();
        assert_eq!(
            j.get("counters").unwrap().get("runs").unwrap().as_u64(),
            Some(5)
        );
    }
}
