//! Metrics registry: named monotonic counters and log2-bucketed histograms.
//!
//! Campaigns use this to derive detection-latency-in-cycles and per-detector
//! firing-rate distributions from the event stream. The registry is
//! `Sync` (one mutex, coarse) — hot paths should batch into a local
//! [`Histogram`]/count and merge, which is what the campaign driver does.

use crate::json::Json;
use crate::report::Table;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k` (k ≥ 1)
/// holds values with `floor(log2(v)) == k - 1`, i.e. `[2^(k-1), 2^k)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest observed sample.
    pub min: u64,
    /// Largest observed sample.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a sample: 0 for the value 0, otherwise
/// `floor(log2(v)) + 1`.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Lower bound of bucket `i` ( inclusive ).
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate quantile (bucket lower bound of the q-th sample),
    /// `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(bucket_lo(i));
            }
        }
        Some(self.max)
    }

    /// JSON form (non-empty buckets only, keyed by lower bound).
    pub fn to_json(&self) -> Json {
        let mut buckets = BTreeMap::new();
        for (i, b) in self.buckets.iter().enumerate() {
            if *b > 0 {
                buckets.insert(bucket_lo(i).to_string(), Json::uint(*b));
            }
        }
        Json::obj([
            ("count", Json::uint(self.count)),
            ("sum", Json::uint(self.sum)),
            (
                "min",
                if self.count == 0 {
                    Json::Null
                } else {
                    Json::uint(self.min)
                },
            ),
            (
                "max",
                if self.count == 0 {
                    Json::Null
                } else {
                    Json::uint(self.max)
                },
            ),
            ("buckets", Json::Obj(buckets)),
        ])
    }
}

/// A point-in-time copy of the registry contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → last-set value (point-in-time, may go down).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → histogram.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, when set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Render as report tables: one for counters, one row per histogram.
    pub fn tables(&self) -> Vec<Table> {
        let mut out = Vec::new();
        if !self.counters.is_empty() {
            let mut t = Table::new("counters", &["counter", "value"]);
            for (k, v) in &self.counters {
                t.row(vec![k.clone(), v.to_string()]);
            }
            out.push(t);
        }
        if !self.gauges.is_empty() {
            let mut t = Table::new("gauges", &["gauge", "value"]);
            for (k, v) in &self.gauges {
                t.row(vec![k.clone(), format!("{v}")]);
            }
            out.push(t);
        }
        if !self.histograms.is_empty() {
            let mut t = Table::new(
                "histograms",
                &["histogram", "count", "mean", "p50", "p99", "max"],
            );
            for (k, h) in &self.histograms {
                t.row(vec![
                    k.clone(),
                    h.count.to_string(),
                    h.mean().map_or("-".into(), |m| format!("{m:.1}")),
                    h.quantile(0.5).map_or("-".into(), |v| v.to_string()),
                    h.quantile(0.99).map_or("-".into(), |v| v.to_string()),
                    if h.count == 0 {
                        "-".into()
                    } else {
                        h.max.to_string()
                    },
                ]);
            }
            out.push(t);
        }
        out
    }

    /// JSON form. The `"gauges"` key appears only when gauges exist, so
    /// snapshots from gauge-free producers (campaign summaries, whose
    /// serialized form must stay byte-identical across resume/merge) are
    /// unchanged by the gauge feature.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::uint(*v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        let mut doc: BTreeMap<String, Json> = BTreeMap::new();
        doc.insert("counters".into(), Json::Obj(counters));
        if !self.gauges.is_empty() {
            let gauges = self
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect();
            doc.insert("gauges".into(), Json::Obj(gauges));
        }
        doc.insert("histograms".into(), Json::Obj(histograms));
        Json::Obj(doc)
    }
}

/// Sanitize a metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Format a gauge value for exposition (`f64`, but whole numbers render
/// without a trailing `.0` — both are valid Prometheus floats).
fn prom_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render a snapshot in the Prometheus text exposition format 0.0.4.
///
/// Counters gain the conventional `_total` suffix; histograms expose the
/// log2 buckets as cumulative `_bucket{le="..."}` series (the `le` bound is
/// each bucket's inclusive integer upper bound, `2^k − 1`) capped by the
/// mandatory `le="+Inf"`, plus `_sum` and `_count`. Names are sanitized
/// with `prom_name`; each metric carries exactly one `# HELP` and
/// `# TYPE` line. Serve with `Content-Type: text/plain; version=0.0.4`.
pub fn to_prometheus(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (k, v) in &s.counters {
        let mut n = prom_name(k);
        if !n.ends_with("_total") {
            n.push_str("_total");
        }
        out.push_str(&format!(
            "# HELP {n} Monotonic counter `{k}`.\n# TYPE {n} counter\n{n} {v}\n"
        ));
    }
    for (k, v) in &s.gauges {
        let n = prom_name(k);
        out.push_str(&format!(
            "# HELP {n} Gauge `{k}`.\n# TYPE {n} gauge\n{n} {}\n",
            prom_value(*v)
        ));
    }
    for (k, h) in &s.histograms {
        let n = prom_name(k);
        out.push_str(&format!(
            "# HELP {n} Log2-bucketed histogram `{k}`.\n# TYPE {n} histogram\n"
        ));
        let top = h
            .buckets
            .iter()
            .rposition(|b| *b > 0)
            .map_or(0, |i| i.min(HISTOGRAM_BUCKETS - 2));
        let mut cum = 0u64;
        for i in 0..=top {
            cum += h.buckets[i];
            // Inclusive upper bound of bucket i over integer samples:
            // bucket 0 holds {0}, bucket k holds [2^(k-1), 2^k).
            let le = bucket_lo(i + 1).saturating_sub(1);
            out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
    }
    out
}

/// Thread-safe registry of counters and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<MetricsSnapshot>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `by` to counter `name`.
    pub fn incr(&self, name: &str, by: u64) {
        let mut g = crate::lock_recover(&self.inner);
        *g.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Record `v` into histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        let mut g = crate::lock_recover(&self.inner);
        g.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Merge a pre-aggregated histogram into histogram `name`.
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        let mut g = crate::lock_recover(&self.inner);
        g.histograms.entry(name.to_string()).or_default().merge(h);
    }

    /// Set gauge `name` to `v` (last write wins).
    pub fn set_gauge(&self, name: &str, v: f64) {
        let mut g = crate::lock_recover(&self.inner);
        g.gauges.insert(name.to_string(), v);
    }

    /// Add `delta` (possibly negative) to gauge `name`, creating it at 0.
    pub fn add_gauge(&self, name: &str, delta: f64) {
        let mut g = crate::lock_recover(&self.inner);
        *g.gauges.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Copy out the current contents.
    pub fn snapshot(&self) -> MetricsSnapshot {
        crate::lock_recover(&self.inner).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lo(i);
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i}");
        }
    }

    #[test]
    fn observe_and_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2,3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[10], 1); // 1000 in [512,1024)
        assert!((h.mean().unwrap() - 1010.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_move_with_mass() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.observe(8);
        }
        h.observe(1 << 20);
        assert_eq!(h.quantile(0.5), Some(8));
        assert_eq!(h.quantile(1.0), Some(1 << 20));
        assert_eq!(Histogram::default().quantile(0.5), None);
    }

    #[test]
    fn merge_equals_combined_observe() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut c = Histogram::default();
        for v in [1u64, 5, 9] {
            a.observe(v);
            c.observe(v);
        }
        for v in [0u64, 1 << 30] {
            b.observe(v);
            c.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty: every quantile is None.
        let empty = Histogram::default();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile(q), None);
        }
        // Single sample / single bucket: every quantile is that bucket.
        let mut one = Histogram::default();
        one.observe(9);
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(one.quantile(q), Some(8), "q={q} lands in [8,16)");
        }
        // All mass in bucket 0 (the value 0).
        let mut zeros = Histogram::default();
        for _ in 0..10 {
            zeros.observe(0);
        }
        assert_eq!(zeros.quantile(0.5), Some(0));
        assert_eq!(zeros.quantile(1.0), Some(0));
        // Out-of-range q is clamped, not panicking.
        assert_eq!(one.quantile(-1.0), Some(8));
        assert_eq!(one.quantile(2.0), Some(8));
    }

    #[test]
    fn merge_disjoint_buckets() {
        let mut lo = Histogram::default();
        for v in [0u64, 1, 1] {
            lo.observe(v);
        }
        let mut hi = Histogram::default();
        for v in [1u64 << 40, u64::MAX] {
            hi.observe(v);
        }
        lo.merge(&hi);
        assert_eq!(lo.count, 5);
        assert_eq!(lo.min, 0);
        assert_eq!(lo.max, u64::MAX);
        assert_eq!(lo.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(lo.buckets[0], 1);
        assert_eq!(lo.buckets[1], 2);
        assert_eq!(lo.buckets[41], 1);
        assert_eq!(lo.buckets[64], 1);
        // Merging an empty histogram changes nothing.
        let before = lo.clone();
        lo.merge(&Histogram::default());
        assert_eq!(lo, before);
    }

    #[test]
    fn gauge_set_and_add_semantics() {
        let r = Registry::new();
        assert_eq!(r.snapshot().gauge("queue_depth"), None);
        r.set_gauge("queue_depth", 3.0);
        r.set_gauge("queue_depth", 7.0);
        assert_eq!(
            r.snapshot().gauge("queue_depth"),
            Some(7.0),
            "last write wins"
        );
        r.add_gauge("busy", 2.0);
        r.add_gauge("busy", -0.5);
        assert_eq!(r.snapshot().gauge("busy"), Some(1.5), "add accumulates");
        r.add_gauge("queue_depth", 1.0);
        assert_eq!(r.snapshot().gauge("queue_depth"), Some(8.0));
    }

    #[test]
    fn gauges_json_key_only_when_present() {
        let r = Registry::new();
        r.incr("runs", 1);
        let plain = r.snapshot().to_json();
        assert!(plain.get("gauges").is_none(), "no gauges → no key");
        r.set_gauge("uptime_seconds", 12.0);
        let with = r.snapshot().to_json();
        assert_eq!(
            with.get("gauges")
                .unwrap()
                .get("uptime_seconds")
                .unwrap()
                .as_f64(),
            Some(12.0)
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.incr("jobs_done", 4);
        r.incr("outcome.masked", 2);
        r.set_gauge("queue_depth", 3.0);
        r.set_gauge("uptime_seconds", 1.25);
        r.observe("latency_us", 0);
        r.observe("latency_us", 5);
        r.observe("latency_us", 5);
        r.observe("latency_us", 900);
        let text = to_prometheus(&r.snapshot());
        // Counters get _total and exactly one HELP/TYPE pair.
        assert!(text.contains("# TYPE jobs_done_total counter\njobs_done_total 4\n"));
        assert!(text.contains("outcome_masked_total 2\n"), "names sanitized");
        assert_eq!(text.matches("# TYPE jobs_done_total").count(), 1);
        // Gauges.
        assert!(text.contains("# TYPE queue_depth gauge\nqueue_depth 3\n"));
        assert!(text.contains("uptime_seconds 1.25\n"));
        // Histogram buckets are cumulative and end at +Inf.
        assert!(text.contains("# TYPE latency_us histogram\n"));
        assert!(text.contains("latency_us_bucket{le=\"0\"} 1\n"));
        assert!(
            text.contains("latency_us_bucket{le=\"7\"} 3\n"),
            "0,5,5 ≤ 7"
        );
        assert!(text.contains("latency_us_bucket{le=\"1023\"} 4\n"));
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("latency_us_sum 910\n"));
        assert!(text.contains("latency_us_count 4\n"));
        // Cumulative counts never decrease across the bucket series.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("latency_us_bucket")) {
            let c: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(c >= last, "monotone buckets: {line}");
            last = c;
        }
    }

    #[test]
    fn prometheus_handles_top_bucket_and_empty_histogram() {
        let r = Registry::new();
        r.observe("big", u64::MAX);
        r.observe("none_yet", 7);
        let mut s = r.snapshot();
        s.histograms.insert("empty".into(), Histogram::default());
        let text = to_prometheus(&s);
        // u64::MAX lives in bucket 64, which only +Inf covers.
        assert!(text.contains("big_bucket{le=\"+Inf\"} 1\n"));
        // An empty histogram still exposes the mandatory +Inf/sum/count.
        assert!(text.contains("empty_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("empty_sum 0\nempty_count 0\n"));
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(
            prom_name("stratum.FPU/floating-point.runs"),
            "stratum_FPU_floating_point_runs"
        );
        assert_eq!(prom_name("9lives"), "_lives");
        assert_eq!(prom_name(""), "_");
    }

    #[test]
    fn registry_roundtrip() {
        let r = Registry::new();
        r.incr("runs", 2);
        r.incr("runs", 3);
        r.observe("latency", 100);
        let s = r.snapshot();
        assert_eq!(s.counter("runs"), 5);
        assert_eq!(s.histogram("latency").unwrap().count, 1);
        let j = s.to_json();
        assert_eq!(
            j.get("counters").unwrap().get("runs").unwrap().as_u64(),
            Some(5)
        );
    }
}
