//! Rayon-safe campaign progress: per-run outcome ticks aggregated across
//! worker threads with periodic lines on stderr.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Shared progress meter. `tick` is called once per completed unit of work
/// from any thread; every `every` completions one line is printed to stderr.
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: u64,
    every: u64,
    done: AtomicU64,
    outcomes: Mutex<BTreeMap<String, u64>>,
    start: Instant,
}

impl Progress {
    /// New meter over `total` units, reporting every `every` completions
    /// (`every = 0` disables printing but still aggregates).
    pub fn new(label: impl Into<String>, total: u64, every: u64) -> Self {
        Progress {
            label: label.into(),
            total,
            every,
            done: AtomicU64::new(0),
            outcomes: Mutex::new(BTreeMap::new()),
            start: Instant::now(),
        }
    }

    /// Record one completed unit with its outcome label.
    pub fn tick(&self, outcome: &str) {
        {
            let mut g = crate::lock_recover(&self.outcomes);
            *g.entry(outcome.to_string()).or_insert(0) += 1;
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.every > 0 && (done.is_multiple_of(self.every) || done == self.total) {
            self.print_line(done);
        }
    }

    /// Completed units so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Outcome label → count, aggregated across threads.
    pub fn outcome_counts(&self) -> BTreeMap<String, u64> {
        crate::lock_recover(&self.outcomes).clone()
    }

    fn print_line(&self, done: u64) {
        let pct = if self.total > 0 {
            done as f64 * 100.0 / self.total as f64
        } else {
            0.0
        };
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let counts = self.outcome_counts();
        let mut tail = String::new();
        for (k, v) in &counts {
            tail.push_str(&format!(" {k}={v}"));
        }
        eprintln!(
            "[{}] {done}/{} ({pct:.0}%) {elapsed:.1}s {rate:.1}/s{tail}",
            self.label, self.total
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_ticks() {
        let p = Progress::new("test", 10, 0);
        for i in 0..10 {
            p.tick(if i % 2 == 0 { "even" } else { "odd" });
        }
        assert_eq!(p.done(), 10);
        let counts = p.outcome_counts();
        assert_eq!(counts["even"], 5);
        assert_eq!(counts["odd"], 5);
    }
}
