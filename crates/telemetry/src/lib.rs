//! `hauberk-telemetry` — structured tracing, metrics, and campaign progress
//! for the Hauberk reproduction.
//!
//! This crate is the lowest layer of the workspace (it depends on nothing
//! in-tree) and defines:
//!
//! * a typed [`Event`] taxonomy covering kernel launch/exit spans,
//!   hook dispatch, fault injection, detector alarms, guardian recovery and
//!   per-injection campaign outcomes;
//! * the [`TelemetrySink`] trait with three implementations —
//!   [`NullSink`] (discard; the zero-cost-when-disabled path),
//!   [`MemorySink`] (in-memory aggregation for tests and in-process
//!   consumers), [`JsonlSink`] (one JSON object per line, replayable);
//! * the cheap, cloneable [`Telemetry`] handle threaded through the
//!   simulator, runtimes, guardian and campaign driver — when disabled,
//!   every emit site is one branch on a cached bool;
//! * a [`metrics`] registry (counters + log2 histograms), the [`report`]
//!   rendering module, and a rayon-safe [`progress`] meter.

pub mod json;
pub mod metrics;
pub mod progress;
pub mod report;
pub mod span;

use json::Json;
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock a mutex, recovering from poisoning.
///
/// Telemetry state (sink buffers, progress tallies, metric registries) is
/// shared across campaign worker threads, and a worker that panics while
/// holding one of these locks poisons it. The data under every telemetry
/// mutex is a plain tally that stays internally consistent at each store, so
/// the right response is to keep serving it — a long-running daemon must not
/// let one crashed job wedge metrics for every later request.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A point-in-time copy of the simulator's execution statistics, attached to
/// kernel-exit events. Mirrors `hauberk_sim::ExecStats` without depending on
/// the sim crate (telemetry sits below it in the crate graph).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecSnapshot {
    /// Modeled wall-clock cycles of the launch (max over SMs).
    pub kernel_cycles: u64,
    /// Cycles of useful work summed over warps.
    pub work_cycles: u64,
    /// Work cycles spent inside loop bodies.
    pub loop_cycles: u64,
    /// Total retired operations across all op classes.
    pub ops: u64,
    /// Dual-issue paired operations.
    pub paired_ops: u64,
    /// Coalesced memory segment transactions.
    pub mem_segments: u64,
    /// Thread blocks executed.
    pub blocks: u64,
    /// Warps executed.
    pub warps: u64,
    /// Barrier synchronizations.
    pub syncs: u64,
    /// Instrumentation hooks dispatched.
    pub hooks: u64,
}

impl ExecSnapshot {
    /// Component-wise difference `self - earlier` (saturating), for span
    /// deltas between two snapshots of an accumulating stats object.
    pub fn delta(&self, earlier: &ExecSnapshot) -> ExecSnapshot {
        ExecSnapshot {
            kernel_cycles: self.kernel_cycles.saturating_sub(earlier.kernel_cycles),
            work_cycles: self.work_cycles.saturating_sub(earlier.work_cycles),
            loop_cycles: self.loop_cycles.saturating_sub(earlier.loop_cycles),
            ops: self.ops.saturating_sub(earlier.ops),
            paired_ops: self.paired_ops.saturating_sub(earlier.paired_ops),
            mem_segments: self.mem_segments.saturating_sub(earlier.mem_segments),
            blocks: self.blocks.saturating_sub(earlier.blocks),
            warps: self.warps.saturating_sub(earlier.warps),
            syncs: self.syncs.saturating_sub(earlier.syncs),
            hooks: self.hooks.saturating_sub(earlier.hooks),
        }
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kernel_cycles", Json::uint(self.kernel_cycles)),
            ("work_cycles", Json::uint(self.work_cycles)),
            ("loop_cycles", Json::uint(self.loop_cycles)),
            ("ops", Json::uint(self.ops)),
            ("paired_ops", Json::uint(self.paired_ops)),
            ("mem_segments", Json::uint(self.mem_segments)),
            ("blocks", Json::uint(self.blocks)),
            ("warps", Json::uint(self.warps)),
            ("syncs", Json::uint(self.syncs)),
            ("hooks", Json::uint(self.hooks)),
        ])
    }
}

/// One structured telemetry event. Every variant serializes to a flat JSON
/// object with an `"ev"` discriminator (see [`Event::kind`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A kernel launch began.
    KernelLaunch {
        /// Process-unique launch id (pairs launch/exit).
        launch_id: u64,
        /// Kernel name.
        kernel: String,
        /// Grid size in blocks.
        blocks: u64,
        /// Total threads in the grid.
        threads: u64,
    },
    /// A kernel launch finished (completed, crashed, or hung).
    KernelExit {
        /// Matches the corresponding [`Event::KernelLaunch`].
        launch_id: u64,
        /// Kernel name.
        kernel: String,
        /// `"completed"`, `"crash"`, or `"hang"`.
        outcome: &'static str,
        /// Final execution statistics of the launch.
        snapshot: ExecSnapshot,
    },
    /// The interpreter dispatched an instrumentation hook to the runtime.
    /// High-volume: only emitted when [`Telemetry::with_hot_events`] is on.
    HookDispatch {
        /// Owning launch.
        launch_id: u64,
        /// Hook kind (`"fi_point"`, `"loop_check"`, ...).
        kind: &'static str,
        /// Site or loop id.
        site: u64,
        /// Block id.
        block: u32,
        /// Warp id within the block.
        warp: u32,
        /// Accumulated work cycles at dispatch.
        cycles: u64,
    },
    /// An armed SWIFI fault was delivered into architecture state.
    FaultInjected {
        /// Human-readable fault site (`"hook_target(3)"`, ...).
        site: String,
        /// Global linear id of the targeted thread.
        thread: u32,
        /// XOR corruption mask.
        mask: u32,
        /// Work-cycle timestamp of delivery.
        cycle: u64,
    },
    /// A Hauberk detector raised an alarm.
    DetectorFired {
        /// Detector index; `-1` is the non-loop (duplication/checksum)
        /// detector.
        detector: i64,
        /// Monitored variable name, when known (empty otherwise).
        variable: String,
        /// Alarm kind (`"range"`, `"checksum"`, ...).
        kind: String,
        /// The observed out-of-spec value.
        observed: f64,
        /// Work-cycle timestamp of the check that fired.
        cycle: u64,
    },
    /// A guardian recovery-process step (§IX, Fig. 11).
    Guardian {
        /// Step name (`"restarted"`, `"reexecuted"`, ...).
        action: String,
        /// Device ordinal the step applies to; `-1` when the step is not
        /// device-specific.
        device: i64,
    },
    /// A checkpoint was captured or restored.
    Checkpoint {
        /// `"capture"` or `"restore"`.
        action: &'static str,
        /// Total words of device memory covered.
        words: u64,
    },
    /// A fault-injection campaign began.
    CampaignStarted {
        /// Program under test.
        program: String,
        /// Planned injection runs.
        runs: u64,
    },
    /// One injection experiment finished.
    InjectionRun {
        /// Index into the campaign plan.
        index: u64,
        /// Five-way outcome label (`"masked"`, `"detected"`, ...).
        outcome: String,
        /// Whether the armed fault actually activated.
        delivered: bool,
        /// Cycles from fault delivery to first alarm, when both happened.
        latency: Option<u64>,
    },
    /// A fault-injection campaign finished.
    CampaignFinished {
        /// Program under test.
        program: String,
        /// Completed injection runs.
        runs: u64,
    },
    /// A campaign work unit kept failing after its retry budget and was
    /// quarantined: its samples are excluded from the summary and the
    /// campaign continues without it.
    UnitQuarantined {
        /// Stratum key of the unit (`"FPU/floating-point"`, ...).
        stratum: String,
        /// Chunk index of the unit within its stratum.
        chunk: u64,
        /// Execution attempts made (1 + retries).
        attempts: u64,
        /// Panic/divergence message of the last attempt.
        error: String,
    },
    /// A tracing span closed (see the [`span`] module). Emitted at close,
    /// so children precede parents in a trace; the tree reassembles from
    /// `id`/`parent`, and the root of a request's tree carries its trace id.
    Span {
        /// Static span name (`"campaign"`, `"stratum"`, `"unit"`,
        /// `"launch"`, ...).
        name: &'static str,
        /// Process-unique span id (never 0).
        id: u64,
        /// Enclosing span's id, 0 for a root.
        parent: u64,
        /// Correlation trace id, carried only by the root span.
        trace: Option<String>,
        /// Start timestamp, microseconds since process start.
        start_us: u64,
        /// Span duration in nanoseconds.
        dur_ns: u64,
        /// Small key/value attribute list (engine name, chunk index, ...).
        attrs: Vec<(&'static str, String)>,
    },
    /// Adaptive sampling closed a stratum: its confidence interval reached
    /// the target width, so no further work units are drawn from it.
    StratumConverged {
        /// Stratum key.
        stratum: String,
        /// Samples drawn before stopping.
        samples: u64,
        /// Achieved Wilson interval width on the SDC rate.
        ci_width: f64,
        /// Planned samples that were skipped by stopping early.
        skipped: u64,
    },
    /// A fleet coordinator handed one shard of a campaign to an executor —
    /// a peer daemon, or itself (`peer` = `"local"`).
    ShardDispatched {
        /// Shard index (`0..total`).
        shard: u64,
        /// Shard modulus: how many ways the campaign was split.
        total: u64,
        /// Peer address the shard went to, or `"local"`.
        peer: String,
    },
    /// A dispatched shard failed on its executor and was re-routed — to the
    /// next peer in the ring, or to local execution as the final fallback.
    ShardRedispatched {
        /// Shard index.
        shard: u64,
        /// New executor (peer address or `"local"`).
        peer: String,
        /// Why the previous executor lost the shard.
        reason: String,
    },
    /// A coordinator's pre-dispatch `/healthz` probe failed, so the peer
    /// was skipped without ever being offered the shard.
    ShardSkippedUnhealthy {
        /// Shard index.
        shard: u64,
        /// The unhealthy peer's address.
        peer: String,
    },
}

impl Event {
    /// Stable discriminator used as the JSON `"ev"` field and for counting.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::KernelLaunch { .. } => "kernel_launch",
            Event::KernelExit { .. } => "kernel_exit",
            Event::HookDispatch { .. } => "hook_dispatch",
            Event::FaultInjected { .. } => "fault_injected",
            Event::DetectorFired { .. } => "detector_fired",
            Event::Guardian { .. } => "guardian",
            Event::Checkpoint { .. } => "checkpoint",
            Event::CampaignStarted { .. } => "campaign_started",
            Event::InjectionRun { .. } => "injection_run",
            Event::CampaignFinished { .. } => "campaign_finished",
            Event::UnitQuarantined { .. } => "unit_quarantined",
            Event::Span { .. } => "span",
            Event::StratumConverged { .. } => "stratum_converged",
            Event::ShardDispatched { .. } => "shard_dispatched",
            Event::ShardRedispatched { .. } => "shard_redispatched",
            Event::ShardSkippedUnhealthy { .. } => "shard_skipped_unhealthy",
        }
    }

    /// Serialize to one flat JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj: BTreeMap<String, Json> = BTreeMap::new();
        obj.insert("ev".into(), Json::str(self.kind()));
        let mut put = |k: &str, v: Json| {
            obj.insert(k.into(), v);
        };
        match self {
            Event::KernelLaunch {
                launch_id,
                kernel,
                blocks,
                threads,
            } => {
                put("launch_id", Json::uint(*launch_id));
                put("kernel", Json::str(kernel.clone()));
                put("blocks", Json::uint(*blocks));
                put("threads", Json::uint(*threads));
            }
            Event::KernelExit {
                launch_id,
                kernel,
                outcome,
                snapshot,
            } => {
                put("launch_id", Json::uint(*launch_id));
                put("kernel", Json::str(kernel.clone()));
                put("outcome", Json::str(*outcome));
                put("stats", snapshot.to_json());
            }
            Event::HookDispatch {
                launch_id,
                kind,
                site,
                block,
                warp,
                cycles,
            } => {
                put("launch_id", Json::uint(*launch_id));
                put("kind", Json::str(*kind));
                put("site", Json::uint(*site));
                put("block", Json::uint(*block as u64));
                put("warp", Json::uint(*warp as u64));
                put("cycles", Json::uint(*cycles));
            }
            Event::FaultInjected {
                site,
                thread,
                mask,
                cycle,
            } => {
                put("site", Json::str(site.clone()));
                put("thread", Json::uint(*thread as u64));
                put("mask", Json::uint(*mask as u64));
                put("cycle", Json::uint(*cycle));
            }
            Event::DetectorFired {
                detector,
                variable,
                kind,
                observed,
                cycle,
            } => {
                put("detector", Json::Int(*detector));
                put("variable", Json::str(variable.clone()));
                put("kind", Json::str(kind.clone()));
                put("observed", Json::Num(*observed));
                put("cycle", Json::uint(*cycle));
            }
            Event::Guardian { action, device } => {
                put("action", Json::str(action.clone()));
                put("device", Json::Int(*device));
            }
            Event::Checkpoint { action, words } => {
                put("action", Json::str(*action));
                put("words", Json::uint(*words));
            }
            Event::CampaignStarted { program, runs } => {
                put("program", Json::str(program.clone()));
                put("runs", Json::uint(*runs));
            }
            Event::InjectionRun {
                index,
                outcome,
                delivered,
                latency,
            } => {
                put("index", Json::uint(*index));
                put("outcome", Json::str(outcome.clone()));
                put("delivered", Json::Bool(*delivered));
                put("latency", latency.map_or(Json::Null, Json::uint));
            }
            Event::CampaignFinished { program, runs } => {
                put("program", Json::str(program.clone()));
                put("runs", Json::uint(*runs));
            }
            Event::UnitQuarantined {
                stratum,
                chunk,
                attempts,
                error,
            } => {
                put("stratum", Json::str(stratum.clone()));
                put("chunk", Json::uint(*chunk));
                put("attempts", Json::uint(*attempts));
                put("error", Json::str(error.clone()));
            }
            Event::Span {
                name,
                id,
                parent,
                trace,
                start_us,
                dur_ns,
                attrs,
            } => {
                put("name", Json::str(*name));
                put("id", Json::uint(*id));
                put("parent", Json::uint(*parent));
                if let Some(t) = trace {
                    put("trace", Json::str(t.clone()));
                }
                put("start_us", Json::uint(*start_us));
                put("dur_ns", Json::uint(*dur_ns));
                if !attrs.is_empty() {
                    let kv = attrs
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::str(v.clone())))
                        .collect();
                    put("attrs", Json::Obj(kv));
                }
            }
            Event::StratumConverged {
                stratum,
                samples,
                ci_width,
                skipped,
            } => {
                put("stratum", Json::str(stratum.clone()));
                put("samples", Json::uint(*samples));
                put("ci_width", Json::Num(*ci_width));
                put("skipped", Json::uint(*skipped));
            }
            Event::ShardDispatched { shard, total, peer } => {
                put("shard", Json::uint(*shard));
                put("total", Json::uint(*total));
                put("peer", Json::str(peer.clone()));
            }
            Event::ShardRedispatched {
                shard,
                peer,
                reason,
            } => {
                put("shard", Json::uint(*shard));
                put("peer", Json::str(peer.clone()));
                put("reason", Json::str(reason.clone()));
            }
            Event::ShardSkippedUnhealthy { shard, peer } => {
                put("shard", Json::uint(*shard));
                put("peer", Json::str(peer.clone()));
            }
        }
        Json::Obj(obj)
    }
}

/// Destination for telemetry events. Implementations must be cheap and
/// thread-safe: campaigns emit from rayon worker threads concurrently.
pub trait TelemetrySink: Send + Sync + Debug {
    /// Consume one event.
    fn emit(&self, event: &Event);

    /// Whether this sink wants events at all. [`Telemetry`] caches the
    /// answer so a disabled pipeline costs one branch per site.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Flush buffered output (files).
    fn flush(&self) {}
}

/// Discards everything; reports itself disabled so emit sites short-circuit.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn emit(&self, _event: &Event) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// In-memory aggregating sink: counts every event kind and retains up to
/// `capacity` full events for inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    inner: Mutex<MemoryInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct MemoryInner {
    counts: BTreeMap<&'static str, u64>,
    events: Vec<Event>,
    dropped: u64,
}

impl MemorySink {
    /// Sink retaining at most `capacity` events (counts are always exact).
    pub fn with_capacity(capacity: usize) -> Self {
        MemorySink {
            inner: Mutex::new(MemoryInner::default()),
            capacity,
        }
    }

    /// Sink retaining every event.
    pub fn unbounded() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// Event-kind → count.
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        lock_recover(&self.inner).counts.clone()
    }

    /// Count for one kind.
    pub fn count(&self, kind: &str) -> u64 {
        lock_recover(&self.inner)
            .counts
            .get(kind)
            .copied()
            .unwrap_or(0)
    }

    /// Copy of the retained events.
    pub fn events(&self) -> Vec<Event> {
        lock_recover(&self.inner).events.clone()
    }

    /// Events dropped once `capacity` was reached.
    pub fn dropped(&self) -> u64 {
        lock_recover(&self.inner).dropped
    }
}

impl TelemetrySink for MemorySink {
    fn emit(&self, event: &Event) {
        let mut g = lock_recover(&self.inner);
        *g.counts.entry(event.kind()).or_insert(0) += 1;
        if g.events.len() < self.capacity {
            g.events.push(event.clone());
        } else {
            g.dropped += 1;
        }
    }
}

/// Writes one JSON object per line to any `Write` destination.
pub struct JsonlSink {
    w: Mutex<Box<dyn Write + Send>>,
}

impl Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Create (truncate) a JSONL trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self::from_writer(Box::new(std::io::BufWriter::new(f))))
    }

    /// Wrap an arbitrary writer.
    pub fn from_writer(w: Box<dyn Write + Send>) -> Self {
        JsonlSink { w: Mutex::new(w) }
    }
}

impl TelemetrySink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event.to_json().to_string();
        let mut g = lock_recover(&self.w);
        // Trace output is best-effort; a full disk should not kill a
        // campaign that is also aggregating in memory.
        let _ = writeln!(g, "{line}");
    }

    fn flush(&self) {
        let _ = lock_recover(&self.w).flush();
    }
}

/// Parse a JSONL trace file back into JSON documents (replay path).
pub fn read_jsonl(path: impl AsRef<Path>) -> Result<Vec<Json>, String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| json::parse(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

static NEXT_LAUNCH_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique kernel-launch id.
pub fn next_launch_id() -> u64 {
    NEXT_LAUNCH_ID.fetch_add(1, Ordering::Relaxed)
}

/// The handle threaded through the stack. Cloning is cheap (an `Arc`).
///
/// The enabled flag is cached at construction, so the disabled fast path —
/// [`Telemetry::disabled`] or a [`NullSink`] — is a single predictable
/// branch per emit site, with no event construction behind it (use
/// [`Telemetry::emit_with`] on hot paths).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn TelemetrySink>>,
    enabled: bool,
    hot_events: bool,
    spans: bool,
}

impl Telemetry {
    /// Telemetry that does nothing (the default everywhere).
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// Telemetry feeding `sink`. High-volume events (per-hook dispatch)
    /// stay off unless requested with [`Telemetry::with_hot_events`];
    /// tracing spans are on (disable with [`Telemetry::with_spans`]).
    pub fn new(sink: Arc<dyn TelemetrySink>) -> Self {
        let enabled = sink.is_enabled();
        Telemetry {
            sink: Some(sink),
            enabled,
            hot_events: false,
            spans: true,
        }
    }

    /// Enable/disable high-volume per-hook events.
    pub fn with_hot_events(mut self, on: bool) -> Self {
        self.hot_events = on;
        self
    }

    /// Enable/disable tracing spans (see the [`span`] module).
    pub fn with_spans(mut self, on: bool) -> Self {
        self.spans = on;
        self
    }

    /// Whether tracing spans are requested (gate, not sink, state — see
    /// [`Telemetry::span_enabled`] for the combined check).
    #[inline]
    pub fn spans(&self) -> bool {
        self.spans
    }

    /// Whether events are being consumed at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether high-volume events should be emitted.
    #[inline]
    pub fn hot_enabled(&self) -> bool {
        self.enabled && self.hot_events
    }

    /// Emit an already-constructed event.
    #[inline]
    pub fn emit(&self, event: &Event) {
        if self.enabled {
            if let Some(s) = &self.sink {
                s.emit(event);
            }
        }
    }

    /// Emit lazily: `build` runs only when a sink is listening. Use this on
    /// paths where constructing the event (string formatting, snapshots)
    /// would itself cost something.
    #[inline]
    pub fn emit_with(&self, build: impl FnOnce() -> Event) {
        if self.enabled {
            if let Some(s) = &self.sink {
                s.emit(&build());
            }
        }
    }

    /// Emit a high-volume event lazily: the [`Telemetry::hot_enabled`]
    /// check comes first, so on the (default) cold configuration neither
    /// the event nor any of its fields is ever constructed. Every per-hook
    /// dispatch site goes through here.
    #[inline]
    pub fn emit_hot_with(&self, build: impl FnOnce() -> Event) {
        if self.hot_enabled() {
            if let Some(s) = &self.sink {
                s.emit(&build());
            }
        }
    }

    /// Flush the sink.
    pub fn flush(&self) {
        if let Some(s) = &self.sink {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_disables_the_pipeline() {
        let t = Telemetry::new(Arc::new(NullSink));
        assert!(!t.enabled());
        let mut built = false;
        t.emit_with(|| {
            built = true;
            Event::CampaignFinished {
                program: "x".into(),
                runs: 0,
            }
        });
        assert!(!built, "disabled telemetry must not construct events");
    }

    #[test]
    fn memory_sink_counts_kinds() {
        let sink = Arc::new(MemorySink::unbounded());
        let t = Telemetry::new(sink.clone());
        assert!(t.enabled());
        for i in 0..5 {
            t.emit(&Event::InjectionRun {
                index: i,
                outcome: "masked".into(),
                delivered: true,
                latency: None,
            });
        }
        t.emit(&Event::CampaignFinished {
            program: "cp".into(),
            runs: 5,
        });
        assert_eq!(sink.count("injection_run"), 5);
        assert_eq!(sink.count("campaign_finished"), 1);
        assert_eq!(sink.events().len(), 6);
    }

    #[test]
    fn memory_sink_capacity_drops_but_counts() {
        let sink = MemorySink::with_capacity(2);
        for _ in 0..5 {
            sink.emit(&Event::Guardian {
                action: "restarted".into(),
                device: 0,
            });
        }
        assert_eq!(sink.count("guardian"), 5);
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn jsonl_sink_round_trips_events() {
        let dir = std::env::temp_dir().join("hauberk-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.emit(&Event::KernelLaunch {
                launch_id: 7,
                kernel: "spin".into(),
                blocks: 16,
                threads: 512,
            });
            sink.emit(&Event::KernelExit {
                launch_id: 7,
                kernel: "spin".into(),
                outcome: "completed",
                snapshot: ExecSnapshot {
                    kernel_cycles: 100,
                    work_cycles: 90,
                    ..Default::default()
                },
            });
            sink.flush();
        }
        let docs = read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("ev").unwrap().as_str(), Some("kernel_launch"));
        assert_eq!(docs[1].get("ev").unwrap().as_str(), Some("kernel_exit"));
        assert_eq!(
            docs[1]
                .get("stats")
                .unwrap()
                .get("kernel_cycles")
                .unwrap()
                .as_u64(),
            Some(100)
        );
    }

    #[test]
    fn orchestrator_events_serialize() {
        let q = Event::UnitQuarantined {
            stratum: "FPU/floating-point".into(),
            chunk: 4,
            attempts: 3,
            error: "worker panicked: index out of bounds".into(),
        };
        let j = q.to_json();
        assert_eq!(j.get("ev").unwrap().as_str(), Some("unit_quarantined"));
        assert_eq!(j.get("chunk").unwrap().as_u64(), Some(4));
        let c = Event::StratumConverged {
            stratum: "SCHED/integer".into(),
            samples: 96,
            ci_width: 0.081,
            skipped: 160,
        };
        let j = json::parse(&c.to_json().to_string()).unwrap();
        assert_eq!(j.get("ev").unwrap().as_str(), Some("stratum_converged"));
        assert_eq!(j.get("skipped").unwrap().as_u64(), Some(160));
        assert!((j.get("ci_width").unwrap().as_f64().unwrap() - 0.081).abs() < 1e-12);
    }

    #[test]
    fn poisoned_sink_keeps_serving() {
        // A worker that panics while holding the sink lock must not wedge
        // telemetry for every later emitter (the serve daemon runs for
        // days; its /metrics endpoint reads these locks on every scrape).
        let sink = Arc::new(MemorySink::unbounded());
        let s2 = sink.clone();
        let _ = std::panic::catch_unwind(move || {
            let _g = lock_recover(&s2.inner);
            panic!("worker dies while holding the sink lock");
        });
        sink.emit(&Event::Guardian {
            action: "restarted".into(),
            device: 0,
        });
        assert_eq!(sink.count("guardian"), 1);

        let p = progress::Progress::new("poisoned", 2, 0);
        let reg = metrics::Registry::new();
        reg.incr("before", 1);
        p.tick("ok");
        assert_eq!(p.done(), 1);
        assert_eq!(reg.snapshot().counter("before"), 1);
    }

    #[test]
    fn snapshot_delta() {
        let a = ExecSnapshot {
            kernel_cycles: 10,
            work_cycles: 8,
            ops: 100,
            ..Default::default()
        };
        let b = ExecSnapshot {
            kernel_cycles: 25,
            work_cycles: 20,
            ops: 250,
            blocks: 1,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.kernel_cycles, 15);
        assert_eq!(d.work_cycles, 12);
        assert_eq!(d.ops, 150);
        assert_eq!(d.blocks, 1);
        // Saturates instead of wrapping when mis-ordered.
        assert_eq!(a.delta(&b).kernel_cycles, 0);
    }
}
