//! Hierarchical tracing spans over the event pipeline.
//!
//! A span is a named, timed region of work with a process-unique id and a
//! parent id, so the spans of one campaign reassemble into a tree: the
//! serve daemon opens a root `campaign` span carrying the request's trace
//! id, the orchestrator nests `stratum` and `unit` spans under it, and the
//! simulator nests a `launch` span per kernel launch. Spans ride the
//! existing [`TelemetrySink`](crate::TelemetrySink) pipeline as ordinary
//! [`Event::Span`](crate::Event) records, emitted when the span
//! *closes* (children therefore appear before their parents in a JSONL
//! trace; consumers rebuild the tree from ids, not line order).
//!
//! Parenting is implicit through a thread-local: opening a span installs
//! its id as the thread's current span, and closing it restores the
//! previous one. Rayon moves work across threads, so the thread-local does
//! not follow automatically — the orchestrator wraps each parallel closure
//! in [`with_parent`] to re-install the owning unit's span id on whichever
//! worker thread picks the closure up.
//!
//! Cost model: a disabled pipeline (or [`Telemetry::with_spans`]`(false)`)
//! returns an inert guard after a single branch — no id allocation, no
//! clock read, no thread-local write. This is measured by the
//! `telemetry_overhead` bench (`spans_null_sink` mode) and must stay under
//! 1% per the observability acceptance bar.

use crate::{Event, Telemetry};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique span id (never 0; 0 means "no span").
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// Process start used as the epoch for span `start_us` timestamps; spans
/// from one process are mutually orderable, not wall-clock absolute.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The span currently open on this thread (0 when none).
pub fn current_span() -> u64 {
    CURRENT_SPAN.with(Cell::get)
}

/// Run `f` with `parent` installed as this thread's current span, restoring
/// the previous value afterwards (also on panic, so a poisoned rayon worker
/// does not leak a stale parent into later work units).
pub fn with_parent<R>(parent: u64, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_SPAN.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CURRENT_SPAN.with(|c| c.replace(parent)));
    f()
}

/// An open span's state; owned by the guard, emitted on drop.
#[derive(Debug)]
struct ActiveSpan {
    tele: Telemetry,
    name: &'static str,
    id: u64,
    parent: u64,
    trace: Option<String>,
    start: Instant,
    start_us: u64,
    attrs: Vec<(&'static str, String)>,
}

/// RAII guard for one span: created by [`Telemetry::span`], emits an
/// [`Event::Span`] when dropped. When the pipeline is disabled the guard is
/// inert — every method is a no-op after one branch.
#[derive(Debug)]
#[must_use = "a span measures the region until the guard drops"]
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl SpanGuard {
    /// A guard that records nothing (what a disabled pipeline hands out).
    pub fn inert() -> Self {
        SpanGuard { inner: None }
    }

    /// Whether this span is actually recording.
    #[inline]
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's id (0 when inert) — pass it through [`with_parent`] to
    /// re-parent work that crosses a thread boundary.
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |a| a.id)
    }

    /// Attach an attribute (no-op when inert).
    pub fn attr(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(a) = self.inner.as_mut() {
            a.attrs.push((key, value.into()));
        }
    }

    /// Attach an attribute built lazily — `build` runs only when the span
    /// is recording, so formatting stays off the disabled path.
    pub fn attr_with(&mut self, key: &'static str, build: impl FnOnce() -> String) {
        if let Some(a) = self.inner.as_mut() {
            let v = build();
            a.attrs.push((key, v));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.inner.take() {
            CURRENT_SPAN.with(|c| c.set(a.parent));
            a.tele.emit(&Event::Span {
                name: a.name,
                id: a.id,
                parent: a.parent,
                trace: a.trace,
                start_us: a.start_us,
                dur_ns: a.start.elapsed().as_nanos() as u64,
                attrs: a.attrs,
            });
        }
    }
}

impl Telemetry {
    /// Whether spans should be recorded.
    #[inline]
    pub fn span_enabled(&self) -> bool {
        self.enabled() && self.spans()
    }

    /// Open a span named `name`, parented to this thread's current span.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_traced(name, None)
    }

    /// Open a span carrying a correlation trace id — used for the root of
    /// a request's tree; descendants inherit correlation through parent
    /// ids, not by repeating the trace on every span.
    pub fn span_traced(&self, name: &'static str, trace: Option<String>) -> SpanGuard {
        if !self.span_enabled() {
            return SpanGuard::inert();
        }
        let id = next_span_id();
        let parent = CURRENT_SPAN.with(|c| c.replace(id));
        SpanGuard {
            inner: Some(ActiveSpan {
                tele: self.clone(),
                name,
                id,
                parent,
                trace,
                start: Instant::now(),
                start_us: epoch().elapsed().as_micros() as u64,
                attrs: Vec::new(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, NullSink};
    use std::sync::Arc;

    fn span_events(sink: &MemorySink) -> Vec<Event> {
        sink.events()
            .into_iter()
            .filter(|e| matches!(e, Event::Span { .. }))
            .collect()
    }

    #[test]
    fn nested_spans_parent_each_other() {
        let sink = Arc::new(MemorySink::unbounded());
        let t = Telemetry::new(sink.clone());
        let outer_id;
        {
            let outer = t.span("campaign");
            outer_id = outer.id();
            assert!(outer.active());
            assert_eq!(current_span(), outer_id);
            {
                let mut inner = t.span("unit");
                inner.attr("chunk", "3");
                assert_eq!(current_span(), inner.id());
            }
            assert_eq!(current_span(), outer_id, "inner close restores outer");
        }
        assert_eq!(current_span(), 0);
        let evs = span_events(&sink);
        assert_eq!(evs.len(), 2);
        // Children close (and therefore emit) before parents.
        match (&evs[0], &evs[1]) {
            (
                Event::Span {
                    name: n0,
                    parent: p0,
                    attrs,
                    ..
                },
                Event::Span {
                    name: n1,
                    id: id1,
                    parent: p1,
                    ..
                },
            ) => {
                assert_eq!(*n0, "unit");
                assert_eq!(*n1, "campaign");
                assert_eq!(*id1, outer_id);
                assert_eq!(*p0, outer_id);
                assert_eq!(*p1, 0);
                assert_eq!(attrs, &vec![("chunk", "3".to_string())]);
            }
            other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn disabled_pipeline_hands_out_inert_guards() {
        let t = Telemetry::new(Arc::new(NullSink));
        let mut g = t.span_traced("campaign", Some("deadbeef".into()));
        assert!(!g.active());
        assert_eq!(g.id(), 0);
        let mut built = false;
        g.attr_with("expensive", || {
            built = true;
            "x".into()
        });
        assert!(!built, "inert spans must not build attributes");
        assert_eq!(current_span(), 0, "inert spans must not touch the TLS");
    }

    #[test]
    fn spans_toggle_is_independent_of_events() {
        let sink = Arc::new(MemorySink::unbounded());
        let t = Telemetry::new(sink.clone()).with_spans(false);
        assert!(t.enabled());
        assert!(!t.span_enabled());
        let _g = t.span("campaign");
        drop(_g);
        assert!(span_events(&sink).is_empty());
    }

    #[test]
    fn with_parent_restores_on_panic() {
        let before = current_span();
        let r = std::panic::catch_unwind(|| {
            with_parent(42, || {
                assert_eq!(current_span(), 42);
                panic!("worker dies");
            })
        });
        assert!(r.is_err());
        assert_eq!(current_span(), before);
    }

    #[test]
    fn trace_rides_only_the_root() {
        let sink = Arc::new(MemorySink::unbounded());
        let t = Telemetry::new(sink.clone());
        {
            let root = t.span_traced("campaign", Some("cafe0001".into()));
            let _ = root.id();
            let _child = t.span("stratum");
        }
        let evs = span_events(&sink);
        let traces: Vec<Option<&String>> = evs
            .iter()
            .map(|e| match e {
                Event::Span { trace, .. } => trace.as_ref(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(traces[0], None, "child carries no trace");
        assert_eq!(traces[1].map(String::as_str), Some("cafe0001"));
    }
}
