//! The single formatting path for human- and machine-readable reports.
//!
//! Everything the CLI tools print goes through here: plain-text helpers
//! ([`bar`], [`table`], [`pct`] — moved from `hauberk-bench`), the structured
//! [`Table`] type, and an [`Emitter`] that renders either aligned text or one
//! JSON document depending on a `--json` flag.

use crate::json::Json;
use std::collections::BTreeMap;

/// Render a percentage as a fixed-width bar plus number.
pub fn bar(pct: f64, width: usize) -> String {
    let filled = ((pct / 100.0) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    let mut s = String::with_capacity(width + 8);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s.push_str(&format!(" {pct:5.1}%"));
    s
}

/// Render a simple aligned table: `header` then `rows`; column widths are
/// derived from content.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let emit = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:<width$}", width = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    emit(
        &mut out,
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for r in rows {
        emit(&mut out, r);
    }
    out
}

/// Format a ratio as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// A titled table that can render as text or JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    /// Title (used as the JSON key / text heading).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Aligned-text rendering (title, then the classic table).
    pub fn to_text(&self) -> String {
        let headers: Vec<&str> = self.headers.iter().map(|s| s.as_str()).collect();
        let body = table(&headers, &self.rows);
        if self.title.is_empty() {
            body
        } else {
            format!("== {} ==\n{body}", self.title)
        }
    }

    /// JSON rendering: an array of objects keyed by header.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut obj = BTreeMap::new();
                for (h, c) in self.headers.iter().zip(r.iter()) {
                    obj.insert(h.clone(), cell_json(c));
                }
                Json::Obj(obj)
            })
            .collect();
        Json::Arr(rows)
    }
}

/// Numeric-looking cells become JSON numbers, everything else strings.
fn cell_json(cell: &str) -> Json {
    if let Ok(v) = cell.parse::<i64>() {
        return Json::Int(v);
    }
    if let Ok(v) = cell.parse::<f64>() {
        if v.is_finite() {
            return Json::Num(v);
        }
    }
    Json::str(cell)
}

/// Collects report sections and renders them either as streamed text or as
/// one JSON document printed at the end — the machine-readable `--json` path.
#[derive(Debug)]
pub struct Emitter {
    json: bool,
    doc: BTreeMap<String, Json>,
}

impl Emitter {
    /// `json = true` buffers a single JSON object; `false` prints text
    /// sections immediately.
    pub fn new(json: bool) -> Self {
        Emitter {
            json,
            doc: BTreeMap::new(),
        }
    }

    /// Whether this emitter is in JSON mode.
    pub fn is_json(&self) -> bool {
        self.json
    }

    /// Free-form text (suppressed in JSON mode).
    pub fn text(&mut self, s: impl AsRef<str>) {
        if !self.json {
            println!("{}", s.as_ref());
        }
    }

    /// A titled table section.
    pub fn table(&mut self, t: &Table) {
        if self.json {
            self.doc.insert(section_key(&t.title), t.to_json());
        } else {
            println!("{}", t.to_text());
        }
    }

    /// A scalar key/value datum (printed as `key: value` in text mode).
    pub fn kv(&mut self, key: &str, value: Json) {
        if self.json {
            self.doc.insert(section_key(key), value);
        } else {
            println!("{key}: {value}");
        }
    }

    /// A pre-rendered text section; in JSON mode it is stored verbatim under
    /// its title so nothing is lost from the machine-readable output.
    pub fn section(&mut self, title: &str, body: &str) {
        if self.json {
            self.doc.insert(section_key(title), Json::str(body));
        } else {
            println!("== {title} ==");
            println!("{body}");
        }
    }

    /// Raw JSON section under an explicit key.
    pub fn json_section(&mut self, key: &str, value: Json) {
        if self.json {
            self.doc.insert(section_key(key), value);
        }
    }

    /// Flush: in JSON mode prints the single accumulated document.
    pub fn finish(self) {
        if self.json {
            println!("{}", Json::Obj(self.doc));
        }
    }
}

fn section_key(title: &str) -> String {
    let mut key: String = title
        .trim()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    while key.contains("__") {
        key = key.replace("__", "_");
    }
    key.trim_matches('_').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn bar_is_proportional() {
        assert!(bar(0.0, 10).starts_with(".........."));
        assert!(bar(50.0, 10).starts_with("#####....."));
        assert!(bar(100.0, 10).starts_with("##########"));
        assert!(bar(150.0, 10).starts_with("##########"), "clamped");
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3");
    }

    #[test]
    fn structured_table_renders_both_ways() {
        let mut t = Table::new("outcomes", &["outcome", "count", "ratio"]);
        t.row(vec!["masked".into(), "12".into(), "0.75".into()]);
        t.row(vec!["detected".into(), "4".into(), "0.25".into()]);
        let text = t.to_text();
        assert!(text.starts_with("== outcomes =="));
        assert!(text.contains("masked"));
        let j = t.to_json();
        let rows = j.as_arr().unwrap();
        assert_eq!(rows[0].get("count").unwrap().as_i64(), Some(12));
        assert_eq!(rows[1].get("ratio").unwrap().as_f64(), Some(0.25));
        // And the JSON text parses back.
        assert_eq!(parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn section_keys_are_stable() {
        assert_eq!(section_key("Fig 13 — overhead (%)"), "fig_13_overhead");
        assert_eq!(section_key("outcomes"), "outcomes");
    }
}
