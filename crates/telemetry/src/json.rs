//! A small self-contained JSON value type with a writer and a
//! recursive-descent parser. The workspace is fully offline (no serde), and
//! telemetry needs both directions: sinks serialize events to JSONL, and the
//! trace-replay tooling/tests parse them back.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document. Numbers keep an integer/float split so that event
/// counters and cycle counts round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (no fraction/exponent in the source).
    Int(i64),
    /// Floating-point number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; key order is sorted (BTreeMap) for stable output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String convenience.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Unsigned counter convenience (saturates at `i64::MAX`).
    pub fn uint(v: u64) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload (accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Num(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// Unsigned payload.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// Numeric payload as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Bool payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Num(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; encode as null like serde_json.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{it}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parsing limits for untrusted input. The daemon feeds request bodies
/// straight into [`parse`], so both knobs exist to keep a hostile client
/// from exhausting the process: `max_depth` bounds recursion (a body of
/// nothing but `[` would otherwise overflow the stack) and `max_bytes`
/// bounds the allocation a single document may force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum container nesting depth (arrays + objects combined).
    pub max_depth: usize,
    /// Maximum input length in bytes.
    pub max_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        // Deep enough for any document this workspace writes, shallow
        // enough that the recursive-descent parser stays well inside a
        // default thread stack.
        ParseLimits {
            max_depth: 128,
            max_bytes: 64 << 20,
        }
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else),
/// under [`ParseLimits::default`].
pub fn parse(input: &str) -> Result<Json, ParseError> {
    parse_with_limits(input, ParseLimits::default())
}

/// [`parse`] with explicit limits — use tighter ones for untrusted input.
pub fn parse_with_limits(input: &str, limits: ParseLimits) -> Result<Json, ParseError> {
    if input.len() > limits.max_bytes {
        return Err(ParseError {
            msg: format!(
                "input of {} bytes exceeds the {}-byte limit",
                input.len(),
                limits.max_bytes
            ),
            at: 0,
        });
    }
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
        depth: 0,
        max_depth: limits.max_depth,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn ws(&mut self) {
        while let Some(c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            map.insert(key, val);
            self.ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.ws();
        if self.eat(b']') {
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.b.get(self.i) else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.b.get(self.i) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let chunk = self
                        .b
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        self.eat(b'-');
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if self.b.get(self.i).is_some_and(|c| *c == b'e' || *c == b'E') {
            is_float = true;
            self.i += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("bad number"))
        } else {
            match text.parse::<i64>() {
                Ok(v) => Ok(Json::Int(v)),
                // Out-of-range integers degrade to float.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| self.err("bad number")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Json::obj([
            ("name", Json::str("spin \"quoted\"\n")),
            ("count", Json::Int(42)),
            ("neg", Json::Int(-7)),
            ("pi", Json::Num(3.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : 2.5 } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_i64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_f64(),
            Some(2.5)
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Json::str("warp μ → λ");
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(parse("\"\\u00b5 ok\"").unwrap().as_str(), Some("\u{b5} ok"));
    }

    #[test]
    fn hostile_deep_arrays_error_instead_of_overflowing() {
        // 100k unclosed brackets: without the depth limit this recursion
        // would blow the stack long before hitting "expected a value".
        let bomb = "[".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.msg.contains("nesting too deep"), "{err}");
        // Same for objects.
        let bomb = "{\"k\":".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.msg.contains("nesting too deep"), "{err}");
    }

    #[test]
    fn depth_limit_is_exact() {
        let nested = |n: usize| format!("{}1{}", "[".repeat(n), "]".repeat(n));
        let lim = ParseLimits {
            max_depth: 4,
            ..ParseLimits::default()
        };
        assert!(parse_with_limits(&nested(4), lim).is_ok());
        assert!(parse_with_limits(&nested(5), lim).is_err());
        // Depth is the *current* nesting, not a cumulative count: many
        // shallow siblings stay fine.
        let siblings = format!("[{}]", vec!["[1]"; 1000].join(","));
        assert!(parse_with_limits(&siblings, lim).is_ok());
    }

    #[test]
    fn size_limit_rejects_oversized_input() {
        let lim = ParseLimits {
            max_bytes: 16,
            ..ParseLimits::default()
        };
        assert!(parse_with_limits("[1,2,3]", lim).is_ok());
        let big = format!("\"{}\"", "a".repeat(64));
        let err = parse_with_limits(&big, lim).unwrap_err();
        assert!(err.msg.contains("byte limit"), "{err}");
    }

    #[test]
    fn big_u64_counters() {
        let v = Json::uint(u64::MAX);
        assert_eq!(v, Json::Int(i64::MAX));
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back.as_i64(), Some(i64::MAX));
    }
}
