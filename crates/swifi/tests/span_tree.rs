//! Property test for the tracing layer under the orchestrator's concurrency
//! shape: sequential campaigns and units on the driving thread, injections
//! fanned out through rayon with [`with_parent`] re-establishing the unit
//! span as the parent on each worker. Whatever the interleaving, the emitted
//! spans must reassemble into exactly one rooted tree per campaign, with
//! every span reachable from its own campaign's root and no id reuse.

use hauberk_telemetry::span::with_parent;
use hauberk_telemetry::{Event, MemorySink, Telemetry};
use proptest::prelude::*;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One decoded span record.
#[derive(Debug, Clone)]
struct Rec {
    name: &'static str,
    id: u64,
    parent: u64,
    trace: Option<String>,
}

/// Drive `campaigns` fake campaigns of `units` units × `launches` parallel
/// launches each, and return the span records the sink saw.
fn drive(campaigns: usize, units: usize, launches: usize, threads: usize) -> Vec<Rec> {
    rayon::set_thread_count(threads);
    let sink = Arc::new(MemorySink::unbounded());
    let tele = Telemetry::new(sink.clone());
    for c in 0..campaigns {
        let root = tele.span_traced("campaign", Some(format!("ht-{c}")));
        let _root_id = root.id();
        for _u in 0..units {
            let unit = tele.span("unit");
            let unit_id = unit.id();
            let idxs: Vec<usize> = (0..launches).collect();
            idxs.par_iter().for_each(|_i| {
                with_parent(unit_id, || {
                    let _launch = tele.span("launch");
                });
            });
        }
    }
    sink.events()
        .into_iter()
        .filter_map(|e| match e {
            Event::Span {
                name,
                id,
                parent,
                trace,
                ..
            } => Some(Rec {
                name,
                id,
                parent,
                trace,
            }),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spans_reassemble_into_one_rooted_tree_per_campaign(
        campaigns in 1usize..4,
        units in 1usize..5,
        launches in 1usize..9,
        threads in 1usize..5,
    ) {
        let recs = drive(campaigns, units, launches, threads);
        prop_assert_eq!(
            recs.len(),
            campaigns * (1 + units * (1 + launches)),
            "every span was emitted exactly once"
        );

        // Ids are unique process-wide.
        let by_id: BTreeMap<u64, &Rec> = recs.iter().map(|r| (r.id, r)).collect();
        prop_assert_eq!(by_id.len(), recs.len());

        // Roots are exactly the campaign spans, each carrying its trace id.
        let roots: Vec<&Rec> = recs.iter().filter(|r| r.parent == 0).collect();
        prop_assert_eq!(roots.len(), campaigns);
        for r in &roots {
            prop_assert_eq!(r.name, "campaign");
            prop_assert!(r.trace.is_some(), "root spans carry the trace id");
        }

        // Every span resolves to exactly one root by walking parent links,
        // and the chain is launch -> unit -> campaign.
        for r in &recs {
            let mut cur: &Rec = r;
            let mut hops = 0;
            while cur.parent != 0 {
                let parent = by_id.get(&cur.parent);
                prop_assert!(parent.is_some(), "dangling parent {}", cur.parent);
                cur = parent.unwrap();
                hops += 1;
                prop_assert!(hops <= 2, "tree deeper than campaign/unit/launch");
            }
            prop_assert_eq!(cur.name, "campaign");
            match r.name {
                "campaign" => prop_assert_eq!(hops, 0),
                "unit" => prop_assert_eq!(hops, 1),
                "launch" => prop_assert_eq!(hops, 2),
                other => prop_assert!(false, "unexpected span {other}"),
            }
        }
    }
}
