//! The hardening determinism contract (DESIGN §19): the same program and
//! config must produce a byte-identical `HardeningPlan` and Pareto-front
//! CSV under every execution engine and any worker thread count, and the
//! plan the optimizer emits must instrument *exactly* the selected sites
//! when fed back through the translator.
//!
//! Engine default and thread count are process-global knobs, so everything
//! runs inside one `#[test]` — parallel test threads flipping them would
//! race each other, not the code under test.

use hauberk::builds::{build_selected, BuildVariant};
use hauberk::program::HostProgram;
use hauberk_benchmarks::{cp::Cp, ProblemScale};
use hauberk_kir::printer::print_kernel;
use hauberk_sim::{set_default_engine, ExecEngine};
use hauberk_swifi::campaign::CampaignConfig;
use hauberk_swifi::harden::{harden, HardenConfig};
use hauberk_swifi::plan::PlanConfig;

fn quick_cfg() -> HardenConfig {
    HardenConfig {
        campaign: CampaignConfig {
            plan: PlanConfig {
                vars_per_program: 6,
                masks_per_var: 6,
                bit_counts: vec![1],
                scheduler_per_mille: 80,
                register_per_mille: 80,
            },
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn plan_and_front_are_byte_identical_across_engines_and_thread_counts() {
    let prog = Cp::new(ProblemScale::Quick);
    let cfg = quick_cfg();

    let mut reference: Option<(String, String)> = None;
    for engine in ExecEngine::ALL {
        for threads in [1usize, 4] {
            set_default_engine(engine);
            rayon::set_thread_count(threads);
            let r = harden(&prog, &cfg)
                .unwrap_or_else(|e| panic!("harden under {engine}/{threads}t: {e}"));
            let artifacts = (r.plan.to_json_string(), r.front_csv());
            match &reference {
                None => reference = Some(artifacts),
                Some(want) => {
                    assert_eq!(
                        artifacts.0, want.0,
                        "plan bytes diverged under {engine} with {threads} threads"
                    );
                    assert_eq!(
                        artifacts.1, want.1,
                        "front CSV diverged under {engine} with {threads} threads"
                    );
                }
            }
        }
    }
    // Restore the process-wide defaults for any test run after this one.
    set_default_engine(ExecEngine::Bytecode);
    rayon::set_thread_count(0);

    // Translator round-trip: rebuilding under the emitted plan instruments
    // exactly the selected sites — every selected loop detector and nothing
    // else, checksum folds only for selected NL variables, and the
    // per-iteration trip counter only where the trip check was selected.
    let (plan_json, _) = reference.unwrap();
    let plan = hauberk::translator::select::HardeningPlan::parse(&plan_json).unwrap();
    let sel = &plan.selection;
    let base = prog.build_kernel();
    let full = build_selected(&base, BuildVariant::Ft(Default::default()), None).unwrap();
    let hardened = build_selected(&base, BuildVariant::Ft(Default::default()), Some(sel)).unwrap();

    let mut placed: Vec<(u32, String)> = hardened
        .detectors
        .iter()
        .map(|d| (d.loop_id, d.var_name.clone()))
        .collect();
    let mut wanted: Vec<(u32, String)> = sel.loop_detectors.clone();
    wanted.sort();
    placed.sort();
    assert_eq!(placed, wanted, "loop detectors ≠ selection");

    let printed = print_kernel(&hardened.kernel);
    for var in &sel.nonloop_vars {
        assert!(
            printed.contains(&format!("bits({var})")),
            "selected NL variable {var} has no checksum fold"
        );
    }
    // A full-protection NL variable left out of the selection must not be
    // folded into the checksum.
    let full_printed = print_kernel(&full.kernel);
    for var in base.vars.iter().map(|v| v.name.as_str()) {
        if full_printed.contains(&format!("bits({var})"))
            && !sel.nonloop_vars.iter().any(|s| s == var)
        {
            assert!(
                !printed.contains(&format!("bits({var})")),
                "unselected NL variable {var} was instrumented anyway"
            );
        }
    }
    // CP's for-loop trip is statically derivable, so the per-iteration
    // counter exists iff some selected loop also selected its trip check.
    let any_trip = sel.loop_detectors.iter().any(|(l, _)| sel.selects_trip(*l));
    assert_eq!(
        printed.contains("__cnt_"),
        any_trip,
        "trip-counter presence disagrees with the selection:\n{printed}"
    );
}
